"""Figure 9: error rate of the cost model over the 24 standard workloads.

Paper claim: the cost model predicts measured DIDO throughput with a
maximum error around 14 % and an average around 8 % — accurate enough to
drive configuration selection.  Our planner/simulator split reproduces the
same band (the error comes from genuinely unmodelled effects: kernel
overhead residuals, probe-count inflation, interference convergence,
chunked stealing).
"""

from common import emit, run_once

from repro.analysis.experiments import fig09_cost_model_error
from repro.analysis.reporting import Table


def test_fig09_cost_model_error(benchmark, harness):
    rows = run_once(benchmark, lambda: fig09_cost_model_error(harness))

    table = Table(
        "Figure 9 — cost model error rate per workload",
        ["workload", "estimated_MOPS", "measured_MOPS", "error_%"],
    )
    for r in rows:
        table.add(r.workload, r.estimated_mops, r.measured_mops, r.error * 100.0)
    emit(table)

    assert len(rows) == 24
    errors = [abs(r.error) for r in rows]
    average = sum(errors) / len(errors)
    # Paper: avg 7.7 %, max 14.2 %.  Allow headroom but stay in the band
    # where the model is clearly usable for planning.
    assert average < 0.15, f"average error {average:.1%} out of band"
    assert max(errors) < 0.35
    # The model must not be a tautology: some error exists.
    assert max(errors) > 0.01
