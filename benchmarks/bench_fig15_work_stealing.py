"""Figure 15: performance improvement by work stealing.

Paper claims: applied on top of the other two techniques, work stealing
adds an average 15.7 % across the 24 workloads, with the largest gains on
small key-values (K8 ~28 %) shrinking for large ones (K128 ~6 %) because
the GPU is inefficient at reading/writing large stolen objects.
"""

from common import emit, run_once

from repro.analysis.experiments import fig15_work_stealing
from repro.analysis.reporting import Table


def _avg(values):
    values = list(values)
    return sum(values) / len(values)


def test_fig15_work_stealing(benchmark, harness):
    rows = run_once(benchmark, lambda: fig15_work_stealing(harness))

    table = Table(
        "Figure 15 — work stealing on top of the chosen configuration",
        ["workload", "no_steal_MOPS", "steal_MOPS", "speedup"],
    )
    for r in rows:
        table.add(r.workload, r.baseline_mops, r.technique_mops, r.speedup)
    emit(table)

    assert len(rows) == 24
    speedups = {r.workload: r.speedup for r in rows}
    # Stealing never hurts.
    assert all(s >= 0.99 for s in speedups.values())
    # It helps overall and substantially somewhere.
    assert _avg(speedups.values()) > 1.01
    assert max(speedups.values()) > 1.05

    def group(prefix):
        return _avg(v for k, v in speedups.items() if k.startswith(prefix + "-"))

    # Size ordering: small key-values benefit at least as much as large
    # ones (paper: 28 % for K8 down to 6 % for K128).
    assert group("K8") >= group("K128") - 0.01
