"""Figure 12: CPU and GPU utilisation, DIDO vs Mega-KV (Coupled).

Paper claims: DIDO lifts GPU utilisation substantially (to 57-89 %, ~1.8x
the baseline) and also raises CPU utilisation — the dynamic pipeline keeps
both processors busy.
"""

from common import emit, run_once

from repro.analysis.experiments import fig12_utilization
from repro.analysis.reporting import Table


def test_fig12_utilization(benchmark, harness):
    rows = run_once(benchmark, lambda: fig12_utilization(harness))

    table = Table(
        "Figure 12 — utilisation, DIDO vs Mega-KV (Coupled), G95-S",
        ["workload", "dido_gpu", "megakv_gpu", "dido_cpu", "megakv_cpu"],
    )
    for r in rows:
        table.add(r.workload, r.dido_gpu, r.megakv_gpu, r.dido_cpu, r.megakv_cpu)
    emit(table)

    assert len(rows) == 4
    # GPU utilisation improves on average (paper: 1.8x on average).
    gpu_gain = sum(r.dido_gpu / r.megakv_gpu for r in rows) / len(rows)
    assert gpu_gain > 1.1
    # CPU utilisation does not collapse; on average it improves too.
    cpu_gain = sum(r.dido_cpu / r.megakv_cpu for r in rows) / len(rows)
    assert cpu_gain > 0.95
    # Everything stays a valid utilisation.
    for r in rows:
        for v in (r.dido_gpu, r.megakv_gpu, r.dido_cpu, r.megakv_cpu):
            assert 0.0 < v <= 1.0
