"""Ablation: cuckoo vs chained index under the pipeline cost model.

The paper adopts cuckoo hashing [15] because lookups touch a bounded number
of buckets — the property that makes batched index kernels GPU-efficient.
This benchmark measures both structures functionally to obtain their real
probe counts at matched load, then feeds those counts through the pipeline
model: the chained table's growing probes inflate the GPU index stage and
depress end-to-end throughput.
"""

import dataclasses

from common import emit, run_once

from repro.analysis.reporting import Table
from repro.core.profiler import WorkloadProfile
from repro.hardware.specs import APU_A10_7850K
from repro.kv.chaining import ChainedHashTable
from repro.kv.hashtable import CuckooHashTable
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import standard_workload


def _measured_probes(table, items: int) -> tuple[float, float]:
    """(avg search probes, avg insert writes) at ``items`` load."""
    for i in range(items):
        table.insert(f"key-{i:06d}".encode(), i)
    for i in range(items):
        table.search(f"key-{i:06d}".encode())
    return (
        table.stats.average_search_buckets(),
        max(1.0, table.stats.average_insert_buckets()),
    )


def test_ablation_index_structure(benchmark, harness):
    def run():
        load = 6000
        cuckoo = CuckooHashTable(num_buckets=2048, num_hashes=2)
        chained = ChainedHashTable(num_buckets=512)  # memcached-ish load ~12
        results = {}
        executor = PipelineExecutor(APU_A10_7850K)
        config = megakv_coupled_config()
        base_profile = WorkloadProfile.from_spec(standard_workload("K16-G95-S"))
        for name, table in (("cuckoo", cuckoo), ("chained", chained)):
            search_probes, insert_writes = _measured_probes(table, load)
            profile = dataclasses.replace(base_profile, insert_buckets=insert_writes)
            # Scale the executor's probe model by the measured ratio over
            # the cuckoo theoretical baseline (1.5).
            fidelity = dataclasses.replace(
                executor.fidelity, probe_inflation=search_probes / 1.5
            )
            analyzer = PipelineExecutor(APU_A10_7850K, fidelity=fidelity)
            m = analyzer.measure(config, profile)
            results[name] = (search_probes, insert_writes, m.throughput_mops)
        return results

    results = run_once(benchmark, run)
    table = Table(
        "Ablation — index structure at matched load",
        ["index", "search probes", "insert writes", "pipeline MOPS"],
    )
    for name, (probes, writes, mops) in results.items():
        table.add(name, probes, writes, mops)
    emit(table)

    cuckoo_probes, _, cuckoo_mops = results["cuckoo"]
    chained_probes, _, chained_mops = results["chained"]
    # Cuckoo's probe count is bounded near its theoretical 1.5; the chained
    # table's grows with its chains.
    assert cuckoo_probes <= 2.0
    assert chained_probes > cuckoo_probes
    # And that difference propagates to end-to-end throughput.
    assert cuckoo_mops > chained_mops
