"""Figure 21: impact of workload fluctuation frequency.

Paper claims: cycling K8-G50-U / K16-G95-S with periods from 2 ms to 256 ms,
DIDO's speedup over static Mega-KV grows with the cycle length (1.58x at
2 ms rising to ~1.79x beyond 64 ms) and saturates — the ~1 ms re-adaptation
window only matters when the workload thrashes.
"""

from common import emit, run_once

from repro.analysis.experiments import fig21_fluctuation
from repro.analysis.reporting import Table


def test_fig21_fluctuation(benchmark, harness):
    rows = run_once(benchmark, lambda: fig21_fluctuation(harness))

    table = Table(
        "Figure 21 — speedup vs workload alternate cycle",
        ["cycle_ms", "dido_MOPS", "megakv_MOPS", "speedup"],
    )
    for r in rows:
        table.add(r.cycle_ms, r.dido_mops, r.megakv_mops, r.speedup)
    emit(table)

    assert [r.cycle_ms for r in rows] == [2, 4, 8, 16, 32, 64, 128, 256]
    speedups = [r.speedup for r in rows]
    # DIDO beats the static baseline at every fluctuation frequency.
    assert all(s > 1.0 for s in speedups)
    # Gentler fluctuation -> at least as good a speedup (saturating trend):
    # compare the fast-cycling half to the slow-cycling half.
    fast = sum(speedups[:3]) / 3
    slow = sum(speedups[-3:]) / 3
    assert slow >= fast - 0.02
    # Saturation: the last two cycles perform nearly identically.
    assert abs(speedups[-1] - speedups[-2]) < 0.1 * speedups[-1]
