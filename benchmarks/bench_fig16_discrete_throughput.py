"""Figure 16: throughput, DIDO (APU) vs Mega-KV (Discrete).

Paper claims: the dual-Xeon/dual-GTX780 testbed outruns the APU by a large
factor (5.8-23.6x) on the 12 shared workloads — DIDO's contribution is not
absolute speed but efficiency on cheap coupled silicon (Figures 17-18).
"""

from common import emit, run_once

from repro.analysis.experiments import fig16_discrete_comparison
from repro.analysis.reporting import Table


def test_fig16_discrete_throughput(benchmark, harness):
    rows = run_once(benchmark, lambda: fig16_discrete_comparison(harness))

    table = Table(
        "Figure 16 — throughput (MOPS): discrete Mega-KV vs coupled systems",
        ["workload", "megakv_discrete", "megakv_coupled", "dido", "discrete/dido"],
    )
    for r in rows:
        table.add(
            r.workload,
            r.megakv_discrete_mops,
            r.megakv_coupled_mops,
            r.dido_mops,
            r.megakv_discrete_mops / r.dido_mops,
        )
    emit(table)

    assert len(rows) == 12
    ratios = [r.megakv_discrete_mops / r.dido_mops for r in rows]
    # Discrete hardware wins every workload by a wide margin.
    assert all(ratio > 2.0 for ratio in ratios)
    assert max(ratios) > 3.5
    # But DIDO still beats the coupled port of Mega-KV everywhere.
    assert all(r.dido_mops >= r.megakv_coupled_mops * 0.99 for r in rows)
