"""Figure 4: execution time of Mega-KV pipeline stages on the coupled APU.

Paper claim: under periodical scheduling with a ~300 us interval, Read &
Send Value pins at the cap for every dataset while Network Processing stays
tens of microseconds and Index Operation sits in between, *decreasing* as
the key-value size grows (smaller batches reach the GPU) — i.e. the static
pipeline is imbalanced everywhere.
"""

from common import emit, run_once

from repro.analysis.experiments import fig04_stage_times
from repro.analysis.reporting import Table


def test_fig04_stage_times(benchmark, harness):
    rows = run_once(benchmark, lambda: fig04_stage_times(harness))

    table = Table(
        "Figure 4 — Mega-KV (Coupled) stage times (us), G95-S",
        ["dataset", "batch", "NP", "IN", "RSV"],
    )
    for r in rows:
        table.add(r.dataset, r.batch, r.np_us, r.in_us, r.rsv_us)
    emit(table)

    assert [r.dataset for r in rows] == ["K8", "K16", "K32", "K128"]
    for r in rows:
        # RSV is the bottleneck stage at (close to) the 300 us cap.
        assert r.rsv_us == max(r.np_us, r.in_us, r.rsv_us)
        assert r.rsv_us > 250.0
        # NP is far lighter than the cap (paper: 25-42 us band).
        assert r.np_us < r.rsv_us / 2
    # IN decreases monotonically with the key-value size.
    in_times = [r.in_us for r in rows]
    assert in_times == sorted(in_times, reverse=True)
    # Severe imbalance: the lightest stage is a small fraction of the cap.
    assert min(r.np_us for r in rows) < 60.0
