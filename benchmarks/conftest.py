"""Shared fixtures and output helpers for the benchmark suite.

Every ``bench_figNN_*.py`` regenerates one figure of the paper: it runs the
corresponding :mod:`repro.analysis.experiments` harness function once inside
``benchmark.pedantic`` (these are deterministic simulations — repeated
rounds only re-measure Python overhead), prints the figure's rows as a
table, and asserts the paper's qualitative claims.

Tables are written to the real stdout so they appear in redirected benchmark
logs even under pytest's capture.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make `from common import ...` work regardless of how pytest was invoked.
sys.path.insert(0, os.path.dirname(__file__))

from repro.analysis.experiments import Harness


@pytest.fixture(scope="session")
def harness() -> Harness:
    """One shared harness: executors and planner caches persist across
    benchmarks, mirroring a long-running evaluation session."""
    return Harness()
