"""Figure 19: DIDO's improvement under different system-latency budgets.

Paper claims: DIDO keeps a solid improvement over the baseline when the
average latency limit tightens from 1,000 us to 800 us and 600 us (paper:
20-27 % average on four representative workloads) — tighter budgets shrink
GPU batches, but the dynamic pipeline still wins.
"""

from common import emit, run_once

from repro.analysis.experiments import fig19_latency_budgets
from repro.analysis.reporting import Table


def test_fig19_latency_budgets(benchmark, harness):
    rows = run_once(benchmark, lambda: fig19_latency_budgets(harness))

    table = Table(
        "Figure 19 — improvement vs latency budget",
        ["workload", "latency_us", "megakv_MOPS", "dido_MOPS", "improvement_%"],
    )
    for r in rows:
        table.add(
            r.workload, r.latency_us, r.baseline_mops, r.dido_mops,
            r.improvement * 100.0,
        )
    emit(table)

    assert len(rows) == 12  # 4 workloads x 3 budgets
    # DIDO never loses at any budget.
    assert all(r.improvement >= -0.01 for r in rows)
    # Meaningful average improvement at every budget level.
    for budget in (600.0, 800.0, 1000.0):
        at_budget = [r.improvement for r in rows if r.latency_us == budget]
        assert sum(at_budget) / len(at_budget) > 0.05, f"budget {budget}"
    # Throughput itself degrades as the budget tightens (smaller batches).
    for workload in {r.workload for r in rows}:
        series = sorted(
            (r for r in rows if r.workload == workload), key=lambda r: r.latency_us
        )
        assert series[0].dido_mops <= series[-1].dido_mops * 1.05
