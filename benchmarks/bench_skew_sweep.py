"""Skew sweep: throughput of the skew-aware hot path across backends.

Drives a read-only K16 query stream (the YCSB-C mix — GETs are what the
hot path optimises; write-mixed correctness is covered by the engine and
hypothesis test suites) at Zipf skews {0.0, 0.5, 0.9, 0.99, 1.2} through
every functional backend, plain versus with the hot path (batch key dedup
+ versioned hot-key read cache) enabled, on a prefilled store.  Asserts
byte-identical response frames between every variant and the per-query
reference engine at each skew point, reports queries/sec and the hot-path
speedup, and writes ``BENCH_skew.json``.

Methodology: every run processes ``--warmup`` batches to let the cache
admit its working set (probation admission needs to see a key twice
before it graduates), then times the next ``--batches`` batches through
``process_batch``.  Response frames are rendered *after* the clock stops
— the wire plane costs the same bytes either way — but every batch,
warmup included, is frame-checked against the reference engine.  The
cache is provisioned at four batches of capacity so the vector builder's
singleton probes engage (see ``SINGLETON_PROBE_MIN_CAPACITY``).

The interesting columns: at high skew the hot path collapses the dominant
keys' GET runs to one probe and serves resident keys from the cache
snapshot, so ``vector-hot`` should clear 1.5x over plain ``vector`` at
skew 0.99; at skew 0.0 there is nothing to collapse and the uniformity
gate must keep the hot path within 5 % of plain.

The sweep also covers the process-per-shard backend (``procshard`` /
``procshard-hot``): shard workers are real processes fed over
shared-memory ring arenas, so on a host with ``cpu_count >= shards`` it
is the one contender that can beat single-core ``vector`` at *uniform*
skew (the GIL caps every thread-pool backend there).  The recorded
``cpu_count`` makes flat curves on small CI hosts self-explaining.

Standalone (not a pytest benchmark): run as

    PYTHONPATH=src python benchmarks/bench_skew_sweep.py \
        [--batch-size 4096] [--batches 8] [--warmup 16] [--repeat 3] \
        [--shards 4] [--skews 0.0,0.5,0.9,0.99,1.2] \
        [--contenders vector,procshard] [--out BENCH_skew.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from collections import deque

from repro.engine import (
    SerialEngine,
    ShardedEngine,
    StealingEngine,
    VectorEngine,
)
from repro.engine.procshard import ProcShardEngine, ProcShardStore
from repro.kv.sharding import ShardedKVStore
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.datasets import dataset_by_name
from repro.workloads.ycsb import QueryStream, WorkloadSpec

#: Key space sampled by the stream (prefilled before timing).
NUM_KEYS = 20_000

#: GET share of the stream (YCSB-C: read-only).
GET_RATIO = 1.0

#: Hot-key cache capacity as a multiple of the batch size — wide enough
#: that the vector builder's singleton probes engage.
CACHE_BATCHES = 4


def spec_for_skew(skew: float) -> WorkloadSpec:
    return WorkloadSpec(
        dataset=dataset_by_name("K16"), get_ratio=GET_RATIO, zipf_skew=skew
    )


def make_batches(skew: float, batch_size: int, batches: int, seed: int):
    stream = QueryStream(spec_for_skew(skew), num_keys=NUM_KEYS, seed=seed)
    return stream, [stream.next_batch(batch_size) for _ in range(batches)]


def fresh_store(
    stream: QueryStream,
    shards: int,
    hot: bool,
    batch_size: int,
    kind: str = "thread",
    heap: str = "log",
    delta: bool = False,
):
    if kind == "proc":
        # Process-per-shard: dedup/hot-cache live inside the workers;
        # caches attach active (bench parity with the direct attach below).
        store = ProcShardStore(
            64 << 20,
            2 * NUM_KEYS,
            shards,
            dedup=hot,
            hot_cache=hot,
            hot_cache_keys=shards * CACHE_BATCHES * batch_size if hot else None,
            heap=heap,
            delta_index=delta,
        )
        store.populate(stream.populate_items(NUM_KEYS))
        return store
    if shards > 1:
        store = ShardedKVStore(
            64 << 20, 2 * NUM_KEYS, shards, heap=heap, delta_index=delta
        )
    else:
        store = KVStore(64 << 20, 2 * NUM_KEYS, heap=heap, delta_index=delta)
    store.populate(stream.populate_items(NUM_KEYS))
    if delta and hasattr(store, "maintenance"):
        store.maintenance(force=True)
    if hot:
        store.attach_hot_cache(CACHE_BATCHES * batch_size)
    return store


def contenders(shards: int):
    """(label, engine factory, shards, hot, store kind, delta, pipelined)."""
    return [
        ("serial", lambda: SerialEngine(), 1, False, "thread", False, False),
        (
            "serial-hot",
            lambda: SerialEngine(dedup=True),
            1,
            True,
            "thread",
            False,
            False,
        ),
        ("stealing", lambda: StealingEngine(), 1, False, "thread", False, False),
        (
            "stealing-hot",
            lambda: StealingEngine(dedup=True),
            1,
            True,
            "thread",
            False,
            False,
        ),
        ("vector", lambda: VectorEngine(), 1, False, "thread", False, False),
        (
            "vector-hot",
            lambda: VectorEngine(dedup=True),
            1,
            True,
            "thread",
            False,
            False,
        ),
        # Read-only sweep with the delta index attached: GETs resolve
        # delta-first, so this column is the no-regression proof for the
        # lookup path (the write-side wins live in BENCH_write.json).
        ("vector-delta", lambda: VectorEngine(), 1, False, "thread", True, False),
        (
            "sharded",
            lambda: ShardedEngine(VectorEngine()),
            shards,
            False,
            "thread",
            False,
            False,
        ),
        (
            "sharded-hot",
            lambda: ShardedEngine(VectorEngine(dedup=True), dedup=True),
            shards,
            True,
            "thread",
            False,
            False,
        ),
        # The synchronous per-row router (pre-vectorization split/merge):
        # the honest baseline the pipelined contender's headline speedup
        # is measured against.
        (
            "procshard-scalar",
            lambda: ProcShardEngine(vectorize=False),
            shards,
            False,
            "proc",
            False,
            False,
        ),
        ("procshard", lambda: ProcShardEngine(), shards, False, "proc", False, False),
        (
            "procshard-hot",
            lambda: ProcShardEngine(),
            shards,
            True,
            "proc",
            False,
            False,
        ),
        # Double-buffered submit/collect: window N+1 is routed while
        # window N's replies are still in flight.
        (
            "procshard-pipelined",
            lambda: ProcShardEngine(),
            shards,
            False,
            "proc",
            False,
            True,
        ),
    ]


def run_engine(
    engine, config, stream, batches, shards, hot, batch_size, warmup,
    kind="thread", heap="log", delta=False, pipelined=False,
):
    """All batches on a fresh prefilled store; (timed seconds, frame bytes).

    The clock covers only the post-warmup batches; the returned output
    list covers every batch so identity checks span warmup too.  With
    ``pipelined`` the runner submits window N+1 before collecting window
    N (one window in flight), draining at the warmup boundary and again
    before stopping the clock so the timed region is self-contained.
    """
    store = fresh_store(stream, shards, hot, batch_size, kind, heap, delta)
    pipeline = FunctionalPipeline(store, engine=engine)
    results = []
    gc.collect()
    t0 = None
    if pipelined:
        pending = deque()
        for i, batch in enumerate(batches):
            if i == warmup:
                while pending:
                    results.append(pipeline.collect_batch(pending.popleft()))
                t0 = time.perf_counter()
            pending.append(pipeline.submit_batch(config, batch))
            while len(pending) > 1:
                results.append(pipeline.collect_batch(pending.popleft()))
        while pending:
            results.append(pipeline.collect_batch(pending.popleft()))
        elapsed = time.perf_counter() - (
            t0 if t0 is not None else time.perf_counter()
        )
    else:
        for i, batch in enumerate(batches):
            if i == warmup:
                t0 = time.perf_counter()
            results.append(pipeline.process_batch(config, batch))
        elapsed = time.perf_counter() - (
            t0 if t0 is not None else time.perf_counter()
        )
    outputs = [
        b"".join(frame.payload for frame in result.frames) for result in results
    ]
    meta = {}
    if pipelined and hasattr(engine, "overlap_ratio"):
        meta["overlap_ratio"] = round(engine.overlap_ratio, 3)
    if isinstance(engine, ShardedEngine):
        engine.close()
    if isinstance(store, ProcShardStore):
        store.close()
    return elapsed, outputs, meta


def bench_skew(
    skew, config, batch_size, num_batches, warmup, repeat, shards, seed,
    only=None, heap="log",
):
    stream, batches = make_batches(skew, batch_size, num_batches + warmup, seed)
    timed_queries = batch_size * num_batches
    # The identity baseline stays the per-query reference engine on the
    # slab heap regardless of --heap, so a heap bug cannot self-certify.
    _, reference, _ = run_engine(
        "reference", config, stream, batches, 1, False, batch_size, warmup,
        heap="slab",
    )
    best: dict[str, float] = {}
    metas: dict[str, dict] = {}
    for label, factory, engine_shards, hot, kind, delta, pipelined in (
        contenders(shards)
    ):
        if only is not None and label not in only:
            continue
        best[label] = float("inf")
        for _ in range(repeat):
            elapsed, outputs, meta = run_engine(
                factory(), config, stream, batches, engine_shards, hot,
                batch_size, warmup, kind, heap, delta, pipelined,
            )
            if outputs != reference:
                raise AssertionError(
                    f"skew {skew}: {label} responses differ from the reference"
                )
            if elapsed < best[label]:
                best[label] = elapsed
                metas[label] = meta
    row = {"skew": skew, "queries": timed_queries, "byte_identical": True}
    for label, seconds in best.items():
        row[f"{label}_qps"] = round(timed_queries / seconds)
    for backend in ("serial", "stealing", "vector", "sharded", "procshard"):
        if backend in best and f"{backend}-hot" in best:
            row[f"{backend}_hot_speedup"] = round(
                best[backend] / best[f"{backend}-hot"], 3
            )
    if "vector" in best and "procshard" in best:
        # The tentpole's success metric: procshard over single-core vector.
        row["procshard_vs_vector"] = round(best["vector"] / best["procshard"], 3)
    if "procshard-scalar" in best and "procshard-pipelined" in best:
        # The pipelined-IPC headline: double-buffered vectorized windows
        # over the synchronous per-row router.
        row["pipelined_vs_sync"] = round(
            best["procshard-scalar"] / best["procshard-pipelined"], 3
        )
    overlap = metas.get("procshard-pipelined", {}).get("overlap_ratio")
    if overlap is not None:
        row["procshard_overlap_ratio"] = overlap
    if "vector" in best and "vector-delta" in best:
        # Delta-first GET resolution must stay within noise of plain.
        row["vector_delta_vs_plain"] = round(
            best["vector"] / best["vector-delta"], 3
        )
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--warmup", type=int, default=16)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--skews", default="0.0,0.5,0.9,0.99,1.2")
    parser.add_argument(
        "--heap",
        choices=("log", "slab"),
        default="log",
        help="value heap behind every contender's store (default: log)",
    )
    parser.add_argument(
        "--contenders",
        default=None,
        help="comma-separated contender labels to run (default: all)",
    )
    parser.add_argument("--out", default="BENCH_skew.json")
    args = parser.parse_args(argv)

    config = megakv_coupled_config()
    skews = [float(s) for s in args.skews.split(",") if s.strip()]
    only = None
    if args.contenders:
        only = {label.strip() for label in args.contenders.split(",") if label.strip()}
        known = {label for label, *_ in contenders(args.shards)}
        unknown = only - known
        if unknown:
            parser.error(f"unknown contenders: {sorted(unknown)}")
    results = []
    for skew in skews:
        row = bench_skew(
            skew, config, args.batch_size, args.batches, args.warmup,
            args.repeat, args.shards, args.seed, only, args.heap,
        )
        results.append(row)
        parts = [f"skew {skew:<4}"]
        for label in ("vector", "vector-hot", "sharded-hot", "procshard",
                      "procshard-hot", "procshard-pipelined"):
            qps = row.get(f"{label}_qps")
            if qps is not None:
                parts.append(f"{label}={qps:>9,} q/s")
        if "procshard_vs_vector" in row:
            parts.append(f"(procshard {row['procshard_vs_vector']:.2f}x vector)")
        if "pipelined_vs_sync" in row:
            parts.append(
                f"(pipelined {row['pipelined_vs_sync']:.2f}x sync, "
                f"overlap {row.get('procshard_overlap_ratio', 0):.2f})"
            )
        print("  ".join(parts), flush=True)

    payload = {
        "workload": f"K16-G{round(GET_RATIO * 100)} sweep",
        "batch_size": args.batch_size,
        "batches": args.batches,
        "warmup": args.warmup,
        "num_keys": NUM_KEYS,
        "cache_capacity": CACHE_BATCHES * args.batch_size,
        "shards": args.shards,
        "heap": args.heap,
        # Flat procshard/sharded scaling curves on 1-2 core CI hosts are
        # expected; record the host size so they read as such.
        "cpu_count": os.cpu_count(),
        "pipeline": config.label,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
