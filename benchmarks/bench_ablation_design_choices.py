"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each test removes or perturbs one modelling ingredient and verifies the
behaviour the paper attributes to it disappears or shifts accordingly:

* the GPU batch-efficiency knee drives the Insert/Delete penalty (Fig. 6);
* KC->RD task affinity is what makes co-placement fast (Section III-B1);
* the RD/WR separation converts random reads into sequential ones;
* CPU/GPU interference caps co-running gains (Section IV);
* the wavefront-sized steal chunk amortises synchronisation (Section III-B3).
"""

import dataclasses

import pytest

from common import emit, run_once

from repro.analysis.reporting import Table
from repro.core.cost_model import DETAILED_FIDELITY, PipelineAnalyzer
from repro.core.profiler import WorkloadProfile
from repro.core.tasks import IndexOp, StageContext, Task, TaskModel
from repro.hardware.processor import gpu_task_time_ns
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import standard_workload


def profile_for(label):
    return WorkloadProfile.from_spec(standard_workload(label))


def test_ablation_gpu_saturation_knee(benchmark):
    """Raising the GPU's saturation batch deepens the small-batch penalty on
    Insert/Delete; removing it (tiny knee) nearly erases it."""

    def run():
        model = TaskModel()
        shares = {}
        for knee in (64, 2500, 10_000):
            gpu = dataclasses.replace(APU_A10_7850K.gpu, saturation_batch=knee)
            t = {}
            for op, count in ((IndexOp.SEARCH, 19_000), (IndexOp.INSERT, 1000), (IndexOp.DELETE, 1000)):
                demand = model.index_demand(op, count, search_buckets=1.77, insert_buckets=2.36)
                t[op] = gpu_task_time_ns(gpu, count, demand.instructions, demand.pattern, atomic=demand.atomic)
            shares[knee] = (t[IndexOp.INSERT] + t[IndexOp.DELETE]) / sum(t.values())
        return shares

    shares = run_once(benchmark, run)
    table = Table("Ablation — GPU saturation knee vs Insert+Delete time share",
                  ["saturation_batch", "insert+delete share"])
    for knee, share in shares.items():
        table.add(knee, share)
    emit(table)

    assert shares[64] < shares[2500] < shares[10_000]


def test_ablation_task_affinity(benchmark):
    """RD in the same stage as KC skips the random re-read of the object;
    disabling the affinity restores the full memory cost."""

    def run():
        model = TaskModel()
        line = APU_A10_7850K.cpu.cache_line_bytes
        out = {}
        for together in (True, False):
            context = StageContext(cache_line_bytes=line, with_kc=together)
            demand = model.demand(
                Task.RD, 1000, key_size=16, value_size=64, get_ratio=1.0,
                context=context,
            )
            out[together] = demand.pattern.memory_accesses
        return out

    accesses = run_once(benchmark, run)
    table = Table("Ablation — KC/RD affinity", ["co-located", "random accesses per RD"])
    for together, count in accesses.items():
        table.add(str(together), count)
    emit(table)
    assert accesses[True] == 0.0
    assert accesses[False] > 0.0


def test_ablation_rd_wr_separation(benchmark):
    """Splitting RD and WR across stages makes WR's reads sequential (no
    random accesses) at the cost of RD writing a staging buffer."""

    def run():
        model = TaskModel()
        line = APU_A10_7850K.cpu.cache_line_bytes
        joined = StageContext(cache_line_bytes=line, with_kc=True, with_rd=True)
        split_rd = StageContext(cache_line_bytes=line, with_kc=True, rd_feeds_buffer=True)
        split_wr = StageContext(cache_line_bytes=line, with_rd=False)
        kwargs = dict(key_size=16, value_size=512, get_ratio=1.0)
        return {
            "joined_wr_random": model.demand(Task.WR, 1000, context=joined, **kwargs).pattern.memory_accesses,
            "split_wr_random": model.demand(Task.WR, 1000, context=split_wr, **kwargs).pattern.memory_accesses,
            "split_rd_extra_cache": (
                model.demand(Task.RD, 1000, context=split_rd, **kwargs).pattern.cache_accesses
                - model.demand(Task.RD, 1000, context=joined, **kwargs).pattern.cache_accesses
            ),
        }

    result = run_once(benchmark, run)
    table = Table("Ablation — RD/WR separation", ["quantity", "value"])
    for k, v in result.items():
        table.add(k, v)
    emit(table)
    assert result["split_wr_random"] == 0.0  # sequential reads after split
    assert result["split_rd_extra_cache"] > 0.0  # the buffer is not free


def test_ablation_interference(benchmark):
    """Zeroing the platform's interference strength raises throughput for a
    co-running pipeline — contention is a real cost in the model."""

    def run():
        profile = profile_for("K8-G50-U")
        config = megakv_coupled_config()
        out = {}
        for strength in (0.0, APU_A10_7850K.interference_strength):
            platform = dataclasses.replace(APU_A10_7850K, interference_strength=strength)
            analyzer = PipelineAnalyzer(platform, DETAILED_FIDELITY)
            out[strength] = analyzer.estimate(config, profile).throughput_mops
        return out

    result = run_once(benchmark, run)
    table = Table("Ablation — CPU/GPU interference strength", ["strength", "MOPS"])
    for k, v in result.items():
        table.add(k, v)
    emit(table)
    strengths = sorted(result)
    assert result[strengths[0]] > result[strengths[1]]


def test_ablation_steal_chunk_size(benchmark):
    """Smaller steal chunks mean more synchronisation events: the chunked
    steal estimate degrades as the chunk shrinks below the wavefront."""

    def run():
        profile = profile_for("K8-G95-U")
        config = megakv_coupled_config().with_work_stealing(True)
        out = {}
        for chunk in (8, 64, 512):
            fidelity = dataclasses.replace(DETAILED_FIDELITY, steal_chunk=chunk)
            analyzer = PipelineAnalyzer(APU_A10_7850K, fidelity)
            out[chunk] = analyzer.estimate(config, profile).throughput_mops
        return out

    result = run_once(benchmark, run)
    table = Table("Ablation — steal chunk size", ["chunk", "MOPS"])
    for k, v in result.items():
        table.add(k, v)
    emit(table)
    # Tiny chunks pay more sync overhead than the wavefront-sized default.
    assert result[8] <= result[64] + 1e-9
