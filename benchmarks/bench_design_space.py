"""Design-space benchmark: the three systems of the paper's Figure 2 framing.

Compares, on the modelled APU, the two published *static* pipeline designs
(Mega-KV's three stages, MemcachedGPU's two stages) against DIDO's adaptive
pipeline across representative workloads.  The paper's thesis: on a coupled
device no static split is right for every workload, while the adaptive
system matches or beats both everywhere.
"""

from common import emit, run_once

from repro.analysis.reporting import Table
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.memcachedgpu import measure_memcachedgpu
from repro.workloads.ycsb import standard_workload
from repro.core.profiler import WorkloadProfile

LABELS = (
    "K8-G100-U", "K8-G95-S", "K8-G50-U",
    "K16-G95-S", "K32-G95-S",
    "K128-G95-S", "K128-G50-U",
)


def test_design_space(benchmark, harness):
    def run():
        rows = []
        for label in LABELS:
            spec = standard_workload(label)
            profile = WorkloadProfile.from_spec(spec)
            mega = harness.megakv_measure(spec).throughput_mops
            mcg = measure_memcachedgpu(
                APU_A10_7850K, profile, harness.latency_budget_ns
            ).throughput_mops
            dido = harness.dido_measure(spec).throughput_mops
            rows.append((label, mega, mcg, dido))
        return rows

    rows = run_once(benchmark, run)

    table = Table(
        "Design space — static splits vs the adaptive pipeline (MOPS)",
        ["workload", "Mega-KV (3-stage)", "MemcachedGPU (2-stage)", "DIDO", "DIDO wins"],
    )
    for label, mega, mcg, dido in rows:
        table.add(label, mega, mcg, dido, "yes" if dido >= max(mega, mcg) * 0.99 else "")
    emit(table)

    # DIDO at least matches the better static design on most workloads...
    wins = sum(1 for _, mega, mcg, dido in rows if dido >= max(mega, mcg) * 0.99)
    assert wins >= len(rows) - 2
    # ... and strictly beats both somewhere.
    assert any(dido > max(mega, mcg) * 1.1 for _, mega, mcg, dido in rows)
    # The two static designs are comparable in magnitude (both plausible);
    # the adaptive system is what separates from the pack.
    for _, mega, mcg, _ in rows:
        assert 1 / 3 < mcg / mega < 3.0
