"""Figure 18: energy efficiency (KOPS per watt of TDP).

Paper claims: the comparison is *inconclusive* — the discrete testbed wins
on some workloads (small and large keys), DIDO wins on others (16-byte
keys); neither platform dominates.  The structural reason: 690 W of
discrete TDP vs the APU's 95 W roughly offsets the raw throughput gap.
"""

from common import emit, run_once

from repro.analysis.experiments import fig16_discrete_comparison
from repro.analysis.reporting import Table


def test_fig18_energy_efficiency(benchmark, harness):
    rows = run_once(benchmark, lambda: fig16_discrete_comparison(harness))

    table = Table(
        "Figure 18 — energy efficiency (KOPS/W)",
        ["workload", "dido", "megakv_discrete", "dido/discrete"],
    )
    ratios = []
    for r in rows:
        dido_ee, discrete_ee = r.energy_efficiency()
        ratios.append(dido_ee / discrete_ee)
        table.add(r.workload, dido_ee, discrete_ee, dido_ee / discrete_ee)
    emit(table)

    # Inconclusive: the two platforms are within one order of magnitude of
    # each other everywhere, and the ratio varies across workloads.
    assert all(0.1 < ratio < 10.0 for ratio in ratios)
    assert max(ratios) / min(ratios) > 1.15  # workload-dependent
