"""Figure 17: price-performance ratio (KOPS per USD).

Paper claims: the discrete testbed's processors cost ~25x the APU's, so
despite its raw speed DIDO wins price-performance on every shared workload
(paper: 1.1-4.3x better).
"""

from common import emit, run_once

from repro.analysis.experiments import fig16_discrete_comparison
from repro.analysis.reporting import Table


def test_fig17_price_performance(benchmark, harness):
    rows = run_once(benchmark, lambda: fig16_discrete_comparison(harness))

    table = Table(
        "Figure 17 — price-performance (KOPS/USD)",
        ["workload", "dido", "megakv_discrete", "dido_advantage"],
    )
    advantages = []
    for r in rows:
        dido_pp, discrete_pp = r.price_performance()
        advantages.append(dido_pp / discrete_pp)
        table.add(r.workload, dido_pp, discrete_pp, dido_pp / discrete_pp)
    emit(table)

    # DIDO wins price-performance on every workload (paper: 1.1-4.3x).
    assert all(a > 1.0 for a in advantages)
    assert max(advantages) > 1.5
    assert min(advantages) < 6.0  # sanity: not absurdly inflated
