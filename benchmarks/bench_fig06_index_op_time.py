"""Figure 6: share of GPU execution time per index operation.

Paper claim: with a 95 % GET workload, Insert and Delete are under 10 % of
the index operations yet consume 35-56 % of the GPU's execution time,
because GPUs are extremely inefficient on small batches — the motivation
for flexible index-operation assignment.
"""

from common import emit, run_once

from repro.analysis.experiments import fig06_index_op_shares
from repro.analysis.reporting import Table


def test_fig06_index_op_time_shares(benchmark, harness):
    rows = run_once(benchmark, lambda: fig06_index_op_shares(harness))

    table = Table(
        "Figure 6 — GPU time share per index op (95 % GET)",
        ["insert_batch", "search", "insert", "delete", "insert+delete"],
    )
    for r in rows:
        table.add(
            r.insert_batch,
            r.search_share,
            r.insert_share,
            r.delete_share,
            r.insert_share + r.delete_share,
        )
    emit(table)

    for r in rows:
        id_share = r.insert_share + r.delete_share
        op_share = 2 / 21  # Insert+Delete ops vs 19x searches
        # The headline disproportion: time share far above op share.
        assert id_share > 2.0 * op_share
        # Shares are a partition of unity.
        assert r.search_share + id_share == 1.0 or abs(
            r.search_share + id_share - 1.0
        ) < 1e-9
    # At the small-batch end the penalty is at its worst (>= ~35 %).
    assert rows[0].insert_share + rows[0].delete_share > 0.35
