"""Figure 10: DIDO's chosen configuration vs the measured optimum.

Paper claims: the cost model picks the true optimum for most workloads; for
the mismatches the optimum is only a few percent better (paper: 6.6 % on
average over 7 mismatches), while a *poor* configuration can be an order of
magnitude slower — choosing well matters.
"""

from common import emit, run_once

from repro.analysis.experiments import fig10_optimality
from repro.analysis.reporting import Table


def test_fig10_optimality(benchmark, harness):
    rows = run_once(benchmark, lambda: fig10_optimality(harness))

    table = Table(
        "Figure 10 — DIDO vs exhaustive optimum (measured MOPS)",
        ["workload", "dido", "optimal", "worst", "gap_%", "mismatch"],
    )
    for r in rows:
        table.add(
            r.workload,
            r.dido_mops,
            r.optimal_mops,
            r.worst_mops,
            (r.optimal_gap - 1.0) * 100.0,
            "*" if r.mismatch else "",
        )
    emit(table)

    assert len(rows) == 24
    mismatches = [r for r in rows if r.mismatch]
    # The model chooses the measured optimum for most workloads.
    assert len(mismatches) <= 16
    # Where it differs, the forgone throughput is small (paper: ~6.6 %).
    if mismatches:
        avg_gap = sum(r.optimal_gap for r in mismatches) / len(mismatches)
        assert avg_gap < 1.15
    # A poor configuration is catastrophically slower for at least some
    # workloads (paper: "an order of magnitude lower throughput").
    worst_ratio = min(r.worst_mops / r.dido_mops for r in rows)
    assert worst_ratio < 0.5
    # DIDO never chooses something the optimum beats by a large factor.
    assert all(r.optimal_gap < 1.3 for r in rows)
