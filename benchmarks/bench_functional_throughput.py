"""Functional-plane throughput: columnar engine vs per-query dispatch.

Runs a YCSB-style query stream through the functional pipeline under each
canonical pipeline configuration, once with the batch-columnar engine the
pipeline now uses (serial or stealing, per config) and once with the
:class:`~repro.engine.reference.ReferenceEngine` — the pre-refactor
per-query execution path preserved as the baseline.  Asserts the two
engines produce byte-identical response frames, reports queries/sec and
speedup per configuration, and writes ``BENCH_functional.json``.

Standalone (not a pytest benchmark): run as

    PYTHONPATH=src python benchmarks/bench_functional_throughput.py \
        [--batch-size 4096] [--batches 8] [--repeat 3] [--out BENCH_functional.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import Task
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import QueryStream, standard_workload

#: CPU cores assumed for config assembly (the paper's A10-7850K has 4).
TOTAL_CPU_CORES = 4

#: The workload driving the benchmark (16-byte keys, 95 % GET, skewed).
WORKLOAD = "K16-G95-S"


def canonical_configs() -> list[tuple[str, PipelineConfig]]:
    """The pipeline shapes the paper exercises, one per structural family."""
    return [
        ("megakv-coupled", megakv_coupled_config()),
        (
            "cpu-only",
            PipelineConfig.assemble((), total_cpu_cores=TOTAL_CPU_CORES),
        ),
        (
            "in-gpu-reassigned",
            PipelineConfig.assemble(
                (Task.IN,),
                total_cpu_cores=TOTAL_CPU_CORES,
                insert_on_cpu=True,
                delete_on_cpu=True,
                work_stealing=False,
            ),
        ),
        (
            "in-kc-rd-gpu-stealing",
            PipelineConfig.assemble(
                (Task.IN, Task.KC, Task.RD),
                total_cpu_cores=TOTAL_CPU_CORES,
                work_stealing=True,
            ),
        ),
    ]


def make_batches(batch_size: int, batches: int, seed: int) -> list:
    stream = QueryStream(standard_workload(WORKLOAD), num_keys=20_000, seed=seed)
    return [stream.next_batch(batch_size) for _ in range(batches)]


def run_engine(engine, config, batches) -> tuple[float, list[bytes]]:
    """Process all batches on a fresh store; returns (seconds, frame bytes).

    Store construction happens outside the timed region — both engines pay
    it equally and it is not query processing.
    """
    store = KVStore(64 << 20, 40_000)
    pipeline = FunctionalPipeline(store, engine=engine)
    outputs: list[bytes] = []
    t0 = time.perf_counter()
    for batch in batches:
        result = pipeline.process_batch(config, batch)
        outputs.append(b"".join(frame.payload for frame in result.frames))
    elapsed = time.perf_counter() - t0
    return elapsed, outputs


def bench_config(name, config, batches, repeat, total_queries):
    best = {"reference": float("inf"), "columnar": float("inf")}
    reference_frames = columnar_frames = None
    for _ in range(repeat):
        elapsed, reference_frames = run_engine("reference", config, batches)
        best["reference"] = min(best["reference"], elapsed)
        elapsed, columnar_frames = run_engine(None, config, batches)
        best["columnar"] = min(best["columnar"], elapsed)
    if reference_frames != columnar_frames:
        raise AssertionError(
            f"{name}: columnar engine responses differ from the reference engine"
        )
    ref_qps = total_queries / best["reference"]
    col_qps = total_queries / best["columnar"]
    return {
        "config": name,
        "pipeline": config.label,
        "queries": total_queries,
        "reference_qps": round(ref_qps),
        "columnar_qps": round(col_qps),
        "speedup": round(col_qps / ref_qps, 3),
        "byte_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_functional.json")
    args = parser.parse_args(argv)

    batches = make_batches(args.batch_size, args.batches, args.seed)
    total_queries = args.batch_size * args.batches
    results = []
    for name, config in canonical_configs():
        row = bench_config(name, config, batches, args.repeat, total_queries)
        results.append(row)
        print(
            f"{name:24s} ref={row['reference_qps']:>9,} q/s  "
            f"columnar={row['columnar_qps']:>9,} q/s  "
            f"speedup={row['speedup']:.2f}x",
            flush=True,
        )

    payload = {
        "workload": WORKLOAD,
        "batch_size": args.batch_size,
        "batches": args.batches,
        "results": results,
        "mean_speedup": round(
            sum(r["speedup"] for r in results) / len(results), 3
        ),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} (mean speedup {payload['mean_speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
