"""Functional-plane throughput: engine backends vs per-query dispatch.

Runs a YCSB-style query stream through the functional pipeline under each
canonical pipeline configuration with every functional backend — the
:class:`~repro.engine.reference.ReferenceEngine` (the pre-refactor
per-query path, kept as baseline), the auto-picked columnar engine
(serial/stealing per config), the NumPy
:class:`~repro.engine.vector.VectorEngine`, and the
:class:`~repro.engine.sharded.ShardedEngine` over a 4-way
:class:`~repro.kv.sharding.ShardedKVStore`.  Asserts every backend
produces byte-identical response frames, reports queries/sec and speedups,
and writes ``BENCH_functional.json``.

Standalone (not a pytest benchmark): run as

    PYTHONPATH=src python benchmarks/bench_functional_throughput.py \
        [--batch-size 4096] [--batches 8] [--repeat 3] [--shards 4] \
        [--out BENCH_functional.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import Task
from repro.engine import ShardedEngine
from repro.kv.sharding import ShardedKVStore
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import QueryStream, standard_workload

#: CPU cores assumed for config assembly (the paper's A10-7850K has 4).
TOTAL_CPU_CORES = 4

#: The workload driving the benchmark (16-byte keys, 95 % GET, skewed).
WORKLOAD = "K16-G95-S"


def canonical_configs() -> list[tuple[str, PipelineConfig]]:
    """The pipeline shapes the paper exercises, one per structural family."""
    return [
        ("megakv-coupled", megakv_coupled_config()),
        (
            "cpu-only",
            PipelineConfig.assemble((), total_cpu_cores=TOTAL_CPU_CORES),
        ),
        (
            "in-gpu-reassigned",
            PipelineConfig.assemble(
                (Task.IN,),
                total_cpu_cores=TOTAL_CPU_CORES,
                insert_on_cpu=True,
                delete_on_cpu=True,
                work_stealing=False,
            ),
        ),
        (
            "in-kc-rd-gpu-stealing",
            PipelineConfig.assemble(
                (Task.IN, Task.KC, Task.RD),
                total_cpu_cores=TOTAL_CPU_CORES,
                work_stealing=True,
            ),
        ),
    ]


def make_batches(batch_size: int, batches: int, seed: int) -> list:
    stream = QueryStream(standard_workload(WORKLOAD), num_keys=20_000, seed=seed)
    return [stream.next_batch(batch_size) for _ in range(batches)]


def run_engine(engine, config, batches, shards: int = 1) -> tuple[float, list[bytes]]:
    """Process all batches on a fresh store; returns (seconds, frame bytes).

    Store construction happens outside the timed region — all engines pay
    it equally and it is not query processing.
    """
    if shards > 1:
        store = ShardedKVStore(64 << 20, 40_000, shards)
    else:
        store = KVStore(64 << 20, 40_000)
    pipeline = FunctionalPipeline(store, engine=engine)
    outputs: list[bytes] = []
    t0 = time.perf_counter()
    for batch in batches:
        result = pipeline.process_batch(config, batch)
        outputs.append(b"".join(frame.payload for frame in result.frames))
    elapsed = time.perf_counter() - t0
    return elapsed, outputs


def bench_config(name, config, batches, repeat, total_queries, shards, sharded_engine):
    """One canonical config across every backend; asserts byte-identity."""
    contenders = {
        "reference": ("reference", 1),
        "columnar": (None, 1),
        "serial": ("serial", 1),
        "vector": ("vector", 1),
        "sharded": (sharded_engine, shards),
    }
    best = {label: float("inf") for label in contenders}
    frames: dict[str, list[bytes]] = {}
    for _ in range(repeat):
        for label, (engine, engine_shards) in contenders.items():
            elapsed, frames[label] = run_engine(engine, config, batches, engine_shards)
            best[label] = min(best[label], elapsed)
    for label in contenders:
        if frames[label] != frames["reference"]:
            raise AssertionError(
                f"{name}: {label} engine responses differ from the reference engine"
            )
    qps = {label: total_queries / seconds for label, seconds in best.items()}
    return {
        "config": name,
        "pipeline": config.label,
        "queries": total_queries,
        "reference_qps": round(qps["reference"]),
        "columnar_qps": round(qps["columnar"]),
        "serial_qps": round(qps["serial"]),
        "vector_qps": round(qps["vector"]),
        "sharded_qps": round(qps["sharded"]),
        "speedup": round(qps["columnar"] / qps["reference"], 3),
        "vector_speedup_vs_serial": round(qps["vector"] / qps["serial"], 3),
        "sharded_speedup_vs_serial": round(qps["sharded"] / qps["serial"], 3),
        "byte_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--out", default="BENCH_functional.json")
    args = parser.parse_args(argv)

    batches = make_batches(args.batch_size, args.batches, args.seed)
    total_queries = args.batch_size * args.batches
    sharded_engine = ShardedEngine()
    results = []
    try:
        for name, config in canonical_configs():
            row = bench_config(
                name, config, batches, args.repeat, total_queries,
                args.shards, sharded_engine,
            )
            results.append(row)
            print(
                f"{name:24s} ref={row['reference_qps']:>9,} q/s  "
                f"vector={row['vector_qps']:>9,} q/s "
                f"({row['vector_speedup_vs_serial']:.2f}x serial)  "
                f"sharded={row['sharded_qps']:>9,} q/s "
                f"({row['sharded_speedup_vs_serial']:.2f}x serial)",
                flush=True,
            )
    finally:
        sharded_engine.close()

    payload = {
        "workload": WORKLOAD,
        "batch_size": args.batch_size,
        "batches": args.batches,
        "shards": args.shards,
        # Sharded speedups depend on real cores; record the host size so
        # flat numbers on 1-2 core CI hosts are self-explaining.
        "cpu_count": os.cpu_count(),
        "results": results,
        "mean_speedup": round(
            sum(r["speedup"] for r in results) / len(results), 3
        ),
        "mean_vector_speedup_vs_serial": round(
            sum(r["vector_speedup_vs_serial"] for r in results) / len(results), 3
        ),
        "mean_sharded_speedup_vs_serial": round(
            sum(r["sharded_speedup_vs_serial"] for r in results) / len(results), 3
        ),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} (mean speedup {payload['mean_speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
