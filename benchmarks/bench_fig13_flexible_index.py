"""Figure 13: flexible index-operation assignment, pipeline fixed.

Paper claims: with the pipeline pinned to Mega-KV's partitioning, freely
placing Insert/Delete improves throughput consistently across the 95 % and
50 % GET workloads, and the 95 % GET gains dominate the 50 % GET ones
(whose [RV,PP,MM] stage becomes the bottleneck once it also hosts
Insert/Delete).

Reproduction note (see EXPERIMENTS.md): this is the weakest figure
quantitatively — under a steady-state pipeline model the technique only
pays when the GPU stage binds, so our gains are single-digit percent where
the paper reports up to 56 %.  The orderings (never harmful; G95 >= G50)
are asserted; the magnitudes are not.
"""

from common import emit, run_once

from repro.analysis.experiments import fig13_flexible_index
from repro.analysis.reporting import Table


def test_fig13_flexible_index(benchmark, harness):
    rows = run_once(benchmark, lambda: fig13_flexible_index(harness))

    table = Table(
        "Figure 13 — flexible index-op assignment (fixed pipeline)",
        ["workload", "all_on_gpu_MOPS", "best_policy_MOPS", "speedup"],
    )
    for r in rows:
        table.add(r.workload, r.baseline_mops, r.technique_mops, r.speedup)
    emit(table)

    assert len(rows) == 16  # 95 % and 50 % GET workloads
    # Free placement can never lose: the all-on-GPU policy is in the set.
    assert all(r.speedup >= 0.999 for r in rows)
    # The technique helps somewhere.
    assert max(r.speedup for r in rows) > 1.0

    g95 = [r.speedup for r in rows if "-G95-" in r.workload]
    g50 = [r.speedup for r in rows if "-G50-" in r.workload]
    assert sum(g95) / len(g95) >= sum(g50) / len(g50) - 0.02
