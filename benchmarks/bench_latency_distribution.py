"""Extension benchmark: per-query latency distribution (beyond the paper).

The paper reports only the average-latency bound; this bench derives the
full distribution implied by periodical scheduling for both systems.  DIDO
improves *throughput* at equal latency budget — and because it often plans
the same three-stage depth, its tail latency stays within the same envelope
as Mega-KV's.
"""

from common import emit, run_once

from repro.analysis.latency import latency_profile
from repro.analysis.reporting import Table
from repro.workloads.ycsb import standard_workload
from repro.pipeline.megakv import megakv_coupled_config
from repro.core.profiler import WorkloadProfile

LABELS = ("K8-G95-S", "K16-G95-S", "K32-G95-S", "K128-G95-S")


def test_latency_distribution(benchmark, harness):
    def run():
        rows = []
        for label in LABELS:
            spec = standard_workload(label)
            profile = WorkloadProfile.from_spec(spec)
            mega = harness.megakv_exec.estimate(
                megakv_coupled_config(), profile, harness.latency_budget_ns
            )
            config, _ = harness.dido_plan(spec)
            dido = harness.executor.estimate(
                config, profile, harness.latency_budget_ns
            )
            rows.append((label, latency_profile(mega), latency_profile(dido)))
        return rows

    rows = run_once(benchmark, run)

    table = Table(
        "Latency distribution (us): Mega-KV vs DIDO at a 1,000 us budget",
        ["workload", "mega_p50", "mega_p99", "dido_p50", "dido_p99"],
    )
    for label, mega, dido in rows:
        table.add(label, mega.p50_us, mega.p99_us, dido.p50_us, dido.p99_us)
    emit(table)

    for label, mega, dido in rows:
        # Both systems respect the budget on average ...
        assert mega.mean_us <= 1050.0
        assert dido.mean_us <= 1050.0
        # ... and even the worst-case query stays within ~1.4x of it.
        assert mega.worst_us <= 1400.0
        assert dido.worst_us <= 1400.0
        # Percentiles are ordered sanely.
        assert dido.p50_us < dido.p99_us <= dido.worst_us
