"""Figure 20: DIDO throughput under dynamically alternating workloads.

Paper claims: alternating K8-G50-U and K16-G95-S every 3 ms, the throughput
dips right after each switch (in-flight batches still run the stale
pipeline) and recovers to the new workload's peak within about a
millisecond — the cost-model-guided adaptation works at runtime.
"""

from common import emit, run_once

from repro.analysis.experiments import fig20_adaptation_timeline
from repro.analysis.reporting import Table


def test_fig20_adaptation_timeline(benchmark, harness):
    timeline = run_once(
        benchmark, lambda: fig20_adaptation_timeline(harness, cycle_ms=6.0, duration_ms=15.0)
    )

    table = Table(
        "Figure 20 — throughput timeline, alternating K8-G50-U / K16-G95-S",
        ["time_ms", "throughput_MOPS", "pipeline"],
    )
    for t, thr, cfg in zip(
        timeline.times_ms, timeline.throughput_mops, timeline.configs
    ):
        table.add(t, thr, cfg)
    emit(table)

    assert len(timeline.times_ms) >= 20
    # The controller re-planned at every workload switch (plus the first).
    assert timeline.replans >= 4
    # More than one pipeline configuration was actually in effect.
    assert len(set(timeline.configs)) >= 2
    # Throughput varies across phases (the two workloads differ) ...
    peak, trough = max(timeline.throughput_mops), min(timeline.throughput_mops)
    assert peak > trough * 1.1
    # ... but the system never stalls.
    assert trough > 0.0
