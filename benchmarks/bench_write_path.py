"""Write path: slab vs log-arena throughput across GET/SET mixes.

Drives the K16 workload at GET ratios {1.0, 0.95, 0.5, 0.0} (G100 — the
read-only control — through G0, all-writes) plus a *write burst* of
never-seen keys through the functional backends, once per value heap
(``--heap`` matrix: the classic slab allocator and the log-structured
value arena).  Every heap x engine combination's response frames are
asserted byte-identical to the per-query reference engine running on the
slab heap before any number is recorded, then the best-of-``--repeat``
queries/sec lands in ``BENCH_write.json``.

What the columns should show: on the slab every SET pays a KVObject
construction (a pure-Python FNV pass over the key), a size-class lookup
and an ``OrderedDict`` LRU insert; on the log arena a batch's SET run is
one offsets walk plus a single columnar copy into the open segment
(:meth:`LogValueArena.multi_allocate_kv`), and each replaced key's
Insert+Delete index pair settles as one in-place slot rewrite at MM time
(``CuckooHashTable.reassign_prehashed``), leaving the IN phases nothing
to queue.  So the write-heavy mixes are where the heaps separate — the
headline ratios are ``log/slab`` at G50 (target >= 1.5x) and how close
G50 sits to G95 on the log arena (the write half should no longer
dominate the batch) — while G100 is the control where both heaps serve
the same read path.  The procshard contender routes every sub-batch
over shared-memory rings, a heap-independent transport cost that
dilutes its ratios on the 1-core CI hosts ``cpu_count`` records.

Stores are provisioned far above the working set, so neither heap evicts
or compacts inside a timed run: the numbers isolate the allocation write
path (compaction cost rides the idle tick; see
``KVStore.maintenance``).

Standalone (not a pytest benchmark): run as

    PYTHONPATH=src python benchmarks/bench_write_path.py \
        [--batch-size 4096] [--batches 8] [--warmup 2] [--repeat 3] \
        [--shards 4] [--contenders serial,vector] [--out BENCH_write.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from collections import deque

from repro.engine import SerialEngine, ShardedEngine, VectorEngine
from repro.engine.procshard import ProcShardEngine, ProcShardStore
from repro.kv.protocol import Query, QueryType
from repro.kv.sharding import ShardedKVStore
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.datasets import dataset_by_name
from repro.workloads.ycsb import QueryStream, WorkloadSpec

#: Key space sampled by the stream (prefilled before timing).
NUM_KEYS = 20_000

#: The GET/SET mixes swept, most-read-heavy first.
MIXES = (("G100", 1.0), ("G95", 0.95), ("G50", 0.5), ("G0", 0.0))

HEAPS = ("slab", "log")


def make_batches(get_ratio: float, batch_size: int, batches: int, seed: int):
    spec = WorkloadSpec(
        dataset=dataset_by_name("K16"), get_ratio=get_ratio, zipf_skew=0.0
    )
    stream = QueryStream(spec, num_keys=NUM_KEYS, seed=seed)
    return stream, [stream.next_batch(batch_size) for _ in range(batches)]


def make_burst_batches(batch_size: int, batches: int):
    """All-SET batches of brand-new 16 B keys / 64 B values (bulk ingest)."""
    out = []
    counter = 0
    for _ in range(batches):
        batch = []
        for _ in range(batch_size):
            key = b"burst-%010d" % counter
            value = (b"%016d" % counter) * 4
            batch.append(Query(QueryType.SET, key, value))
            counter += 1
        out.append(batch)
    return out


def fresh_store(
    stream, shards: int, heap: str, kind: str = "thread", delta: bool = False
):
    if kind == "proc":
        store = ProcShardStore(
            64 << 20, 4 * NUM_KEYS, shards, heap=heap, delta_index=delta
        )
    elif shards > 1:
        store = ShardedKVStore(
            64 << 20, 4 * NUM_KEYS, shards, heap=heap, delta_index=delta
        )
    else:
        store = KVStore(64 << 20, 4 * NUM_KEYS, heap=heap, delta_index=delta)
    if stream is not None:
        store.populate(stream.populate_items(NUM_KEYS))
        if delta and hasattr(store, "maintenance"):
            # land prefill bindings in the main table so the timed region
            # starts from the same steady state as the plain contender
            store.maintenance(force=True)
    return store


def contenders(shards: int):
    """(label, engine factory, shards, store kind, delta, pipelined)."""
    return [
        ("serial", lambda: SerialEngine(), 1, "thread", False, False),
        ("vector", lambda: VectorEngine(), 1, "thread", False, False),
        (
            "sharded",
            lambda: ShardedEngine(VectorEngine()),
            shards,
            "thread",
            False,
            False,
        ),
        ("procshard", lambda: ProcShardEngine(), shards, "proc", False, False),
        # Double-buffered submit/collect over the same worker fleet: the
        # write path keeps byte-identity because each shard's ring is a
        # strict FIFO (window N's SETs land before window N+1 probes).
        (
            "procshard-pipelined",
            lambda: ProcShardEngine(),
            shards,
            "proc",
            False,
            True,
        ),
        ("serial-delta", lambda: SerialEngine(), 1, "thread", True, False),
        ("vector-delta", lambda: VectorEngine(), 1, "thread", True, False),
        (
            "sharded-delta",
            lambda: ShardedEngine(VectorEngine()),
            shards,
            "thread",
            True,
            False,
        ),
        ("procshard-delta", lambda: ProcShardEngine(), shards, "proc", True, False),
    ]


def run_engine(
    engine, config, stream, batches, shards, heap, warmup, kind="thread",
    delta=False, pipelined=False,
):
    """All batches on a fresh prefilled store; (timed seconds, frame bytes).

    The clock covers only the post-warmup batches; the returned output
    list covers every batch so identity checks span warmup too.  With
    ``pipelined`` the runner keeps one window in flight (submit N+1, then
    collect N), draining at the warmup boundary and before the clock stops.
    """
    store = fresh_store(stream, shards, heap, kind, delta)
    pipeline = FunctionalPipeline(store, engine=engine)
    results = []
    gc.collect()
    t0 = None
    if pipelined:
        pending = deque()
        for i, batch in enumerate(batches):
            if i == warmup:
                while pending:
                    results.append(pipeline.collect_batch(pending.popleft()))
                t0 = time.perf_counter()
            pending.append(pipeline.submit_batch(config, batch))
            while len(pending) > 1:
                results.append(pipeline.collect_batch(pending.popleft()))
        while pending:
            results.append(pipeline.collect_batch(pending.popleft()))
    else:
        for i, batch in enumerate(batches):
            if i == warmup:
                t0 = time.perf_counter()
            results.append(pipeline.process_batch(config, batch))
    elapsed = time.perf_counter() - (t0 if t0 is not None else time.perf_counter())
    outputs = [
        b"".join(frame.payload for frame in result.frames) for result in results
    ]
    if isinstance(engine, ShardedEngine):
        engine.close()
    if isinstance(store, ProcShardStore):
        store.close()
    return elapsed, outputs


def bench_mix(
    label, config, stream, batches, batch_size, num_batches, warmup, repeat,
    shards, only=None,
):
    """One row: every heap x contender on identical batches, identity-checked."""
    timed_queries = batch_size * num_batches
    _, reference = run_engine(
        "reference", config, stream, batches, 1, "slab", warmup
    )
    row = {
        "mix": label,
        "queries": timed_queries,
        "byte_identical": True,
        "slab": {},
        "log": {},
    }
    for heap in HEAPS:
        for name, factory, engine_shards, kind, delta, pipelined in (
            contenders(shards)
        ):
            if only is not None and name not in only:
                continue
            best = float("inf")
            for _ in range(repeat):
                elapsed, outputs = run_engine(
                    factory(), config, stream, batches, engine_shards, heap,
                    warmup, kind, delta, pipelined,
                )
                if outputs != reference:
                    raise AssertionError(
                        f"{label}: {heap}/{name} responses differ from the "
                        "reference engine on slab"
                    )
                best = min(best, elapsed)
            row[heap][f"{name}_qps"] = round(timed_queries / best)
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--batches", type=int, default=8)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--contenders",
        default=None,
        help="comma-separated contender labels to run (default: all)",
    )
    parser.add_argument("--out", default="BENCH_write.json")
    args = parser.parse_args(argv)

    config = megakv_coupled_config()
    only = None
    if args.contenders:
        only = {label.strip() for label in args.contenders.split(",") if label.strip()}
        known = {label for label, *_ in contenders(args.shards)}
        unknown = only - known
        if unknown:
            parser.error(f"unknown contenders: {sorted(unknown)}")

    total_batches = args.batches + args.warmup
    results = []
    for label, get_ratio in MIXES:
        stream, batches = make_batches(
            get_ratio, args.batch_size, total_batches, args.seed
        )
        row = bench_mix(
            label, config, stream, batches, args.batch_size, args.batches,
            args.warmup, args.repeat, args.shards, only,
        )
        row["get_ratio"] = get_ratio
        results.append(row)
        _print_row(row)
    burst = make_burst_batches(args.batch_size, total_batches)
    stream, _ = make_batches(1.0, 1, 1, args.seed)  # prefill only
    row = bench_mix(
        "burst", config, stream, burst, args.batch_size, args.batches,
        args.warmup, args.repeat, args.shards, only,
    )
    row["get_ratio"] = 0.0
    row["fresh_keys"] = True
    results.append(row)
    _print_row(row)

    by_mix = {row["mix"]: row for row in results}
    summary = {}
    for name, *_ in contenders(args.shards):
        if only is not None and name not in only:
            continue
        g50 = by_mix.get("G50")
        if g50 and g50["slab"].get(f"{name}_qps"):
            # The headline claim: the columnar log write path clears 1.5x
            # over the slab at the 50/50 mix on the same backend.
            summary[f"{name}_log_over_slab_g50"] = round(
                g50["log"][f"{name}_qps"] / g50["slab"][f"{name}_qps"], 3
            )
        g95 = by_mix.get("G95")
        if g50 and g95 and g95["log"].get(f"{name}_qps"):
            # How far writes drag the log arena below its read-heavy pace
            # (>= ~0.67 keeps G50 within 1.5x of G95).
            summary[f"{name}_log_g50_vs_g95"] = round(
                g50["log"][f"{name}_qps"] / g95["log"][f"{name}_qps"], 3
            )
        burst_row = by_mix.get("burst")
        if burst_row and burst_row["slab"].get(f"{name}_qps"):
            summary[f"{name}_log_over_slab_burst"] = round(
                burst_row["log"][f"{name}_qps"] / burst_row["slab"][f"{name}_qps"],
                3,
            )
        if name.endswith("-delta"):
            # Delta-index speedup over the same backend's per-op index
            # updates on the log heap; G0 and the fresh-key burst are the
            # write-absorption headline (target >= 1.3x on vector).
            base = name[: -len("-delta")]
            for mix_label, key in (("G0", "g0"), ("burst", "burst")):
                mix_row = by_mix.get(mix_label)
                if mix_row and mix_row["log"].get(f"{base}_qps") and mix_row[
                    "log"
                ].get(f"{name}_qps"):
                    summary[f"{base}_delta_over_plain_{key}"] = round(
                        mix_row["log"][f"{name}_qps"]
                        / mix_row["log"][f"{base}_qps"],
                        3,
                    )

    payload = {
        "workload": "K16 write-path sweep (G100/G95/G50/G0 + burst)",
        "batch_size": args.batch_size,
        "batches": args.batches,
        "warmup": args.warmup,
        "num_keys": NUM_KEYS,
        "shards": args.shards,
        "cpu_count": os.cpu_count(),
        "pipeline": config.label,
        "summary": summary,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


def _print_row(row):
    parts = [f"{row['mix']:<5}"]
    for name in (
        "serial", "vector", "sharded", "procshard",
        "serial-delta", "vector-delta", "sharded-delta", "procshard-delta",
    ):
        slab = row["slab"].get(f"{name}_qps")
        log = row["log"].get(f"{name}_qps")
        if slab and log:
            parts.append(f"{name}: slab={slab:>9,} log={log:>9,} ({log / slab:.2f}x)")
    print("  ".join(parts), flush=True)


if __name__ == "__main__":
    sys.exit(main())
