"""Output helpers shared by the benchmark files (kept outside conftest so
they import unambiguously even when tests/ and benchmarks/ are collected in
one pytest invocation)."""

from __future__ import annotations

import sys

from repro.analysis.reporting import Table


def emit(table: Table) -> None:
    """Print a results table, bypassing pytest capture."""
    print("\n" + table.render() + "\n", file=sys.__stdout__, flush=True)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
