"""Cluster serving benchmark: fleet scaling, byte-identity, live migration.

Three phases, all against real ``repro serve`` subprocesses supervised by
an in-process :class:`~repro.cluster.serving.ClusterCoordinator`:

1. **Scaling sweep** — closed-loop QPS and open-loop p99 for fleets of
   {1, 2, 4} nodes, driven by the manifest-routed cluster load generator
   (per-node tapes cut from one deterministic sequence).

2. **Byte-identity gate** (hard failure) — the same deterministic query
   sequence is executed in order through the routed :class:`ClusterClient`
   against a 1-node and a 2-node fleet; the concatenated
   ``status || value`` response streams must be byte-equal.  Sharding the
   keyspace must be invisible to clients.

3. **Live add-node migration** (hard failure) — prefill a 2-node fleet,
   run a reader thread while ``add_node`` migrates arcs to a third node,
   then verify every key reads back byte-for-byte and no reader observed
   a wrong response.  Records moved keys/bytes, migration duration, and
   reader availability (timeouts, redirects followed).

Honesty note: the scaling numbers are bounded by the host — this bench
records ``cpu_count`` so a 1-core container's flat QPS curve is legible
as a hardware limit, not a routing defect.  The correctness gates (2, 3)
are the acceptance bar everywhere.

Standalone (not a pytest benchmark): run as

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        [--duration 3] [--queries 49152] [--trials 2] [--out BENCH_cluster.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

from repro.client import ClusterClient
from repro.cluster.serving import ClusterCoordinator
from repro.kv.protocol import Query, QueryType, ResponseStatus
from repro.loadgen import WorkloadShape, make_keys, run_cluster_loadgen


def serve_args(args: argparse.Namespace) -> list[str]:
    return [
        "--memory-mb", str(args.memory_mb),
        "--expected-objects", str(args.expected_objects),
        "--batch-size", str(args.batch_size),
    ]


def boot(nodes: int, args: argparse.Namespace) -> ClusterCoordinator:
    coordinator = ClusterCoordinator(nodes=nodes, serve_args=serve_args(args))
    coordinator.start(timeout_s=60.0)
    return coordinator


def deterministic_queries(shape: WorkloadShape, count: int) -> list[Query]:
    """The loadgen tape's query sequence, as explicit in-order queries."""
    import random

    rng = random.Random(shape.seed)
    keys = make_keys(shape)
    value = b"v" * shape.value_size
    queries = []
    for _ in range(count):
        key = keys[rng.randrange(len(keys))]
        if rng.random() < shape.get_ratio:
            queries.append(Query(QueryType.GET, key))
        else:
            queries.append(Query(QueryType.SET, key, value))
    return queries


def response_blob(client: ClusterClient, queries: list[Query], chunk: int = 512) -> bytes:
    """Execute in order; concatenate ``status || value`` per response."""
    blob = bytearray()
    for start in range(0, len(queries), chunk):
        for response in client.execute(queries[start : start + chunk]):
            blob.append(response.status.value)
            if response.value is not None:
                blob.extend(response.value)
    return bytes(blob)


def run_scaling(args: argparse.Namespace, shape: WorkloadShape) -> dict:
    results: dict[str, dict] = {}
    for nodes in args.node_counts:
        with boot(nodes, args) as coordinator:
            control = coordinator.control_address
            best = None
            for trial in range(args.trials):
                report = run_cluster_loadgen(
                    control,
                    shape,
                    mode="closed",
                    queries=args.queries,
                    workers=args.workers,
                    depth=args.depth,
                    duration_s=args.duration,
                    do_prefill=trial == 0,
                )
                print(f"nodes={nodes} trial {trial + 1}/{args.trials} {report}",
                      flush=True)
                if best is None or report.qps > best.qps:
                    best = report
            open_report = run_cluster_loadgen(
                control,
                shape,
                mode="open",
                queries=args.queries,
                rate_qps=args.open_rate,
                duration_s=args.duration,
                do_prefill=False,
            )
            print(f"nodes={nodes} open-loop {open_report}", flush=True)
            results[str(nodes)] = {
                "closed": best.to_dict(),
                "open": open_report.to_dict(),
            }
    base = results[str(args.node_counts[0])]["closed"]["qps"]
    for nodes in args.node_counts:
        entry = results[str(nodes)]
        entry["speedup_vs_1node"] = (
            round(entry["closed"]["qps"] / base, 3) if base else 0.0
        )
    return results


def run_identity(args: argparse.Namespace, shape: WorkloadShape) -> dict:
    queries = deterministic_queries(shape, min(args.queries, 16384))
    blobs: dict[int, bytes] = {}
    stats: dict[int, dict] = {}
    for nodes in (1, 2):
        with boot(nodes, args) as coordinator:
            with ClusterClient(coordinator.control_address, timeout_s=5.0) as client:
                blobs[nodes] = response_blob(client, queries)
                stats[nodes] = {
                    "redirects": client.stats.redirects,
                    "retries": client.stats.retries,
                }
    if blobs[1] != blobs[2]:
        raise AssertionError(
            "cluster responses are not byte-identical to single-node "
            f"({len(blobs[1])} vs {len(blobs[2])} bytes)"
        )
    print(f"byte-identity: OK ({len(blobs[1]):,} response bytes, "
          f"{len(queries):,} queries, 2-node vs 1-node)", flush=True)
    return {
        "queries": len(queries),
        "response_bytes": len(blobs[1]),
        "byte_identical": True,
        "client_stats": {str(n): stats[n] for n in stats},
    }


def run_migration(args: argparse.Namespace, shape: WorkloadShape) -> dict:
    keys = make_keys(shape)
    expected = {key: b"m:" + key for key in keys}
    with boot(2, args) as coordinator:
        control = coordinator.control_address
        with ClusterClient(control, timeout_s=5.0) as client:
            items = list(expected.items())
            for start in range(0, len(items), 512):
                client.execute([
                    Query(QueryType.SET, k, v) for k, v in items[start : start + 512]
                ])

        # Readers hammer the fleet throughout the migration; any response
        # that is not the expected value is a correctness failure.
        stop = threading.Event()
        reader_state = {"reads": 0, "wrong": 0}

        def reader() -> None:
            with ClusterClient(control, timeout_s=5.0) as rc:
                i = 0
                while not stop.is_set():
                    key = keys[i % len(keys)]
                    i += 1
                    value = rc.get(key)
                    reader_state["reads"] += 1
                    if value != expected[key]:
                        reader_state["wrong"] += 1
                reader_state["redirects"] = rc.stats.redirects
                reader_state["retries"] = rc.stats.retries
                reader_state["timeouts"] = rc.stats.timeouts
                reader_state["epochs_seen"] = list(rc.stats.epochs_seen)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.3)  # let the reader reach steady state first
        started = time.monotonic()
        summary = coordinator.add_node()
        add_wall_s = time.monotonic() - started
        time.sleep(0.3)  # observe the post-migration topology too
        stop.set()
        thread.join(timeout=30)

        # The hard gate: every key reads back byte-for-byte afterwards.
        with ClusterClient(control, timeout_s=5.0) as verify:
            mismatches = 0
            for start in range(0, len(keys), 512):
                chunk = keys[start : start + 512]
                responses = verify.execute([Query(QueryType.GET, k) for k in chunk])
                for key, response in zip(chunk, responses):
                    if (
                        response.status is not ResponseStatus.OK
                        or response.value != expected[key]
                    ):
                        mismatches += 1
    if reader_state["wrong"]:
        raise AssertionError(
            f"{reader_state['wrong']} wrong responses observed during migration"
        )
    if mismatches:
        raise AssertionError(
            f"{mismatches}/{len(keys)} keys wrong after live migration"
        )
    print(f"migration: OK ({summary['moved_keys']:,} keys / "
          f"{summary['moved_bytes']:,} bytes moved in {add_wall_s:.2f}s; "
          f"{reader_state['reads']:,} concurrent reads, 0 wrong)", flush=True)
    return {
        "keys": len(keys),
        "moved_keys": summary["moved_keys"],
        "moved_bytes": summary["moved_bytes"],
        "epoch": summary["epoch"],
        "add_node_wall_s": round(add_wall_s, 3),
        "concurrent_reads": reader_state["reads"],
        "wrong_responses": reader_state["wrong"],
        "post_migration_mismatches": mismatches,
        "reader_redirects": reader_state.get("redirects", 0),
        "reader_retries": reader_state.get("retries", 0),
        "reader_timeouts": reader_state.get("timeouts", 0),
        "reader_epochs_seen": reader_state.get("epochs_seen", []),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--node-counts", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--depth", type=int, default=8)
    parser.add_argument("--open-rate", type=float, default=20_000.0,
                        help="open-loop offered rate (whole fleet)")
    parser.add_argument("--queries", type=int, default=49152, help="tape length")
    parser.add_argument("--num-keys", type=int, default=2048)
    parser.add_argument("--key-size", type=int, default=16)
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--get-ratio", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--memory-mb", type=int, default=64)
    parser.add_argument("--expected-objects", type=int, default=65536)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--skip-scaling", action="store_true",
                        help="run only the correctness gates (CI smoke)")
    parser.add_argument("--out", default="BENCH_cluster.json")
    args = parser.parse_args(argv)

    shape = WorkloadShape(
        num_keys=args.num_keys,
        key_size=args.key_size,
        value_size=args.value_size,
        get_ratio=args.get_ratio,
        seed=args.seed,
    )

    payload: dict = {
        "cpu_count": os.cpu_count(),
        "workload": {
            "num_keys": args.num_keys,
            "key_size": args.key_size,
            "value_size": args.value_size,
            "get_ratio": args.get_ratio,
            "queries": args.queries,
        },
        "note": (
            "QPS scaling is bounded by host cores: every node is a separate "
            "process, but on a 1-core host the fleet time-slices one CPU and "
            "the curve stays flat. The correctness gates (byte_identity, "
            "migration) are the acceptance bar."
        ),
    }
    payload["byte_identity"] = run_identity(args, shape)
    payload["migration"] = run_migration(args, shape)
    if not args.skip_scaling:
        payload["scaling"] = run_scaling(args, shape)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
