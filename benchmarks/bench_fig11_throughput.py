"""Figure 11: DIDO throughput improvement over Mega-KV (Coupled).

Paper claims: DIDO beats the static baseline on all 24 workloads (up to
~3x, average ~1.8x), with larger gains for smaller key-values (K8/K16 above
K32/K128) and for read-intensive mixes (95/100 % GET above 50 % GET).
"""

from common import emit, run_once

from repro.analysis.experiments import fig11_throughput
from repro.analysis.reporting import Table


def _avg(values):
    values = list(values)
    return sum(values) / len(values)


def test_fig11_throughput(benchmark, harness):
    rows = run_once(benchmark, lambda: fig11_throughput(harness))

    table = Table(
        "Figure 11 — DIDO vs Mega-KV (Coupled)",
        ["workload", "megakv_MOPS", "dido_MOPS", "speedup", "dido_pipeline"],
    )
    for r in rows:
        table.add(r.workload, r.baseline_mops, r.dido_mops, r.speedup, r.dido_config)
    emit(table)

    assert len(rows) == 24
    speedups = {r.workload: r.speedup for r in rows}
    # DIDO wins (or at worst ties) everywhere.
    assert all(s >= 0.99 for s in speedups.values())
    # Meaningful average gain (paper: 81 % average).
    assert _avg(speedups.values()) > 1.4
    # Somewhere the gain is large (paper: up to 3x).
    assert max(speedups.values()) > 1.8

    def group(prefix):
        return _avg(v for k, v in speedups.items() if k.startswith(prefix + "-"))

    def ratio(tag):
        return _avg(v for k, v in speedups.items() if f"-{tag}-" in k)

    # Key-value-size ordering: small beats large.
    assert _avg([group("K8"), group("K16")]) > _avg([group("K32"), group("K128")])
    assert group("K128") == min(group(k) for k in ("K8", "K16", "K32", "K128"))
    # GET-ratio ordering: read-intensive beats write-heavy.
    assert ratio("G95") > ratio("G50")
    assert ratio("G100") > ratio("G50")
