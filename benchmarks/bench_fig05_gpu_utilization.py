"""Figure 5: GPU utilisation of Mega-KV on the coupled architecture.

Paper claim: the static pipeline leaves the GPU severely underutilised —
about half-busy at best for small key-values, collapsing as the key-value
size grows (fewer queries fit the 300 us interval, shrinking GPU batches).
"""

from common import emit, run_once

from repro.analysis.experiments import fig04_stage_times
from repro.analysis.reporting import Table


def test_fig05_gpu_utilization(benchmark, harness):
    rows = run_once(benchmark, lambda: fig04_stage_times(harness))

    table = Table(
        "Figure 5 — Mega-KV (Coupled) GPU utilisation, G95-S",
        ["dataset", "gpu_util", "cpu_util"],
    )
    for r in rows:
        table.add(r.dataset, r.gpu_utilization, r.cpu_utilization)
    emit(table)

    utils = [r.gpu_utilization for r in rows]
    # Monotonically decreasing with key-value size.
    assert utils == sorted(utils, reverse=True)
    # Underutilised across the board; badly so for the largest dataset.
    assert all(u < 0.85 for u in utils)
    assert utils[-1] < 0.55
    # The gap between best and worst is substantial (paper: 51 % -> 12 %).
    assert utils[0] - utils[-1] > 0.2
