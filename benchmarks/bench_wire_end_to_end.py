"""End-to-end wire-plane throughput: columnar vs legacy over real UDP.

Boots a loopback :class:`~repro.server.DidoUDPServer` in a subprocess
(own interpreter, so the server and the load generator do not share a
GIL) once per wire plane — ``legacy`` (the per-object codec path) and
``columnar`` (the zero-copy window decoder + single-pass response
framer) — with the same engine, batch target, and prefilled keyspace.
Each is driven by the pipelined closed-loop generator from
:mod:`repro.loadgen`.

Before measuring, a **hard byte-identity check** replays the same
deterministic query tape against both servers one datagram at a time and
asserts the concatenated response byte streams are equal — the columnar
plane must be indistinguishable on the wire.

Writes ``BENCH_wire.json`` with the QPS of both planes and the speedup
(the PR-4 acceptance bar: >= 1.5x at batch 4096).

Standalone (not a pytest benchmark): run as

    PYTHONPATH=src python benchmarks/bench_wire_end_to_end.py \
        [--batch-size 4096] [--duration 4] [--workers 2] [--depth 4] \
        [--out BENCH_wire.json]
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import time

from repro.loadgen import (
    WorkloadShape,
    build_tape,
    count_responses,
    prefill,
    run_closed_loop,
)
from repro.server import MAX_DATAGRAM

HOST = "127.0.0.1"


def free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
        probe.bind((HOST, 0))
        return probe.getsockname()[1]


def start_server(wire: str, port: int, batch_size: int, coalesce_us: float):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", HOST, "--port", str(port),
            "--engine", "vector",
            "--wire", wire,
            "--batch-size", str(batch_size),
            "--coalesce-us", str(coalesce_us),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_ready(address, timeout_s: float = 10.0) -> None:
    from repro.client import DidoClient, TimeoutError_

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with DidoClient(address, timeout_s=0.5) as client:
                client.set(b"__ready__", b"1")
                return
        except (TimeoutError_, OSError):
            continue
    raise RuntimeError(f"server at {address} never became ready")


def response_stream(address, tape) -> bytes:
    """Replay the tape one datagram at a time; return the response bytes.

    One datagram in flight keeps every batch aligned with one request
    datagram, so the concatenated response stream is deterministic and
    independent of datagram chunk boundaries.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.settimeout(5.0)
    stream = bytearray()
    try:
        for payload, expected in zip(tape.payloads, tape.counts):
            sock.sendto(payload, address)
            got = 0
            while got < expected:
                data = sock.recv(MAX_DATAGRAM)
                stream.extend(data)
                got += count_responses(data)
    finally:
        sock.close()
    return bytes(stream)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--coalesce-us", type=float, default=2000.0)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--depth", type=int, default=16)
    parser.add_argument(
        "--max-payload",
        type=int,
        default=8192,
        help="request datagram size cap (client batching granularity); "
        "~8 KiB keeps the server saturated with a few hundred queries "
        "per datagram",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=0.5,
        help="closed-loop window timeout; a lost UDP datagram costs at "
        "most this much worker time",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3,
        help="closed-loop runs per plane; the best is recorded (loopback "
        "UDP runs are noisy — losses stall whole windows)",
    )
    parser.add_argument("--num-keys", type=int, default=2048)
    parser.add_argument("--key-size", type=int, default=16)
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--get-ratio", type=float, default=0.95)
    parser.add_argument("--queries", type=int, default=65536, help="tape length")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default="BENCH_wire.json")
    args = parser.parse_args(argv)

    shape = WorkloadShape(
        num_keys=args.num_keys,
        key_size=args.key_size,
        value_size=args.value_size,
        get_ratio=args.get_ratio,
        seed=args.seed,
    )
    tape = build_tape(shape, args.queries, max_payload=args.max_payload)
    # A short deterministic tape for the byte-identity replay (kept small:
    # it runs one datagram at a time).
    identity_tape = build_tape(
        WorkloadShape(
            num_keys=args.num_keys,
            key_size=args.key_size,
            value_size=args.value_size,
            get_ratio=args.get_ratio,
            seed=args.seed + 1,
        ),
        min(args.queries, 8192),
        max_payload=args.max_payload,
    )

    reports: dict[str, dict] = {}
    streams: dict[str, bytes] = {}
    for wire in ("legacy", "columnar"):
        port = free_port()
        proc = start_server(wire, port, args.batch_size, args.coalesce_us)
        address = (HOST, port)
        try:
            wait_ready(address)
            prefill(address, shape)
            streams[wire] = response_stream(address, identity_tape)
            best = None
            for trial in range(args.trials):
                report = run_closed_loop(
                    address,
                    tape,
                    workers=args.workers,
                    depth=args.depth,
                    duration_s=args.duration,
                    timeout_s=args.timeout,
                )
                print(f"{wire:9s} trial {trial + 1}/{args.trials} {report}", flush=True)
                if best is None or report.qps > best.qps:
                    best = report
            reports[wire] = best.to_dict()
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    if streams["legacy"] != streams["columnar"]:
        raise AssertionError(
            "columnar wire plane is not byte-identical to the legacy codec "
            f"({len(streams['legacy'])} vs {len(streams['columnar'])} bytes)"
        )
    print(
        f"byte-identity: OK ({len(streams['legacy']):,} response bytes, "
        f"{identity_tape.total_queries:,} queries)"
    )

    speedup = (
        reports["columnar"]["qps"] / reports["legacy"]["qps"]
        if reports["legacy"]["qps"]
        else 0.0
    )
    payload = {
        "batch_size": args.batch_size,
        "coalesce_us": args.coalesce_us,
        "workers": args.workers,
        "depth": args.depth,
        "max_payload": args.max_payload,
        "trials": args.trials,
        "workload": {
            "num_keys": args.num_keys,
            "key_size": args.key_size,
            "value_size": args.value_size,
            "get_ratio": args.get_ratio,
        },
        "legacy": reports["legacy"],
        "columnar": reports["columnar"],
        "speedup": round(speedup, 3),
        "byte_identical": True,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} (columnar {speedup:.2f}x legacy)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
