"""Figure 14: dynamic pipeline partitioning.

Paper claims: for the (read-intensive) workloads where DIDO chooses a
different partitioning than Mega-KV's, repartitioning alone yields large
gains (paper: 69 % average over nine workloads), because the GPU absorbs
KC/RD once Insert/Delete stop wasting its time.
"""

from common import emit, run_once

from repro.analysis.experiments import fig14_dynamic_pipeline
from repro.analysis.reporting import Table


def test_fig14_dynamic_pipeline(benchmark, harness):
    rows = run_once(benchmark, lambda: fig14_dynamic_pipeline(harness))

    table = Table(
        "Figure 14 — dynamic pipeline partitioning (vs fixed partitioning)",
        ["workload", "fixed_MOPS", "dynamic_MOPS", "speedup", "chosen_pipeline"],
    )
    for r in rows:
        table.add(r.workload, r.baseline_mops, r.technique_mops, r.speedup, r.detail)
    emit(table)

    # DIDO repartitions for a substantial set of workloads (paper: 9).
    assert len(rows) >= 6
    speedups = [r.speedup for r in rows]
    # Repartitioning pays on average (paper: +69 %).
    assert sum(speedups) / len(speedups) > 1.25
    # Read-intensive workloads dominate the repartitioned set.
    read_intensive = [r for r in rows if "-G95-" in r.workload or "-G100-" in r.workload]
    assert len(read_intensive) >= len(rows) * 0.6
    # The biggest wins are large.
    assert max(speedups) > 1.6
