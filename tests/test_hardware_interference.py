"""Unit tests for the CPU/GPU interference model (mu)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.interference import InterferenceModel, measure_interference
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV, ProcessorKind


@pytest.fixture
def model():
    return InterferenceModel(APU_A10_7850K)


class TestMu:
    def test_no_other_traffic_no_slowdown(self, model):
        assert model.mu(ProcessorKind.CPU, 1e8, 0.0) == pytest.approx(1.0)
        assert model.mu(ProcessorKind.GPU, 0.0, 1e8) == pytest.approx(1.0)

    def test_mu_at_least_one(self, model):
        for cpu_rate in (0.0, 1e7, 1e8):
            for gpu_rate in (0.0, 1e7, 1e8):
                assert model.mu(ProcessorKind.CPU, cpu_rate, gpu_rate) >= 1.0
                assert model.mu(ProcessorKind.GPU, cpu_rate, gpu_rate) >= 1.0

    def test_gpu_hurts_cpu_more_than_vice_versa(self, model):
        """Paper (citing Kayiran et al.): GPUs impact CPUs more."""
        rate = 2e8
        mu_cpu = model.mu(ProcessorKind.CPU, rate, rate)
        mu_gpu = model.mu(ProcessorKind.GPU, rate, rate)
        assert mu_cpu > mu_gpu

    def test_monotone_in_other_traffic(self, model):
        rates = (1e7, 5e7, 2e8, 5e8)
        mus = [model.mu(ProcessorKind.CPU, 1e8, g) for g in rates]
        assert mus == sorted(mus)

    def test_pressure_gates_effect(self, model):
        """Tiny combined traffic causes almost no slowdown."""
        assert model.mu(ProcessorKind.CPU, 1e4, 1e4) < 1.01

    def test_discrete_platform_negligible(self):
        model = InterferenceModel(DISCRETE_MEGAKV)
        assert model.mu(ProcessorKind.CPU, 5e8, 5e8) < 1.06

    def test_negative_rate_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.mu(ProcessorKind.CPU, -1.0, 0.0)


class TestMicrobenchmark:
    def test_grid_size(self):
        samples = measure_interference(APU_A10_7850K, rates=(0.0, 1e8))
        assert len(samples) == 4

    def test_samples_match_model(self):
        model = InterferenceModel(APU_A10_7850K)
        for s in measure_interference(APU_A10_7850K):
            assert s.mu_cpu == pytest.approx(
                model.mu(ProcessorKind.CPU, s.cpu_accesses, s.gpu_accesses)
            )
            assert s.mu_gpu == pytest.approx(
                model.mu(ProcessorKind.GPU, s.cpu_accesses, s.gpu_accesses)
            )

    def test_zero_zero_is_neutral(self):
        samples = measure_interference(APU_A10_7850K, rates=(0.0,))
        assert samples[0].mu_cpu == 1.0
        assert samples[0].mu_gpu == 1.0
