"""Unit tests for the simulated network substrate (frames + NIC)."""

import pytest

from repro.errors import ConfigurationError
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_queries,
    decode_responses,
)
from repro.net.nic import SimulatedNIC
from repro.net.packets import (
    ETHERNET_MTU,
    FRAME_HEADER_BYTES,
    Frame,
    frames_for_queries,
    frames_for_responses,
)


def gets(n):
    return [Query(QueryType.GET, f"key-{i:05d}".encode()) for i in range(n)]


class TestFramePacking:
    def test_small_batch_one_frame(self):
        frames = frames_for_queries(gets(10))
        assert len(frames) == 1
        assert frames[0].query_count == 10

    def test_packs_to_mtu(self):
        frames = frames_for_queries(gets(500))
        for frame in frames:
            assert len(frame.payload) <= ETHERNET_MTU
        # Maximal batching: every frame except the last is nearly full.
        per_query = gets(1)[0].wire_size
        for frame in frames[:-1]:
            assert len(frame.payload) + per_query > ETHERNET_MTU

    def test_round_trip_through_frames(self):
        queries = gets(300)
        frames = frames_for_queries(queries)
        decoded = []
        for frame in frames:
            decoded.extend(decode_queries(frame.payload))
        assert [q.key for q in decoded] == [q.key for q in queries]

    def test_oversized_query_gets_dedicated_frame(self):
        """A jumbo value rides alone in one IP-fragmented datagram."""
        small = Query(QueryType.GET, b"key-a")
        jumbo = Query(QueryType.SET, b"k", b"x" * 8000)
        frames = frames_for_queries([small, jumbo, small])
        assert len(frames) == 3
        assert frames[1].query_count == 1
        assert len(frames[1].payload) > ETHERNET_MTU
        decoded = []
        for frame in frames:
            decoded.extend(decode_queries(frame.payload))
        assert [q.key for q in decoded] == [b"key-a", b"k", b"key-a"]

    def test_wire_bytes_include_headers(self):
        frame = frames_for_queries(gets(1))[0]
        assert frame.wire_bytes == FRAME_HEADER_BYTES + len(frame.payload)

    def test_empty_batch_no_frames(self):
        assert frames_for_queries([]) == []

    def test_response_packing_round_trip(self):
        responses = [Response(ResponseStatus.OK, b"v" * 50) for _ in range(100)]
        frames = frames_for_responses(responses)
        assert len(frames) > 1
        decoded = []
        for frame in frames:
            decoded.extend(decode_responses(frame.payload))
        assert len(decoded) == 100


class TestNIC:
    def test_deliver_receive(self):
        nic = SimulatedNIC()
        frames = frames_for_queries(gets(50))
        assert nic.deliver(frames) == len(frames)
        assert nic.rx_pending == len(frames)
        out = nic.receive()
        assert len(out) == len(frames)
        assert nic.rx_pending == 0

    def test_receive_bounded(self):
        nic = SimulatedNIC()
        nic.deliver(frames_for_queries(gets(500)))
        got = nic.receive(max_frames=2)
        assert len(got) == 2

    def test_ring_overflow_drops(self):
        nic = SimulatedNIC(ring_size=3)
        frames = [Frame(b"x" * 100) for _ in range(10)]
        accepted = nic.deliver(frames)
        assert accepted == 3
        assert nic.stats.rx_dropped == 7

    def test_tx_accounting(self):
        nic = SimulatedNIC()
        frames = frames_for_responses([Response(ResponseStatus.OK, b"v")] * 10)
        nic.send(frames)
        assert nic.stats.tx_frames == len(frames)
        assert nic.drain_tx() == frames
        assert nic.drain_tx() == []

    def test_wire_time(self):
        nic = SimulatedNIC(line_rate_gbps=10.0)
        # 10 Gb/s = 1.25 bytes/ns -> 1250 bytes take 1000 ns.
        assert nic.wire_time_ns(1250) == pytest.approx(1000.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SimulatedNIC(line_rate_gbps=0)
        with pytest.raises(ConfigurationError):
            SimulatedNIC(ring_size=0)
