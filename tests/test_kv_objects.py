"""Unit tests for key-value objects, signatures, and the FNV hash."""


from repro.kv.objects import KVObject, fnv1a64, key_signature


class TestFnv1a64:
    def test_deterministic(self):
        assert fnv1a64(b"hello") == fnv1a64(b"hello")

    def test_differs_on_input(self):
        assert fnv1a64(b"hello") != fnv1a64(b"hellp")

    def test_seed_changes_output(self):
        assert fnv1a64(b"key", seed=1) != fnv1a64(b"key", seed=2)

    def test_empty_input(self):
        # FNV of empty data is the (seed-mixed) offset basis, not an error.
        assert fnv1a64(b"") != 0

    def test_64_bit_range(self):
        for data in (b"", b"a", b"x" * 1000):
            assert 0 <= fnv1a64(data) < 2**64

    def test_avalanche_on_multibyte_input(self):
        # A one-bit change early in a multi-byte key diffuses broadly.
        a = fnv1a64(b"\x00" + b"pad" * 4)
        b = fnv1a64(b"\x01" + b"pad" * 4)
        assert bin(a ^ b).count("1") > 16


class TestKeySignature:
    def test_32_bit_range(self):
        assert 0 <= key_signature(b"some-key") < 2**32

    def test_equal_keys_equal_signatures(self):
        assert key_signature(b"k1") == key_signature(b"k1")

    def test_spread(self):
        sigs = {key_signature(bytes([i, j])) for i in range(16) for j in range(16)}
        assert len(sigs) == 256  # no collisions among 256 tiny keys


class TestKVObject:
    def test_size_bytes(self):
        obj = KVObject(b"abcd", b"0123456789")
        assert obj.size_bytes == 14

    def test_signature_computed(self):
        obj = KVObject(b"abcd", b"v")
        assert obj.signature == key_signature(b"abcd")

    def test_record_access_new_epoch_resets(self):
        obj = KVObject(b"k", b"v")
        assert obj.record_access(epoch=1) == 1
        assert obj.record_access(epoch=1) == 2
        assert obj.record_access(epoch=2) == 1  # new sampling window

    def test_record_access_tracks_epoch(self):
        obj = KVObject(b"k", b"v")
        obj.record_access(epoch=7)
        assert obj.sample_epoch == 7

    def test_initial_state(self):
        obj = KVObject(b"k", b"v")
        assert obj.access_count == 0
        assert obj.sample_epoch == -1
