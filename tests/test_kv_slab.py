"""Unit tests for the slab allocator with LRU eviction."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.kv.objects import KVObject
from repro.kv.slab import SlabAllocator


def obj(key: str, size: int = 8) -> KVObject:
    return KVObject(key.encode(), b"v" * size)


class TestConstruction:
    def test_rejects_zero_budget(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(0)

    def test_rejects_bad_growth(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(1 << 20, growth_factor=1.0)

    def test_chunk_size_geometry(self):
        slab = SlabAllocator(1 << 20, growth_factor=2.0, min_chunk=16)
        assert slab.chunk_size_for(10) == 16
        assert slab.chunk_size_for(16) == 16
        assert slab.chunk_size_for(17) == 32
        assert slab.chunk_size_for(100) == 128


class TestAllocateFree:
    def test_allocate_returns_fresh_locations(self):
        slab = SlabAllocator(1 << 20)
        loc1, _ = slab.allocate(obj("a"))
        loc2, _ = slab.allocate(obj("b"))
        assert loc1 != loc2

    def test_get_returns_object(self):
        slab = SlabAllocator(1 << 20)
        o = obj("a")
        loc, _ = slab.allocate(o)
        assert slab.get(loc) is o

    def test_get_unknown_location(self):
        slab = SlabAllocator(1 << 20)
        assert slab.get(12345) is None

    def test_free_removes(self):
        slab = SlabAllocator(1 << 20)
        loc, _ = slab.allocate(obj("a"))
        freed = slab.free(loc)
        assert freed.key == b"a"
        assert loc not in slab
        assert slab.get(loc) is None

    def test_free_unknown_raises(self):
        slab = SlabAllocator(1 << 20)
        with pytest.raises(CapacityError):
            slab.free(999)

    def test_len_tracks_live_objects(self):
        slab = SlabAllocator(1 << 20)
        locs = [slab.allocate(obj(f"k{i}"))[0] for i in range(5)]
        assert len(slab) == 5
        slab.free(locs[0])
        assert len(slab) == 4

    def test_budget_claimed_in_pages(self):
        slab = SlabAllocator(4 * SlabAllocator.PAGE_BYTES)
        slab.allocate(obj("a"))
        assert slab.claimed_bytes == SlabAllocator.PAGE_BYTES


class TestEviction:
    def make_tiny(self) -> SlabAllocator:
        """Budget of exactly one page so the first class can never grow."""
        return SlabAllocator(SlabAllocator.PAGE_BYTES)

    def test_eviction_on_full_class(self):
        slab = self.make_tiny()
        capacity = SlabAllocator.PAGE_BYTES // slab.chunk_size_for(obj('key-000000').size_bytes)
        evicted = []
        for i in range(capacity + 10):
            _, ev = slab.allocate(obj(f"key-{i:06d}"))
            if ev is not None:
                evicted.append(ev)
        assert len(evicted) == 10
        assert slab.stats.evictions == 10

    def test_eviction_is_lru_order(self):
        slab = self.make_tiny()
        capacity = SlabAllocator.PAGE_BYTES // slab.chunk_size_for(obj('key-000000').size_bytes)
        locs = {}
        for i in range(capacity):
            locs[i], _ = slab.allocate(obj(f"key-{i:06d}"))
        # Touch object 0 so object 1 becomes the LRU victim.
        slab.get(locs[0])
        _, evicted = slab.allocate(obj("overflow-1"))
        assert evicted is not None
        assert evicted.key == b"key-000001"

    def test_get_without_touch_keeps_lru(self):
        slab = self.make_tiny()
        capacity = SlabAllocator.PAGE_BYTES // slab.chunk_size_for(obj('key-000000').size_bytes)
        locs = {}
        for i in range(capacity):
            locs[i], _ = slab.allocate(obj(f"key-{i:06d}"))
        slab.get(locs[0], touch=False)  # peek, not a use
        _, evicted = slab.allocate(obj("overflow-1"))
        assert evicted.key == b"key-000000"

    def test_eviction_location_reclaimed(self):
        slab = self.make_tiny()
        capacity = SlabAllocator.PAGE_BYTES // slab.chunk_size_for(obj('key-000000').size_bytes)
        first_loc, _ = slab.allocate(obj("key-000000"))
        for i in range(1, capacity + 1):
            slab.allocate(obj(f"key-{i:06d}"))
        assert first_loc not in slab

    def test_oversized_object_without_chunks_raises(self):
        slab = SlabAllocator(SlabAllocator.PAGE_BYTES)
        # Exhaust the budget with small objects first.
        capacity = SlabAllocator.PAGE_BYTES // slab.chunk_size_for(obj('key-000000').size_bytes)
        for i in range(capacity):
            slab.allocate(obj(f"key-{i:06d}"))
        # A huge object's class has zero chunks and cannot grow.
        with pytest.raises(CapacityError):
            slab.allocate(KVObject(b"big", b"x" * 500_000))


class TestClasses:
    def test_distinct_classes_per_size(self):
        slab = SlabAllocator(8 * SlabAllocator.PAGE_BYTES)
        slab.allocate(obj("small", 8))
        slab.allocate(obj("large", 1000))
        assert len(slab.class_sizes()) == 2

    def test_objects_lists_all_live(self):
        slab = SlabAllocator(1 << 22)
        for i in range(7):
            slab.allocate(obj(f"k{i}", size=16 * (i + 1)))
        assert len(slab.objects()) == 7

    def test_eviction_rate_statistic(self):
        slab = SlabAllocator(SlabAllocator.PAGE_BYTES)
        capacity = SlabAllocator.PAGE_BYTES // slab.chunk_size_for(obj('key-000000').size_bytes)
        for i in range(capacity * 2):
            slab.allocate(obj(f"key-{i:06d}"))
        assert 0.0 < slab.stats.eviction_rate < 1.0
