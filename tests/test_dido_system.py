"""Integration tests for the assembled DidoSystem facade."""

import pytest

from repro.core.dido import DidoSystem
from repro.errors import WorkloadError
from repro.kv.protocol import Query, QueryType, ResponseStatus
from repro.net.packets import frames_for_queries
from repro.workloads.ycsb import QueryStream, standard_workload

from conftest import profile_for


@pytest.fixture
def system():
    return DidoSystem(memory_bytes=16 << 20, expected_objects=16384)


class TestFunctionalPath:
    def test_process_round_trip(self, system):
        batch = [
            Query(QueryType.SET, b"hello", b"world"),
            Query(QueryType.GET, b"hello"),
        ]
        result = system.process(batch)
        assert result.responses[0].status is ResponseStatus.STORED
        assert result.responses[1].value == b"world"

    def test_empty_batch_rejected(self, system):
        with pytest.raises(WorkloadError):
            system.process([])

    def test_report_tracks_progress(self, system):
        stream = QueryStream(standard_workload("K16-G95-S"), 500, seed=3)
        for _ in range(3):
            system.process(stream.next_batch(200))
        report = system.report()
        assert report.batches == 3
        assert report.queries == 600
        assert report.replans >= 1
        assert "CPU" in report.current_pipeline
        assert report.estimated_mops > 0

    def test_steady_workload_plans_once(self, system):
        stream = QueryStream(standard_workload("K16-G95-S"), 500, seed=4)
        for _ in range(6):
            system.process(stream.next_batch(400))
        assert system.report().replans <= 2  # first plan + maybe one refinement

    def test_workload_shift_triggers_replan(self, system):
        small = QueryStream(standard_workload("K8-G50-U"), 500, seed=5)
        big = QueryStream(standard_workload("K128-G95-S"), 200, seed=5)
        for _ in range(2):
            system.process(small.next_batch(300))
        before = system.report().replans
        for _ in range(2):
            system.process(big.next_batch(300))
        assert system.report().replans > before

    def test_frames_path(self, system):
        frames = frames_for_queries(
            [Query(QueryType.SET, b"k", b"v"), Query(QueryType.GET, b"k")]
        )
        result = system.process_frames(frames)
        assert result.responses[1].value == b"v"
        assert system.nic.stats.rx_frames == len(frames)
        assert system.nic.stats.tx_frames >= 1

    def test_submit_path(self, system):
        result = system.submit([Query(QueryType.SET, b"a", b"1")])
        assert result.responses[0].status is ResponseStatus.STORED

    def test_results_match_store_semantics(self, system):
        """Whatever pipeline the controller picks, responses agree with a
        plain dict reference model."""
        stream = QueryStream(standard_workload("K16-G50-U"), 300, seed=6)
        reference: dict[bytes, bytes] = {}
        for _ in range(4):
            batch = stream.next_batch(250)
            result = system.process(batch)
            # Batch semantics: every SET in the batch lands before any GET
            # is served, so fold the whole batch into the reference first.
            for query in batch:
                if query.qtype is QueryType.SET:
                    reference[query.key] = query.value
            for query, response in zip(batch, result.responses):
                if query.qtype is QueryType.SET:
                    assert response.status is ResponseStatus.STORED
                elif query.qtype is QueryType.GET:
                    if response.status is ResponseStatus.OK:
                        assert response.value == reference.get(query.key)
                    # NOT_FOUND may legitimately occur (unset or evicted key)


class TestAnalyticalPath:
    def test_measure_steady_state(self, system):
        m = system.measure_steady_state(profile_for("K16-G95-S"))
        assert m.throughput_mops > 0

    def test_plan_for_returns_config(self, system):
        config = system.plan_for(profile_for("K8-G95-U"))
        assert config.gpu_stage is not None

    def test_skew_estimator_feeds_controller(self, system):
        """After processing a skewed stream, the profiler's estimated skew
        is visible in the controller's planned-for profile."""
        stream = QueryStream(standard_workload("K8-G95-S"), 400, seed=7)
        for _ in range(5):
            system.process(stream.next_batch(500))
        # The sampled-frequency estimator observed repeated hot keys.
        assert system.profiler.epoch == 5
