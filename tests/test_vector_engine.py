"""VectorEngine: hash-kernel exactness, mirror consistency, equivalence."""

import random

import numpy as np
import pytest

from repro.engine import (
    BatchPlane,
    ShardedEngine,
    VectorEngine,
    compile_stage_plan,
    resolve_engine,
)
from repro.engine.vector import MAX_VECTOR_KEY_BYTES, fnv_hash_columns
from repro.kv.hashtable import EMPTY, CuckooHashTable
from repro.kv.objects import fnv1a64, key_signature
from repro.kv.protocol import encode_responses
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config

from test_engine import all_canonical_configs, workload_batches


# ------------------------------------------------------------- hash kernel


class TestFnvHashColumns:
    def test_uniform_keys_match_scalar_for_every_seed(self):
        rng = random.Random(3)
        keys = [rng.randbytes(16) for _ in range(200)]
        states = fnv_hash_columns(keys, 4)
        assert states.shape == (4, 200)
        for seed in range(4):
            for i, key in enumerate(keys):
                assert int(states[seed, i]) == fnv1a64(key, seed=seed)

    def test_ragged_keys_match_scalar(self):
        rng = random.Random(5)
        keys = [rng.randbytes(rng.choice([1, 8, 17, 40])) for _ in range(150)]
        states = fnv_hash_columns(keys, 3)
        for seed in range(3):
            for i, key in enumerate(keys):
                assert int(states[seed, i]) == fnv1a64(key, seed=seed)

    def test_oversized_keys_fall_back_to_scalar_hashing(self):
        rng = random.Random(7)
        keys = [
            b"short",
            rng.randbytes(MAX_VECTOR_KEY_BYTES + 1),
            rng.randbytes(4 * MAX_VECTOR_KEY_BYTES),
            b"another-normal-key",
        ]
        states = fnv_hash_columns(keys, 2)
        for seed in range(2):
            for i, key in enumerate(keys):
                assert int(states[seed, i]) == fnv1a64(key, seed=seed)

    def test_empty_key_and_empty_batch(self):
        states = fnv_hash_columns([b"", b"x"], 2)
        assert int(states[0, 0]) == fnv1a64(b"")
        assert int(states[1, 1]) == fnv1a64(b"x", seed=1)
        assert fnv_hash_columns([], 3).shape == (3, 0)

    def test_row_zero_yields_the_index_signature(self):
        keys = [b"alpha", b"beta"]
        states = fnv_hash_columns(keys, 1)
        for i, key in enumerate(keys):
            assert int(states[0, i]) & 0xFFFFFFFF == key_signature(key)


# -------------------------------------------------------- signature mirror


def mirror_search(index: CuckooHashTable, key: bytes) -> list[int]:
    """Search via the NumPy mirror exactly as the vector kernel does."""
    signature = key_signature(key)
    mirror = index.mirror
    for bucket in index.candidate_buckets(key):
        found = [
            int(loc)
            for loc, sig in zip(mirror.locations[bucket], mirror.signatures[bucket])
            if loc != EMPTY and int(sig) == signature
        ]
        if found:
            return found
    return []


def mirror_matches_table(index: CuckooHashTable) -> bool:
    """The NumPy mirror agrees with the authoritative slots everywhere."""
    mirror = index.mirror
    for b, bucket in enumerate(index._buckets):
        for s, slot in enumerate(bucket):
            if slot.location == EMPTY:
                if mirror.locations[b, s] != EMPTY:
                    return False
            else:
                if int(mirror.locations[b, s]) != slot.location:
                    return False
                if int(mirror.signatures[b, s]) != slot.signature:
                    return False
    return True


class TestSignatureMirror:
    def test_ensure_mirror_builds_once(self):
        index = CuckooHashTable(num_buckets=64)
        index.insert(b"pre-existing", 1)
        mirror = index.ensure_mirror()
        assert index.ensure_mirror() is mirror
        assert mirror_matches_table(index)

    def test_mirror_tracks_inserts_and_deletes(self):
        index = CuckooHashTable(num_buckets=64)
        index.ensure_mirror()
        for i in range(100):
            index.insert(f"k{i}".encode(), i)
        for i in range(0, 100, 3):
            index.delete(f"k{i}".encode())
        assert mirror_matches_table(index)

    def test_randomized_insert_delete_fuzz_never_diverges(self):
        """Acceptance criterion: the mirror tracks every mutation path —
        empty-slot inserts, cuckoo kick chains, deletes, re-inserts."""
        rng = random.Random(1234)
        # Small and tight so kick chains (and occasional failed inserts,
        # which drop a displaced victim) actually occur.
        index = CuckooHashTable(num_buckets=64, slots_per_bucket=2)
        index.ensure_mirror()
        live: dict[bytes, int] = {}
        next_loc = 0
        for step in range(3000):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live))
                index.delete(key, live.pop(key))
            else:
                key = f"key-{rng.randrange(200)}".encode()
                if key in live:
                    index.delete(key, live.pop(key))
                try:
                    index.insert(key, next_loc)
                    live[key] = next_loc
                except Exception:
                    # table full: the failed kick chain dropped a victim,
                    # but it must not desynchronise the two views
                    pass
                finally:
                    if step % 50 == 0:
                        assert mirror_matches_table(index)
                next_loc += 1
        assert mirror_matches_table(index)
        assert index.stats.insert_kicks > 0  # the hard paths actually ran
        # The property the vector engine relies on: searching through the
        # mirror returns exactly what the authoritative table returns.
        for i in range(200):
            key = f"key-{i}".encode()
            assert mirror_search(index, key) == index.search(key)[0]


# ------------------------------------------------------------- equivalence


class TestVectorEquivalence:
    def run_all(self, engine, config, batches):
        store = KVStore(memory_bytes=8 << 20, expected_objects=4096)
        pipeline = FunctionalPipeline(store, engine=engine)
        frames = []
        for batch in batches:
            result = pipeline.process_batch(config, batch)
            frames.append(b"".join(f.payload for f in result.frames))
        return frames, store

    @pytest.mark.parametrize("label", ["K16-G50-S", "K16-G95-U"])
    def test_vector_matches_reference_everywhere(self, label):
        batches = workload_batches(label=label)
        for config in all_canonical_configs():
            ref_frames, ref_store = self.run_all("reference", config, batches)
            vec_frames, vec_store = self.run_all("vector", config, batches)
            assert vec_frames == ref_frames, config.label
            assert vec_store.stats == ref_store.stats, config.label
            assert vec_store.index.stats.searches == ref_store.index.stats.searches
            assert (
                vec_store.index.stats.search_bucket_reads
                == ref_store.index.stats.search_bucket_reads
            ), config.label

    def test_response_size_column_matches_wire_sizes(self):
        config = megakv_coupled_config()
        store = KVStore(memory_bytes=8 << 20, expected_objects=4096)
        pipeline = FunctionalPipeline(store, engine="vector")
        for batch in workload_batches(batches=2):
            result = pipeline.process_batch(config, batch)
            assert result.response_sizes is not None
            assert result.response_sizes == [r.wire_size for r in result.responses]

    def test_duplicate_hot_key_batch(self):
        """Batch-local dedup: many SETs + GETs of one key in one batch."""
        from repro.kv.protocol import Query, QueryType

        queries = []
        for i in range(50):
            queries.append(Query(QueryType.SET, b"hot", b"v%d" % i))
            queries.append(Query(QueryType.GET, b"hot"))
        queries.append(Query(QueryType.DELETE, b"hot"))
        queries.append(Query(QueryType.GET, b"hot"))
        config = megakv_coupled_config()
        outs = []
        for engine in ("reference", "vector"):
            store = KVStore(memory_bytes=1 << 20, expected_objects=512)
            pipeline = FunctionalPipeline(store, engine=engine)
            result = pipeline.process_batch(config, list(queries))
            outs.append(encode_responses(result.responses))
        assert outs[0] == outs[1]

    def test_falls_back_without_mirror_support(self):
        """A store whose index has no mirror still runs (serial passes)."""

        class NoMirrorIndex(CuckooHashTable):
            ensure_mirror = property()  # attribute access raises -> hasattr False

        store = KVStore(
            memory_bytes=1 << 20,
            expected_objects=512,
            index=NoMirrorIndex(num_buckets=256),
        )
        pipeline = FunctionalPipeline(store, engine="vector")
        from repro.kv.protocol import Query, QueryType

        result = pipeline.process_batch(
            megakv_coupled_config(),
            [Query(QueryType.SET, b"k", b"v"), Query(QueryType.GET, b"k")],
        )
        assert result.responses[1].value == b"v"
        assert result.response_sizes is None


class TestResolveNewEngines:
    def test_vector_and_sharded_resolve(self):
        assert isinstance(resolve_engine("vector"), VectorEngine)
        assert isinstance(resolve_engine("sharded"), ShardedEngine)


# ---------------------------------------------------------------- plumbing


class TestVectorScratchLifecycle:
    def test_scratch_attached_per_plane(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        engine = VectorEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        from repro.kv.protocol import Query, QueryType

        plane = BatchPlane([Query(QueryType.GET, b"nope")])
        engine.run(store, plan, plane, epoch=0)
        assert plane.scratch is not None
        assert plane.response_sizes == [plane.responses[0].wire_size]

    def test_mirror_survives_numpy_roundtrip_signatures(self):
        """uint32 signatures in the mirror equal the scalar signatures."""
        index = CuckooHashTable(num_buckets=64)
        index.ensure_mirror()
        key = b"roundtrip"
        index.insert(key, 9)
        sig = key_signature(key)
        assert sig in [int(s) for s in np.ravel(index.mirror.signatures)]
