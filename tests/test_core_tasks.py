"""Unit tests for the task taxonomy and the per-task demand model."""

import pytest

from repro.core.tasks import (
    AFFINITY_PAIRS,
    CPU_ONLY_TASKS,
    DEFAULT_CALIBRATION,
    GPU_ELIGIBLE_TASKS,
    TASK_ORDER,
    IndexOp,
    StageContext,
    Task,
    TaskModel,
    contiguous_in_order,
)
from repro.errors import ConfigurationError


class TestTaxonomy:
    def test_eight_tasks_in_order(self):
        assert [t.name for t in TASK_ORDER] == ["RV", "PP", "MM", "IN", "KC", "RD", "WR", "SD"]

    def test_cpu_only_and_gpu_eligible_partition(self):
        assert CPU_ONLY_TASKS | GPU_ELIGIBLE_TASKS == set(Task)
        assert not CPU_ONLY_TASKS & GPU_ELIGIBLE_TASKS

    def test_rv_sd_pinned(self):
        assert Task.RV in CPU_ONLY_TASKS
        assert Task.SD in CPU_ONLY_TASKS

    def test_affinity_pairs_adjacent(self):
        for pred, succ in AFFINITY_PAIRS:
            assert succ.value == pred.value + 1

    def test_ordering_operator(self):
        assert Task.RV < Task.SD
        assert not Task.KC < Task.KC

    def test_contiguous_in_order(self):
        assert contiguous_in_order((Task.IN, Task.KC, Task.RD))
        assert contiguous_in_order((Task.RV,))
        assert not contiguous_in_order((Task.IN, Task.RD))
        assert not contiguous_in_order((Task.KC, Task.IN))
        assert not contiguous_in_order(())


@pytest.fixture
def model():
    return TaskModel()


def ctx(**kwargs):
    return StageContext(cache_line_bytes=64, **kwargs)


def demand_of(model, task, batch=1000, key=16.0, value=64.0, get=0.95, context=None):
    return model.demand(
        task, batch, key_size=key, value_size=value, get_ratio=get,
        context=context or ctx(),
    )


class TestFrameSizing:
    def test_queries_per_frame_small_keys(self, model):
        qpf = model.queries_per_frame(8, 8, get_ratio=1.0)
        assert qpf == pytest.approx(1500 / 15, rel=0.01)

    def test_qpf_shrinks_with_set_ratio(self, model):
        all_gets = model.queries_per_frame(16, 1024, get_ratio=1.0)
        half_sets = model.queries_per_frame(16, 1024, get_ratio=0.5)
        assert half_sets < all_gets

    def test_responses_per_frame(self, model):
        rpf = model.responses_per_frame(1024, get_ratio=1.0)
        assert 1.0 <= rpf < 2.0

    def test_response_bytes(self, model):
        assert model.response_bytes(100, get_ratio=0.5) == pytest.approx(5 + 50)


class TestDemands:
    def test_all_noncore_tasks_have_demands(self, model):
        for task in Task:
            if task is Task.IN:
                continue
            d = demand_of(model, task)
            assert d.count > 0
            assert d.instructions > 0

    def test_in_task_requires_index_demand(self, model):
        with pytest.raises(ConfigurationError):
            demand_of(model, Task.IN)

    def test_mm_counts_sets_only(self, model):
        d = demand_of(model, Task.MM, batch=1000, get=0.95)
        assert d.count == pytest.approx(50)

    def test_kc_counts_gets_only(self, model):
        d = demand_of(model, Task.KC, batch=1000, get=0.95)
        assert d.count == pytest.approx(950)

    def test_rd_affinity_removes_random_access(self, model):
        cold = demand_of(model, Task.RD, context=ctx(with_kc=False))
        warm = demand_of(model, Task.RD, context=ctx(with_kc=True))
        assert cold.pattern.memory_accesses > warm.pattern.memory_accesses
        assert warm.pattern.memory_accesses == 0.0

    def test_rd_buffer_write_when_separated_from_wr(self, model):
        plain = demand_of(model, Task.RD, context=ctx(with_kc=True))
        feeding = demand_of(model, Task.RD, context=ctx(with_kc=True, rd_feeds_buffer=True))
        assert feeding.pattern.cache_accesses > plain.pattern.cache_accesses

    def test_wr_sequential_source_when_rd_elsewhere(self, model):
        with_rd = demand_of(model, Task.WR, context=ctx(with_rd=True))
        without = demand_of(model, Task.WR, context=ctx(with_rd=False))
        # Either way WR performs no random accesses: the separation turned
        # them sequential (Section III-A).
        assert with_rd.pattern.memory_accesses == 0.0
        assert without.pattern.memory_accesses == 0.0

    def test_hot_fraction_reduces_kc_memory(self, model):
        cold = demand_of(model, Task.KC)
        hot = demand_of(model, Task.KC, context=ctx(hot_fraction=0.8))
        assert hot.pattern.memory_accesses == pytest.approx(
            0.2 * cold.pattern.memory_accesses
        )

    def test_kc_reads_header_and_key(self, model):
        small = demand_of(model, Task.KC, key=8.0)
        large = demand_of(model, Task.KC, key=128.0)
        # 128+16 B crosses line boundaries -> extra cache accesses.
        assert large.pattern.cache_accesses > small.pattern.cache_accesses

    def test_rv_amortizes_frame_costs(self, model):
        small_vals = demand_of(model, Task.RV, value=8.0, get=0.5)
        large_vals = demand_of(model, Task.RV, value=1024.0, get=0.5)
        # Fewer queries per frame -> more per-query frame overhead.
        assert large_vals.instructions > small_vals.instructions

    def test_total_memory_accesses(self, model):
        d = demand_of(model, Task.KC, batch=2000, get=0.5)
        assert d.total_memory_accesses == pytest.approx(
            d.count * d.pattern.memory_accesses
        )


class TestIndexDemands:
    def test_search_uses_probe_count(self, model):
        d = model.index_demand(IndexOp.SEARCH, 100, search_buckets=1.7, insert_buckets=2.5)
        assert d.pattern.memory_accesses == pytest.approx(1.7)
        assert not d.atomic

    def test_insert_atomic_with_measured_buckets(self, model):
        d = model.index_demand(IndexOp.INSERT, 100, search_buckets=1.7, insert_buckets=2.5)
        assert d.pattern.memory_accesses == pytest.approx(2.5)
        assert d.atomic

    def test_delete_atomic(self, model):
        d = model.index_demand(IndexOp.DELETE, 100, search_buckets=1.7, insert_buckets=2.5)
        assert d.atomic


class TestCalibrationConstants:
    def test_scaled(self):
        doubled = DEFAULT_CALIBRATION.scaled(2.0)
        assert doubled.search_instr == pytest.approx(2 * DEFAULT_CALIBRATION.search_instr)
        assert doubled.query_header_bytes == DEFAULT_CALIBRATION.query_header_bytes

    def test_with_cpu_overhead(self):
        heavy = DEFAULT_CALIBRATION.with_cpu_overhead(1.5)
        assert heavy.kc_instr_base == pytest.approx(1.5 * DEFAULT_CALIBRATION.kc_instr_base)
        assert heavy.mm_mem_per_set == pytest.approx(1.5 * DEFAULT_CALIBRATION.mm_mem_per_set)
        # GPU-side index op costs are untouched (same kernels).
        assert heavy.search_instr == DEFAULT_CALIBRATION.search_instr

    def test_with_cpu_overhead_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CALIBRATION.with_cpu_overhead(0.0)
