"""End-to-end tests over real localhost UDP sockets."""

import pytest

from repro.client import DidoClient, TimeoutError_
from repro.core.dido import DidoSystem
from repro.errors import ConfigurationError
from repro.kv.protocol import Query, QueryType, ResponseStatus
from repro.server import DidoUDPServer, _chunk_responses
from repro.kv.protocol import Response


@pytest.fixture
def server():
    system = DidoSystem(memory_bytes=16 << 20, expected_objects=8192)
    srv = DidoUDPServer(("127.0.0.1", 0), system=system, batch_window_s=0.001)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    with DidoClient(server.address, timeout_s=5.0) as c:
        yield c


class TestRoundTrips:
    def test_set_get_delete(self, client):
        assert client.set(b"greeting", b"hello")
        assert client.get(b"greeting") == b"hello"
        assert client.delete(b"greeting")
        assert client.get(b"greeting") is None

    def test_get_missing(self, client):
        assert client.get(b"never-set") is None

    def test_delete_missing(self, client):
        assert not client.delete(b"never-set")

    def test_overwrite(self, client):
        client.set(b"k", b"v1")
        client.set(b"k", b"v2")
        assert client.get(b"k") == b"v2"

    def test_binary_values(self, client):
        value = bytes(range(256)) * 4
        client.set(b"bin", value)
        assert client.get(b"bin") == value

    def test_batch_order_preserved(self, client):
        sets = [Query(QueryType.SET, f"k{i}".encode(), f"v{i}".encode()) for i in range(50)]
        responses = client.execute(sets)
        assert all(r.status is ResponseStatus.STORED for r in responses)
        gets = [Query(QueryType.GET, f"k{i}".encode()) for i in range(50)]
        values = [r.value for r in client.execute(gets)]
        assert values == [f"v{i}".encode() for i in range(50)]

    def test_mget(self, client):
        client.set(b"a", b"1")
        client.set(b"b", b"2")
        out = client.mget([b"a", b"missing", b"b"])
        assert out == {b"a": b"1", b"b": b"2"}

    def test_large_batch_multiple_datagrams_back(self, client):
        value = b"x" * 900
        sets = [Query(QueryType.SET, f"big{i}".encode(), value) for i in range(100)]
        client.execute(sets)
        gets = [Query(QueryType.GET, f"big{i}".encode()) for i in range(100)]
        responses = client.execute(gets)
        assert len(responses) == 100
        assert all(r.value == value for r in responses)

    def test_server_stats_progress(self, server, client):
        client.set(b"k", b"v")
        assert server.stats.datagrams_in >= 1
        assert server.stats.queries >= 1
        assert server.stats.batches >= 1

    def test_adaptive_pipeline_behind_server(self, server, client):
        """The server-side system really plans pipelines."""
        for i in range(300):
            client.set(f"warm{i}".encode(), b"v" * 32)
        report = server.system.report()
        assert report.replans >= 1
        assert "CPU" in report.current_pipeline


class TestServerLifecycle:
    def test_double_start_rejected(self, server):
        with pytest.raises(ConfigurationError):
            server.start()

    def test_stop_idempotent(self):
        srv = DidoUDPServer(("127.0.0.1", 0))
        srv.start()
        srv.stop()
        srv.stop()

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            DidoUDPServer(("127.0.0.1", 0), batch_window_s=-1.0)

    def test_malformed_datagram_counted_not_fatal(self, server, client):
        import socket as socketlib

        s = socketlib.socket(socketlib.AF_INET, socketlib.SOCK_DGRAM)
        s.sendto(b"\xff\xff\xff", server.address)
        s.close()
        # The server keeps working afterwards.
        assert client.set(b"still-alive", b"yes")
        assert server.stats.protocol_errors >= 1


class TestClientValidation:
    def test_timeout_positive(self):
        with pytest.raises(ConfigurationError):
            DidoClient(("127.0.0.1", 1), timeout_s=0)

    def test_timeout_raised_when_no_server(self):
        with DidoClient(("127.0.0.1", 9), timeout_s=0.2) as c:
            with pytest.raises(TimeoutError_):
                c.get(b"k")
        assert c.stats.timeouts == 1

    def test_empty_batch(self, client):
        assert client.execute([]) == []


class TestCoalescing:
    def make_server(self, **kwargs):
        system = DidoSystem(memory_bytes=16 << 20, expected_objects=8192)
        return DidoUDPServer(("127.0.0.1", 0), system=system, **kwargs)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_server(batch_size=0)
        with pytest.raises(ConfigurationError):
            self.make_server(coalesce_us=-1.0)

    def test_coalesce_us_overrides_window(self):
        srv = self.make_server(batch_window_s=5.0, coalesce_us=1500.0)
        try:
            assert srv._batch_window_s == pytest.approx(0.0015)
        finally:
            srv.stop()

    def test_cut_batch_splits_at_target_and_carries_over(self):
        srv = self.make_server(batch_size=5)
        try:
            peer_a, peer_b = ("127.0.0.1", 1111), ("127.0.0.1", 2222)
            pending = [
                ([Query(QueryType.GET, b"k%d" % i) for i in range(4)], peer_a),
                ([Query(QueryType.GET, b"m%d" % i) for i in range(4)], peer_b),
            ]
            batch = srv._cut_batch(pending)
            taken = [(len(queries), peer) for queries, peer in batch]
            assert taken == [(4, peer_a), (1, peer_b)]
            # The straddling datagram's tail kept its peer and leads the backlog.
            assert [(len(q), p) for q, p in srv._backlog] == [(3, peer_b)]
            assert srv._backlog[0][0][0].key == b"m1"
        finally:
            srv.stop()

    def test_cut_batch_under_target_leaves_no_backlog(self):
        srv = self.make_server(batch_size=100)
        try:
            pending = [([Query(QueryType.GET, b"k")], ("127.0.0.1", 1))]
            assert srv._cut_batch(pending) == pending
            assert srv._backlog == []
        finally:
            srv.stop()

    def test_backlog_is_served_first_next_window(self):
        """A client batch larger than batch_size still gets every response
        back in order — the overflow rides the next coalescing round."""
        from repro.client import DidoClient

        srv = self.make_server(batch_size=8)
        srv.start()
        try:
            with DidoClient(srv.address, timeout_s=5.0) as client:
                sets = [
                    Query(QueryType.SET, b"c%d" % i, b"v%d" % i) for i in range(30)
                ]
                assert all(
                    r.status is ResponseStatus.STORED for r in client.execute(sets)
                )
                gets = [Query(QueryType.GET, b"c%d" % i) for i in range(30)]
                values = [r.value for r in client.execute(gets)]
                assert values == [b"v%d" % i for i in range(30)]
            assert srv.stats.batches >= 4  # 30 queries at target 8
        finally:
            srv.stop()

    def test_coalescing_gauges_exported(self):
        from repro.telemetry import configure, get_telemetry

        configure(enabled=True)
        try:
            srv = self.make_server(batch_size=3)
            try:
                pending = [
                    ([Query(QueryType.GET, b"k%d" % i) for i in range(7)],
                     ("127.0.0.1", 1)),
                ]
                srv._cut_batch(pending)
                registry = get_telemetry().registry
                depth = dict(registry.gauge("repro_server_queue_depth").samples())
                fill = dict(registry.gauge("repro_batch_fill_ratio").samples())
                assert list(depth.values()) == [4.0]
                assert list(fill.values()) == [1.0]
            finally:
                srv.stop()
        finally:
            configure(enabled=False)


class TestWirePlanes:
    def make_server(self, **kwargs):
        system = DidoSystem(memory_bytes=16 << 20, expected_objects=8192, engine="vector")
        return DidoUDPServer(("127.0.0.1", 0), system=system, **kwargs)

    def test_invalid_wire_and_drain_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_server(wire="simd")
        with pytest.raises(ConfigurationError):
            self.make_server(drain_limit=0)

    @pytest.mark.parametrize("wire", ["columnar", "legacy"])
    def test_round_trip_identical_across_planes(self, wire):
        srv = self.make_server(wire=wire, batch_window_s=0.001)
        srv.start()
        try:
            with DidoClient(srv.address, timeout_s=5.0) as client:
                sets = [
                    Query(QueryType.SET, b"w%d" % i, b"val%d" % i) for i in range(40)
                ]
                assert all(
                    r.status is ResponseStatus.STORED for r in client.execute(sets)
                )
                gets = [Query(QueryType.GET, b"w%d" % i) for i in range(40)]
                assert [r.value for r in client.execute(gets)] == [
                    b"val%d" % i for i in range(40)
                ]
                assert client.get(b"nope") is None
                assert client.delete(b"w0")
        finally:
            srv.stop()

    @pytest.mark.parametrize("wire", ["columnar", "legacy"])
    def test_parse_errors_counted_per_plane(self, wire):
        from repro.telemetry import configure, get_telemetry

        configure(enabled=True)
        srv = self.make_server(wire=wire, batch_window_s=0.001)
        srv.start()
        try:
            with DidoClient(srv.address, timeout_s=5.0) as client:
                client._socket.sendto(b"\xff\xff\xff", srv.address)
                # The serve loop survives and keeps answering.
                assert client.set(b"alive", b"yes")
            assert srv.stats.protocol_errors >= 1
            counter = get_telemetry().registry.counter("repro_wire_parse_errors_total")
            assert counter.value(wire=wire) >= 1
        finally:
            srv.stop()
            configure(enabled=False)

    def test_wire_timers_and_drain_gauge_exported(self):
        from repro.telemetry import configure, get_telemetry

        configure(enabled=True)
        srv = self.make_server(wire="columnar", batch_window_s=0.001)
        srv.start()
        try:
            with DidoClient(srv.address, timeout_s=5.0) as client:
                client.set(b"k", b"v")
                assert client.get(b"k") == b"v"
            registry = get_telemetry().registry
            snapshot = registry.snapshot()
            assert "repro_wire_parse_ns" in snapshot
            assert "repro_wire_frame_ns" in snapshot
            gauge = dict(registry.gauge("repro_datagrams_per_poll").samples())
            assert all(v >= 1.0 for v in gauge.values())
        finally:
            srv.stop()
            configure(enabled=False)

    def test_cut_batch_splits_columnar_segments(self):
        from repro.net.wire import QueryColumns

        srv = self.make_server(batch_size=3)
        try:
            peer = ("127.0.0.1", 4242)
            segment = QueryColumns.from_queries(
                [Query(QueryType.GET, b"k%d" % i) for i in range(5)]
            )
            batch = srv._cut_batch([(segment, peer)])
            assert [(len(s), p) for s, p in batch] == [(3, peer)]
            assert [(len(s), p) for s, p in srv._backlog] == [(2, peer)]
            assert srv._backlog[0][0].keys == [b"k3", b"k4"]
        finally:
            srv.stop()


class TestChunking:
    def test_chunk_responses_respects_bound(self):
        responses = [Response(ResponseStatus.OK, b"v" * 5000) for _ in range(20)]
        chunks = _chunk_responses(responses)
        assert sum(len(c) for c in chunks) == 20
        from repro.server import MAX_RESPONSE_PAYLOAD

        for chunk in chunks:
            if len(chunk) > 1:
                assert sum(r.wire_size for r in chunk) <= MAX_RESPONSE_PAYLOAD

    def test_chunk_preserves_order(self):
        responses = [Response(ResponseStatus.OK, str(i).encode()) for i in range(100)]
        chunks = _chunk_responses(responses)
        flat = [r for c in chunks for r in c]
        assert [r.value for r in flat] == [str(i).encode() for i in range(100)]

    def test_precomputed_size_column_chunks_identically(self):
        responses = [
            Response(ResponseStatus.OK, b"v" * (i * 37 % 5000)) for i in range(50)
        ]
        sizes = [r.wire_size for r in responses]
        assert _chunk_responses(responses, sizes) == _chunk_responses(responses)
