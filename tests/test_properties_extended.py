"""Additional property-based tests: trace codec, cross-backend store
equivalence, analyzer monotonicity, frame packing."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostModel
from repro.core.profiler import WorkloadProfile
from repro.hardware.specs import APU_A10_7850K
from repro.kv.chaining import ChainedHashTable
from repro.kv.hashtable import CuckooHashTable
from repro.kv.protocol import Query, QueryType
from repro.kv.store import KVStore
from repro.net.packets import ETHERNET_MTU, frames_for_queries
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.trace import read_trace, summarize_trace, write_trace

keys = st.binary(min_size=1, max_size=48)
values = st.binary(min_size=0, max_size=200)

query_strategy = st.builds(
    lambda qtype, key, value: Query(
        qtype, key, value if qtype is QueryType.SET else b""
    ),
    st.sampled_from(list(QueryType)),
    keys,
    values,
)


@settings(max_examples=25, deadline=None)
@given(st.lists(query_strategy, max_size=80))
def test_trace_file_round_trip(tmp_path_factory, queries):
    path = tmp_path_factory.mktemp("traces") / "t.bin"
    write_trace(path, queries)
    loaded = read_trace(path)
    assert [(q.qtype, q.key, q.value) for q in loaded] == [
        (q.qtype, q.key, q.value) for q in queries
    ]


@settings(max_examples=20, deadline=None)
@given(st.lists(query_strategy, min_size=1, max_size=80))
def test_trace_summary_invariants(queries):
    summary = summarize_trace(queries)
    assert 0.0 <= summary.get_ratio <= 1.0
    assert summary.queries == len(queries)
    assert 0 < summary.distinct_keys <= len(queries)
    assert summary.avg_key_size > 0


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["set", "get", "delete"]), st.integers(0, 30), values),
        min_size=1,
        max_size=120,
    )
)
def test_store_backends_agree(ops):
    """Cuckoo-indexed and chain-indexed stores observe identical semantics
    under any operation sequence."""
    stores = [
        KVStore(8 << 20, 1024, index=CuckooHashTable(num_buckets=512)),
        KVStore(8 << 20, 1024, index=ChainedHashTable(num_buckets=512)),
    ]
    for op, key_id, value in ops:
        key = f"key-{key_id}".encode()
        results = []
        for store in stores:
            if op == "set":
                store.set(key, value)
                results.append(("set", True))
            elif op == "get":
                results.append(("get", store.get(key)))
            else:
                results.append(("del", store.delete(key)))
        assert results[0] == results[1], f"backends diverged on {op} {key!r}"


@settings(max_examples=20, deadline=None)
@given(st.lists(query_strategy, max_size=200))
def test_frame_packing_never_splits_and_never_wastes(queries):
    frames = frames_for_queries(queries)
    # Every query appears exactly once across frames.
    total = sum(f.query_count for f in frames)
    assert total == len(queries)
    # No frame exceeds the MTU unless it carries a single jumbo message.
    for frame in frames:
        if len(frame.payload) > ETHERNET_MTU:
            assert frame.query_count == 1


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.floats(min_value=0.3, max_value=1.0),
    st.sampled_from([(8, 8), (16, 64), (32, 256), (128, 1024)]),
    st.sampled_from([0.0, 0.99]),
)
def test_estimate_invariants_over_profiles(get_ratio, sizes, skew):
    """The analyzer produces physically sensible outputs for any workload
    in the paper's parameter ranges."""
    key_size, value_size = sizes
    profile = WorkloadProfile(get_ratio, key_size, value_size, skew)
    cm = CostModel(APU_A10_7850K)
    est = cm.estimate(megakv_coupled_config(), profile)
    assert est.batch_size >= 64
    assert est.tmax_ns > 0
    assert est.throughput_mops == pytest.approx(est.batch_size / est.tmax_ns * 1000.0)
    assert 0.0 < est.cpu_utilization <= 1.0
    assert 0.0 <= est.gpu_utilization <= 1.0
    assert est.mu_cpu >= 1.0 and est.mu_gpu >= 1.0
    assert est.latency_ns <= 1_010_000.0


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([300_000.0, 600_000.0, 1_000_000.0, 2_000_000.0]))
def test_throughput_monotone_in_latency_budget(budget):
    """A larger latency budget can only help (bigger batches allowed)."""
    cm = CostModel(APU_A10_7850K)
    profile = WorkloadProfile(0.95, 16, 64, 0.99)
    smaller = cm.estimate(megakv_coupled_config(), profile, budget)
    larger = cm.estimate(megakv_coupled_config(), profile, budget * 1.5)
    assert larger.throughput_mops >= smaller.throughput_mops * 0.98
