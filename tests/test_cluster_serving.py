"""In-process cluster serving tests: ownership redirects, the control
plane's epoch discipline, and the live migration state machine.

Every test runs real loopback sockets — UDP data plane, TCP control
plane — but keeps the fleet in-process (one ``DidoUDPServer`` thread per
node) so failures are debuggable and fast.  The full multi-*process*
path is covered by ``tests/test_cluster_coordinator.py`` and
``benchmarks/bench_cluster.py``.
"""

import socket
import time

import pytest

from repro.client import ClusterClient
from repro.cluster.manifest import ClusterManifest, ManifestRouter
from repro.cluster.ring import HashRing
from repro.cluster.serving import (
    ClusterError,
    ClusterNode,
    NodeOwnership,
    control_request,
    fetch_manifest,
    free_port,
    free_tcp_port,
)
from repro.core.dido import DidoSystem
from repro.kv.protocol import (
    Query,
    QueryType,
    ResponseStatus,
    decode_responses,
    encode_queries,
)

VNODES = 16


def build_manifest(names, epoch, addresses):
    ring = HashRing(VNODES)
    for name in names:
        ring.add_node(name)
    return ClusterManifest.from_ring(epoch, ring, addresses)


def spawn_node(name, manifest, *, gated=False):
    from repro.server import DidoUDPServer

    system = DidoSystem(memory_bytes=8 << 20, expected_objects=4096)
    info = manifest.nodes[name]
    server = DidoUDPServer(info.address, system=system, batch_window_s=0.001)
    node = ClusterNode(
        name, server, manifest, ("127.0.0.1", info.control_port), gated=gated
    )
    node.start()
    return node


@pytest.fixture
def fleet():
    """Two live nodes (``a``, ``b``) plus the manifest they share."""
    names = ["a", "b"]
    addresses = {n: ("127.0.0.1", free_port(), free_tcp_port()) for n in names}
    manifest = build_manifest(names, 1, addresses)
    nodes = {name: spawn_node(name, manifest) for name in names}
    yield nodes, manifest, addresses
    for node in nodes.values():
        node.stop()


def udp_exchange(sock, address, queries):
    sock.sendto(encode_queries(queries), tuple(address))
    responses = []
    while len(responses) < len(queries):
        responses.extend(decode_responses(sock.recvfrom(65535)[0]))
    return responses


@pytest.fixture
def udp():
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.settimeout(5.0)
    yield sock
    sock.close()


def split_keys(manifest, count=120):
    router = ManifestRouter(manifest)
    by_owner = {}
    for i in range(count):
        key = f"key-{i:04d}".encode()
        by_owner.setdefault(router.owner_for(key), []).append(key)
    return by_owner


# ---------------------------------------------------------------- ownership


class TestOwnership:
    def test_single_node_never_redirects(self):
        addresses = {"solo": ("127.0.0.1", 1, 2)}
        manifest = build_manifest(["solo"], 1, addresses)
        ownership = NodeOwnership(manifest, "solo")
        assert ownership.misrouted_rows([b"k1", b"k2", b"k3"]) == []

    def test_misrouted_rows_match_router(self):
        addresses = {n: ("127.0.0.1", i, i + 1) for i, n in enumerate(["a", "b"])}
        manifest = build_manifest(["a", "b"], 1, addresses)
        ownership = NodeOwnership(manifest, "a")
        router = ManifestRouter(manifest)
        keys = [f"k{i}".encode() for i in range(200)]
        misrouted = set(ownership.misrouted_rows(keys))
        expected = {i for i, k in enumerate(keys) if router.owner_for(k) != "a"}
        assert misrouted == expected

    def test_absent_node_owns_nothing(self):
        addresses = {"a": ("127.0.0.1", 1, 2)}
        manifest = build_manifest(["a"], 2, addresses)
        ownership = NodeOwnership(manifest, "gone")
        assert ownership.gated
        assert ownership.misrouted_rows([b"x", b"y"]) == [0, 1]

    def test_redirect_value_is_epoch_bytes(self):
        addresses = {"a": ("127.0.0.1", 1, 2)}
        manifest = build_manifest(["a"], 7, addresses)
        ownership = NodeOwnership(manifest, "a")
        assert int.from_bytes(ownership.redirect_value, "little") == 7


# --------------------------------------------------------------- data plane


class TestRedirects:
    def test_misrouted_get_gets_wrong_node_with_epoch(self, fleet, udp):
        nodes, manifest, _ = fleet
        by_owner = split_keys(manifest)
        key = by_owner["a"][0]
        [response] = udp_exchange(
            udp, manifest.nodes["b"].address, [Query(QueryType.GET, key)]
        )
        assert response.status is ResponseStatus.WRONG_NODE
        assert int.from_bytes(response.value, "little") == 1
        assert nodes["b"].server.stats.redirects == 1

    def test_misrouted_set_does_not_touch_store(self, fleet, udp):
        nodes, manifest, _ = fleet
        by_owner = split_keys(manifest)
        key = by_owner["a"][0]
        [response] = udp_exchange(
            udp, manifest.nodes["b"].address, [Query(QueryType.SET, key, b"stray")]
        )
        assert response.status is ResponseStatus.WRONG_NODE
        assert len(nodes["b"].server.system.store) == 0

    def test_mixed_window_serves_owned_rows_and_redirects_the_rest(self, fleet, udp):
        nodes, manifest, _ = fleet
        by_owner = split_keys(manifest)
        owned, foreign = by_owner["a"][0], by_owner["b"][0]
        queries = [
            Query(QueryType.SET, owned, b"mine"),
            Query(QueryType.SET, foreign, b"theirs"),
            Query(QueryType.GET, owned),
        ]
        responses = udp_exchange(udp, manifest.nodes["a"].address, queries)
        assert responses[0].status is ResponseStatus.STORED
        assert responses[1].status is ResponseStatus.WRONG_NODE
        assert responses[2].status is ResponseStatus.OK
        assert responses[2].value == b"mine"

    def test_gated_node_redirects_everything(self):
        addresses = {"g": ("127.0.0.1", free_port(), free_tcp_port())}
        manifest = build_manifest(["g"], 3, addresses)
        node = spawn_node("g", manifest, gated=True)
        try:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.settimeout(5.0)
            [response] = udp_exchange(
                sock, manifest.nodes["g"].address, [Query(QueryType.GET, b"any")]
            )
            sock.close()
            assert response.status is ResponseStatus.WRONG_NODE
            assert int.from_bytes(response.value, "little") == 3
        finally:
            node.stop()


# ------------------------------------------------------------ control plane


class TestControlPlane:
    def test_ping_manifest_stats(self, fleet):
        nodes, manifest, addresses = fleet
        control = ("127.0.0.1", addresses["a"][2])
        reply = control_request(control, {"cmd": "ping"})
        assert reply["name"] == "a" and reply["epoch"] == 1
        assert fetch_manifest(control) == manifest
        stats = control_request(control, {"cmd": "stats"})
        assert stats["owned_arcs"] == VNODES
        assert stats["gated"] is False

    def test_stale_and_equal_epoch_install_rejected(self, fleet):
        nodes, manifest, addresses = fleet
        control = ("127.0.0.1", addresses["a"][2])
        with pytest.raises(ClusterError, match="stale"):
            control_request(
                control, {"cmd": "install", "manifest": manifest.to_dict()}
            )

    def test_newer_epoch_install_accepted_and_monotonic(self, fleet):
        nodes, manifest, addresses = fleet
        control = ("127.0.0.1", addresses["a"][2])
        newer = build_manifest(["a", "b"], 5, addresses)
        reply = control_request(
            control, {"cmd": "install", "manifest": newer.to_dict()}
        )
        assert reply["epoch"] == 5
        assert nodes["a"].manifest.epoch == 5
        # Re-installing the same epoch is stale now: epochs only go up.
        with pytest.raises(ClusterError, match="stale"):
            control_request(
                control, {"cmd": "install", "manifest": newer.to_dict()}
            )

    def test_unknown_command_rejected(self, fleet):
        _, _, addresses = fleet
        with pytest.raises(ClusterError, match="unknown"):
            control_request(("127.0.0.1", addresses["a"][2]), {"cmd": "nope"})

    def test_shutdown_stops_the_node(self):
        addresses = {"s": ("127.0.0.1", free_port(), free_tcp_port())}
        manifest = build_manifest(["s"], 1, addresses)
        node = spawn_node("s", manifest)
        control = ("127.0.0.1", addresses["s"][2])
        assert control_request(control, {"cmd": "shutdown"})["ok"]
        deadline = time.monotonic() + 5.0
        while node.server._running.is_set() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not node.server._running.is_set()


# ----------------------------------------------------------------- migration


class TestMigration:
    def prefill(self, udp, manifest, by_owner):
        for owner, keys in by_owner.items():
            responses = udp_exchange(
                udp,
                manifest.nodes[owner].address,
                [Query(QueryType.SET, k, b"v:" + k) for k in keys],
            )
            assert all(r.status is ResponseStatus.STORED for r in responses)

    def grow(self, addresses):
        """Manifest for epoch 2 with joiner ``c`` added to the ring."""
        addresses = dict(addresses)
        addresses["c"] = ("127.0.0.1", free_port(), free_tcp_port())
        return build_manifest(["a", "b", "c"], 2, addresses), addresses

    def test_add_node_moves_exactly_the_owner_changed_keys(self, fleet, udp):
        nodes, m1, addresses = fleet
        by_owner = split_keys(m1)
        self.prefill(udp, m1, by_owner)
        m2, addresses = self.grow(addresses)
        joiner = spawn_node("c", m2, gated=True)
        try:
            for donor in ("a", "b"):
                reply = control_request(
                    ("127.0.0.1", addresses[donor][2]),
                    {"cmd": "transfer", "manifest": m2.to_dict()},
                    timeout_s=60.0,
                )
                assert reply["ok"]
            for donor in ("a", "b"):
                control_request(
                    ("127.0.0.1", addresses[donor][2]),
                    {"cmd": "flip", "epoch": 2},
                    timeout_s=60.0,
                )
            control_request(("127.0.0.1", addresses["c"][2]), {"cmd": "activate"})

            router1, router2 = ManifestRouter(m1), ManifestRouter(m2)
            moved = 0
            for keys in by_owner.values():
                for key in keys:
                    owner = router2.owner_for(key)
                    [r] = udp_exchange(
                        udp, m2.nodes[owner].address, [Query(QueryType.GET, key)]
                    )
                    assert r.status is ResponseStatus.OK and r.value == b"v:" + key
                    if router1.owner_for(key) != owner:
                        moved += 1
                        assert owner == "c"  # arcs only move to the joiner
                        # The donor no longer holds the key locally …
                        [stale] = udp_exchange(
                            udp,
                            m2.nodes[router1.owner_for(key)].address,
                            [Query(QueryType.GET, key)],
                        )
                        # … and redirects with the new epoch.
                        assert stale.status is ResponseStatus.WRONG_NODE
                        assert int.from_bytes(stale.value, "little") == 2
            assert moved > 0
            stats = control_request(("127.0.0.1", addresses["c"][2]), {"cmd": "stats"})
            assert stats["keys"] == moved
        finally:
            joiner.stop()

    def test_write_between_transfer_and_flip_is_delta_replayed(self, fleet, udp):
        nodes, m1, addresses = fleet
        by_owner = split_keys(m1)
        self.prefill(udp, m1, by_owner)
        m2, addresses = self.grow(addresses)
        router1, router2 = ManifestRouter(m1), ManifestRouter(m2)
        moving = next(
            key
            for keys in by_owner.values()
            for key in keys
            if router2.owner_for(key) == "c"
        )
        donor = router1.owner_for(moving)
        joiner = spawn_node("c", m2, gated=True)
        try:
            control_request(
                ("127.0.0.1", addresses[donor][2]),
                {"cmd": "transfer", "manifest": m2.to_dict()},
                timeout_s=60.0,
            )
            # The donor still serves the moving key; this write lands after
            # the bulk copy and must reach the joiner via the delta pass.
            [r] = udp_exchange(
                udp, m1.nodes[donor].address, [Query(QueryType.SET, moving, b"fresh")]
            )
            assert r.status is ResponseStatus.STORED
            other = "a" if donor == "b" else "b"
            control_request(
                ("127.0.0.1", addresses[other][2]),
                {"cmd": "transfer", "manifest": m2.to_dict()},
                timeout_s=60.0,
            )
            for name in (donor, other):
                reply = control_request(
                    ("127.0.0.1", addresses[name][2]),
                    {"cmd": "flip", "epoch": 2},
                    timeout_s=60.0,
                )
            control_request(("127.0.0.1", addresses["c"][2]), {"cmd": "activate"})
            [r] = udp_exchange(
                udp, m2.nodes["c"].address, [Query(QueryType.GET, moving)]
            )
            assert r.status is ResponseStatus.OK
            assert r.value == b"fresh"
        finally:
            joiner.stop()

    def test_flip_without_transfer_rejected(self, fleet):
        _, _, addresses = fleet
        with pytest.raises(ClusterError, match="no migration"):
            control_request(
                ("127.0.0.1", addresses["a"][2]), {"cmd": "flip", "epoch": 2}
            )


# ------------------------------------------------------------ cluster client


class TestClusterClient:
    def test_routes_and_scatters_in_order(self, fleet, udp):
        _, manifest, _ = fleet
        with ClusterClient(manifest) as client:
            queries = [
                Query(QueryType.SET, f"ck{i}".encode(), b"cv%d" % i) for i in range(60)
            ]
            responses = client.execute(queries)
            assert all(r.status is ResponseStatus.STORED for r in responses)
            values = client.execute(
                [Query(QueryType.GET, f"ck{i}".encode()) for i in range(60)]
            )
            assert [r.value for r in values] == [b"cv%d" % i for i in range(60)]

    def test_stale_client_follows_redirects_to_new_epoch(self, fleet, udp):
        nodes, m1, addresses = fleet
        by_owner = split_keys(m1)
        TestMigration.prefill(TestMigration(), udp, m1, by_owner)
        m2, addresses = TestMigration.grow(TestMigration(), addresses)
        joiner = spawn_node("c", m2, gated=True)
        stale_client = ClusterClient(m1)  # built before the membership change
        try:
            for donor in ("a", "b"):
                control_request(
                    ("127.0.0.1", addresses[donor][2]),
                    {"cmd": "transfer", "manifest": m2.to_dict()},
                    timeout_s=60.0,
                )
            for donor in ("a", "b"):
                control_request(
                    ("127.0.0.1", addresses[donor][2]),
                    {"cmd": "flip", "epoch": 2},
                    timeout_s=60.0,
                )
            control_request(("127.0.0.1", addresses["c"][2]), {"cmd": "activate"})
            router2 = ManifestRouter(m2)
            moving = next(
                key
                for keys in by_owner.values()
                for key in keys
                if router2.owner_for(key) == "c"
            )
            assert stale_client.get(moving) == b"v:" + moving
            assert stale_client.stats.redirects >= 1
            assert stale_client.manifest.epoch == 2
            assert stale_client.stats.manifest_refreshes >= 1
        finally:
            stale_client.close()
            joiner.stop()
