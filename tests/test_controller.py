"""Unit tests for the adaptation controller."""

import pytest

from repro.core.controller import AdaptationController
from repro.core.profiler import WorkloadProfile
from repro.hardware.specs import APU_A10_7850K

from conftest import profile_for


@pytest.fixture
def controller():
    return AdaptationController(APU_A10_7850K)


class TestPlanning:
    def test_first_call_plans(self, controller):
        config = controller.config_for(profile_for("K16-G95-S"))
        assert config is not None
        assert controller.replan_count == 1
        assert controller.current_config is config

    def test_steady_workload_no_replans(self, controller):
        profile = profile_for("K16-G95-S")
        first = controller.config_for(profile)
        for _ in range(10):
            assert controller.config_for(profile) is first
        assert controller.replan_count == 1

    def test_small_drift_no_replan(self, controller):
        controller.config_for(WorkloadProfile(0.95, 16, 64, 0.99))
        controller.config_for(WorkloadProfile(0.93, 17, 66, 0.97))
        assert controller.replan_count == 1

    def test_substantial_change_replans(self, controller):
        controller.config_for(profile_for("K16-G95-S"))
        controller.config_for(profile_for("K8-G50-U"))
        assert controller.replan_count == 2

    def test_replan_compares_to_planned_profile_not_last(self, controller):
        """Drift accumulates against the profile the plan was made for, so
        a slow 15 % drift in 5 % steps still eventually triggers."""
        controller.config_for(WorkloadProfile(0.95, 16, 64.0, 0.99))
        controller.config_for(WorkloadProfile(0.95, 16, 67.0, 0.99))  # +4.7 %
        assert controller.replan_count == 1
        controller.config_for(WorkloadProfile(0.95, 16, 71.0, 0.99))  # +11 % total
        assert controller.replan_count == 2

    def test_events_record_labels(self, controller):
        controller.config_for(profile_for("K16-G95-S"))
        controller.config_for(profile_for("K8-G50-U"))
        assert controller.events[0].old_label == "<none>"
        assert controller.events[1].old_label != "<none>"
        assert controller.events[1].trigger_change > 0.10

    def test_force_replan(self, controller):
        profile = profile_for("K16-G95-S")
        controller.config_for(profile)
        controller.force_replan()
        controller.config_for(profile)
        assert controller.replan_count == 2

    def test_estimate_exposed(self, controller):
        controller.config_for(profile_for("K16-G95-S"))
        assert controller.current_estimate.throughput_mops > 0

    def test_alternating_workloads_replan_each_switch(self, controller):
        a, b = profile_for("K8-G50-U"), profile_for("K16-G95-S")
        for profile in (a, a, b, b, a, b):
            controller.config_for(profile)
        # Plans at: first a, a->b, b->a, a->b = 4 replans.
        assert controller.replan_count == 4

    def test_work_stealing_flag_respected(self):
        controller = AdaptationController(APU_A10_7850K, work_stealing=False)
        config = controller.config_for(profile_for("K16-G95-S"))
        assert not config.work_stealing


class TestAdaptationEvents:
    def test_bootstrap_event_has_no_old_config(self, controller):
        controller.config_for(profile_for("K16-G95-S"))
        event = controller.events[0]
        assert event.bootstrap
        assert event.old_config is None
        assert event.old_label == "<none>"
        assert event.new_config is controller.current_config
        assert event.changed  # "<none>" -> a real pipeline counts as a change
        assert event.trigger_change == float("inf")

    def test_same_config_replan_is_not_a_change(self, controller):
        """force_replan on a steady workload re-runs the search, picks the
        same plan, and the resulting event reports changed == False."""
        profile = profile_for("K16-G95-S")
        first = controller.config_for(profile)
        controller.force_replan()
        assert controller.config_for(profile) == first
        assert controller.replan_count == 2
        event = controller.events[1]
        assert not event.changed
        assert not event.bootstrap
        assert event.old_config == event.new_config == first
        # force_replan discards the planned-for profile, so the trigger is
        # "no baseline" (inf), exactly like the bootstrap plan's.
        assert event.trigger_change == float("inf")

    def test_force_replan_keeps_current_plan_until_next_profile(self, controller):
        config = controller.config_for(profile_for("K16-G95-S"))
        controller.force_replan()
        assert controller.current_config is config
        assert controller.replan_count == 1

    def test_events_carry_full_configs_across_a_switch(self, controller):
        controller.config_for(profile_for("K16-G95-S"))
        controller.config_for(profile_for("K8-G50-U"))
        event = controller.events[1]
        assert event.old_config is not None
        assert event.old_config.label == event.old_label
        assert event.new_config.label == event.new_label
        assert event.changed == (event.old_label != event.new_label)

    def test_replans_logged_at_info(self, controller, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.core.controller"):
            controller.config_for(profile_for("K16-G95-S"))
        assert any("replan" in message for message in caplog.messages)
