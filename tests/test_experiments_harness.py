"""Structural tests of the experiment harness (repro.analysis.experiments).

The benchmark suite asserts the paper's claims; these tests pin down the
harness's *contracts* — row counts, label sets, determinism — so benchmark
failures always mean a modelling change, never a harness bug.
"""

import pytest

from repro.analysis import experiments as X


@pytest.fixture(scope="module")
def harness():
    return X.Harness()


class TestFig04:
    def test_rows_and_order(self, harness):
        rows = X.fig04_stage_times(harness)
        assert [r.dataset for r in rows] == ["K8", "K16", "K32", "K128"]
        for r in rows:
            assert r.batch > 0
            assert r.np_us > 0 and r.in_us > 0 and r.rsv_us > 0

    def test_deterministic(self, harness):
        a = X.fig04_stage_times(harness)
        b = X.fig04_stage_times(harness)
        assert [(r.np_us, r.in_us, r.rsv_us) for r in a] == [
            (r.np_us, r.in_us, r.rsv_us) for r in b
        ]


class TestFig06:
    def test_shares_sum_to_one(self, harness):
        for r in X.fig06_index_op_shares(harness):
            assert r.search_share + r.insert_share + r.delete_share == pytest.approx(1.0)

    def test_insert_batches_match_paper_axis(self, harness):
        rows = X.fig06_index_op_shares(harness)
        assert [r.insert_batch for r in rows] == [1000, 2000, 3000, 4000, 5000]


class TestFig09:
    def test_covers_all_24_workloads(self, harness):
        rows = X.fig09_cost_model_error(harness)
        assert len({r.workload for r in rows}) == 24

    def test_error_definition(self, harness):
        for r in X.fig09_cost_model_error(harness):
            expected = (r.measured_mops - r.estimated_mops) / r.measured_mops
            assert r.error == pytest.approx(expected)


class TestFig11:
    def test_rows_complete(self, harness):
        rows = X.fig11_throughput(harness)
        assert len(rows) == 24
        for r in rows:
            assert r.baseline_mops > 0
            assert r.speedup == pytest.approx(r.dido_mops / r.baseline_mops)
            assert "CPU" in r.dido_config

    def test_dido_plan_cache_consistency(self, harness):
        """The harness caches DIDO's plan per workload: repeated calls agree."""
        from repro.workloads.ycsb import standard_workload

        spec = standard_workload("K16-G95-S")
        c1, e1 = harness.dido_plan(spec)
        c2, e2 = harness.dido_plan(spec)
        assert c1 is c2 and e1 is e2


class TestFig13to15:
    def test_fig13_covers_g95_and_g50(self, harness):
        rows = X.fig13_flexible_index(harness)
        assert len(rows) == 16
        assert all(("-G95-" in r.workload) or ("-G50-" in r.workload) for r in rows)

    def test_fig15_baseline_is_no_steal(self, harness):
        rows = X.fig15_work_stealing(harness)
        assert len(rows) == 24
        # Stealing cannot make the same configuration slower.
        assert all(r.technique_mops >= r.baseline_mops * 0.999 for r in rows)


class TestFig16:
    def test_twelve_shared_workloads(self, harness):
        rows = X.fig16_discrete_comparison(harness)
        assert len(rows) == 12
        assert not any("-G50-" in r.workload for r in rows)
        assert not any(r.workload.startswith("K32") for r in rows)

    def test_derived_metrics_positive(self, harness):
        for r in X.fig16_discrete_comparison(harness):
            dido_pp, disc_pp = r.price_performance()
            dido_ee, disc_ee = r.energy_efficiency()
            assert min(dido_pp, disc_pp, dido_ee, disc_ee) > 0


class TestFig19:
    def test_grid(self, harness):
        rows = X.fig19_latency_budgets(harness)
        budgets = {r.latency_us for r in rows}
        assert budgets == {600.0, 800.0, 1000.0}
        assert len({r.workload for r in rows}) == 4


class TestFig20:
    def test_timeline_monotone_time(self, harness):
        timeline = X.fig20_adaptation_timeline(harness, cycle_ms=4.0, duration_ms=8.0)
        assert timeline.times_ms == sorted(timeline.times_ms)
        assert all(t >= 0 for t in timeline.throughput_mops)
        assert timeline.replans >= 2


class TestFig21:
    def test_cycles_covered(self, harness):
        rows = X.fig21_fluctuation(harness, cycles_ms=(2, 8, 32))
        assert [r.cycle_ms for r in rows] == [2, 8, 32]
        assert all(r.speedup > 0 for r in rows)
