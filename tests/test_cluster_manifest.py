"""Cluster manifest and router tests: serialisation, routing identity,
and the ring's arc-reassignment contract under membership change."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.manifest import ClusterManifest, ManifestRouter, NodeInfo
from repro.cluster.ring import HashRing
from repro.errors import ConfigurationError


def make_ring(names, vnodes=16):
    ring = HashRing(vnodes)
    for name in names:
        ring.add_node(name)
    return ring


def make_manifest(names, epoch=1, vnodes=16, base_port=11000):
    ring = make_ring(names, vnodes)
    addresses = {
        name: ("127.0.0.1", base_port + 2 * i, base_port + 2 * i + 1)
        for i, name in enumerate(sorted(names))
    }
    return ClusterManifest.from_ring(epoch, ring, addresses)


# ------------------------------------------------------------ serialisation


class TestManifestSerialisation:
    def test_json_round_trip(self):
        manifest = make_manifest(["alpha", "beta", "gamma"])
        decoded = ClusterManifest.from_json(manifest.to_json())
        assert decoded == manifest
        assert decoded.epoch == 1
        assert sorted(decoded.nodes) == ["alpha", "beta", "gamma"]

    def test_round_trip_preserves_exact_ring(self):
        names = ["alpha", "beta", "gamma"]
        ring = make_ring(names)
        manifest = make_manifest(names)
        rebuilt = ClusterManifest.from_json(manifest.to_json()).to_ring()
        assert rebuilt.owner_points() == ring.owner_points()
        for i in range(500):
            key = f"key-{i}".encode()
            assert rebuilt.node_for(key) == ring.node_for(key)

    def test_addresses_survive(self):
        manifest = make_manifest(["a", "b"])
        decoded = ClusterManifest.from_dict(manifest.to_dict())
        info = decoded.nodes["b"]
        assert isinstance(info, NodeInfo)
        assert info.address == manifest.nodes["b"].address
        assert info.control_address == manifest.nodes["b"].control_address

    def test_epoch_must_be_positive(self):
        ring = make_ring(["a"])
        with pytest.raises(ConfigurationError):
            ClusterManifest.from_ring(0, ring, {"a": ("127.0.0.1", 1, 2)})

    def test_missing_address_rejected(self):
        ring = make_ring(["a", "b"])
        with pytest.raises(ConfigurationError, match="no address"):
            ClusterManifest.from_ring(1, ring, {"a": ("127.0.0.1", 1, 2)})

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterManifest.from_json("not json at all {")

    def test_malformed_payload_rejected(self):
        manifest = make_manifest(["a"])
        payload = manifest.to_dict()
        del payload["nodes"]["a"]["points"]
        with pytest.raises(ConfigurationError):
            ClusterManifest.from_dict(payload)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ClusterManifest(
                1,
                [
                    NodeInfo("a", "h", 1, 2, (10, 20)),
                    NodeInfo("b", "h", 3, 4, (20, 30)),
                ],
            )

    def test_json_is_plain_data(self):
        # The wire planes carry no pickle; the manifest must stay JSON.
        payload = json.loads(make_manifest(["a", "b"]).to_json())
        assert set(payload) == {"epoch", "vnodes", "nodes"}


# ------------------------------------------------------------------ routing


class TestManifestRouter:
    def test_matches_ring_key_by_key(self):
        names = ["alpha", "beta", "gamma", "delta"]
        ring = make_ring(names)
        router = ManifestRouter(make_manifest(names))
        keys = [f"user:{i}".encode() for i in range(2000)]
        assert router.owners_for(keys) == [ring.node_for(k) for k in keys]

    def test_scalar_and_vector_paths_agree(self):
        router = ManifestRouter(make_manifest(["a", "b", "c"]))
        keys = [f"k{i}".encode() for i in range(300)]
        vector = router.owners_for(keys)
        scalar = [router.owner_for(k) for k in keys]
        assert vector == scalar
        # Small batches take the scalar path by design; same answers.
        assert router.owners_for(keys[:5]) == scalar[:5]

    def test_owner_ids_index_names(self):
        router = ManifestRouter(make_manifest(["b", "a"]))
        assert router.names == ["a", "b"]
        ids = router.owner_ids_for([b"some-key"])
        assert router.names[ids[0]] == router.owner_for(b"some-key")


# --------------------------------------------- arc reassignment (property)


node_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6),
    min_size=2,
    max_size=6,
    unique=True,
)


@given(names=node_names, joiner=st.text(alphabet="xyz", min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_add_node_moves_only_arcs_gained_by_the_joiner(names, joiner):
    """Adding a node moves exactly the keys whose owner changed, and every
    one of them moves *to the joiner* — never between surviving nodes."""
    if joiner in names:
        joiner = joiner + "-new"
    ring = make_ring(names, vnodes=8)
    keys = [f"key-{i}".encode() for i in range(400)]
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node(joiner)
    after = {key: ring.node_for(key) for key in keys}
    moved = {key for key in keys if before[key] != after[key]}
    for key in moved:
        assert after[key] == joiner, (
            f"{key!r} moved {before[key]} -> {after[key]}, not to the joiner"
        )
    for key in set(keys) - moved:
        assert before[key] == after[key]


@given(names=node_names)
@settings(max_examples=30, deadline=None)
def test_remove_node_moves_only_the_leavers_keys(names):
    """Removing a node reassigns exactly its keys; survivors keep theirs."""
    ring = make_ring(names, vnodes=8)
    leaver = sorted(names)[0]
    keys = [f"key-{i}".encode() for i in range(400)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove_node(leaver)
    after = {key: ring.node_for(key) for key in keys}
    for key in keys:
        if before[key] == leaver:
            assert after[key] != leaver
        else:
            assert after[key] == before[key], (
                f"{key!r} moved between survivors {before[key]} -> {after[key]}"
            )


@given(names=node_names, epoch=st.integers(min_value=1, max_value=100))
@settings(max_examples=20, deadline=None)
def test_manifest_round_trip_routing_identity(names, epoch):
    manifest = make_manifest(names, epoch=epoch)
    router = ManifestRouter(manifest)
    decoded = ClusterManifest.from_json(manifest.to_json())
    router2 = ManifestRouter(decoded)
    keys = [f"k{i}".encode() for i in range(100)]
    assert router.owners_for(keys) == router2.owners_for(keys)
    assert decoded.epoch == epoch
