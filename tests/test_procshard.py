"""Process-per-shard backend: rings, codecs, facade, crash paths, identity.

Covers the ISSUE-7 tentpole and its satellites:

* :class:`~repro.net.arena.ShmRing` unit behaviour (roundtrip, oversized
  streaming, timeout, close);
* query/response block codec roundtrips;
* :class:`~repro.engine.procshard.ProcShardStore` facade parity with a
  plain :class:`~repro.kv.store.KVStore`;
* worker-crash handling: ERROR-filled rows, respawn, and the
  shared-memory leak regression (a SIGKILLed worker must leave no
  orphaned ``/dev/shm`` segment after close);
* the hypothesis byte-identity fuzz vs :class:`ReferenceEngine` across
  shard counts {1, 2, 4, 7} x (dedup, hot_cache) flags, mirroring the
  sharded-vs-plain property test.
"""

import os
import signal
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dido import DidoSystem
from repro.engine import BatchPlane, compile_stage_plan
from repro.engine.procshard import (
    ProcShardEngine,
    ProcShardStore,
    WorkerFailedError,
)
from repro.errors import ConfigurationError
from repro.kv.protocol import Query, QueryType, ResponseStatus, encode_responses
from repro.kv.store import KVStore
from repro.net.arena import (
    QueryBlockColumns,
    RingClosedError,
    ShmRing,
    decode_query_block,
    decode_response_block,
    decode_response_columns,
    encode_query_block,
    encode_response_block,
)
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.telemetry import configure as configure_telemetry

from test_engine import workload_batches

SHARD_COUNTS = (1, 2, 4, 7)


def shm_segments() -> set[str]:
    """Names of live repro ring arenas (Linux /dev/shm listing)."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("repro-ring-")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# ------------------------------------------------------------------ the ring


class TestShmRing:
    def test_roundtrip_parts_and_empty(self):
        ring = ShmRing.create(4096)
        peer = ShmRing.attach(ring.name)
        try:
            ring.send(b"hello ", b"world")
            assert peer.recv(timeout=1.0) == b"hello world"
            ring.send()
            assert peer.recv(timeout=1.0) == b""
        finally:
            peer.close()
            ring.close()

    def test_message_larger_than_capacity_streams_through(self):
        ring = ShmRing.create(1024)
        peer = ShmRing.attach(ring.name)
        blob = os.urandom(10_000)
        out = []
        reader = threading.Thread(target=lambda: out.append(peer.recv(timeout=5.0)))
        reader.start()
        try:
            ring.send(blob, timeout=5.0)
            reader.join(timeout=5.0)
            assert out == [blob]
        finally:
            peer.close()
            ring.close()

    def test_recv_timeout_returns_none(self):
        ring = ShmRing.create(512)
        try:
            assert ring.recv(timeout=0.05) is None
        finally:
            ring.close()

    def test_close_interrupts_waiting_reader(self):
        ring = ShmRing.create(512)
        peer = ShmRing.attach(ring.name)
        errors = []

        def read():
            try:
                peer.recv(timeout=10.0)
            except RingClosedError as exc:
                errors.append(exc)

        reader = threading.Thread(target=read)
        reader.start()
        time.sleep(0.02)
        ring.close()
        reader.join(timeout=5.0)
        assert errors
        peer.close()

    def test_pending_bytes_tracks_queue_depth(self):
        ring = ShmRing.create(4096)
        try:
            assert ring.pending_bytes == 0
            ring.send(b"x" * 100)
            assert ring.pending_bytes == 104  # length prefix + body
        finally:
            ring.close()

    def test_owner_unlinks_segment(self):
        before = shm_segments()
        ring = ShmRing.create(512)
        assert ring.name in shm_segments() - before
        ring.close()
        assert ring.name not in shm_segments()

    def test_high_water_tracks_peak_backlog(self):
        """ISSUE satellite: the header high-water field records the peak
        byte depth since the last sample, not the instantaneous depth."""
        ring = ShmRing.create(4096)
        peer = ShmRing.attach(ring.name)
        try:
            ring.send(b"x" * 100)
            ring.send(b"y" * 50)
            assert ring.high_water_bytes == 104 + 54  # prefixes + bodies
            assert peer.recv(timeout=1.0) is not None
            assert peer.recv(timeout=1.0) is not None
            # The peak survives the drain; take_high_water() hands it over
            # and re-arms the mark at the (now empty) current depth.
            assert ring.pending_bytes == 0
            assert ring.take_high_water() == 158
            assert ring.take_high_water() == 0
            ring.send(b"z")
            assert ring.take_high_water() == 5
        finally:
            peer.close()
            ring.close()

    def test_writer_stall_accumulates_only_on_backpressure(self):
        """ISSUE satellite: ``stall_ns`` counts writer-side full-ring
        pauses; an idle reader-side wait must not contribute."""
        ring = ShmRing.create(1024)
        peer = ShmRing.attach(ring.name)
        blob = os.urandom(4096)
        out = []

        def late_read():
            time.sleep(0.05)
            out.append(peer.recv(timeout=5.0))

        reader = threading.Thread(target=late_read)
        reader.start()
        try:
            assert ring.stall_ns == 0
            ring.send(blob, timeout=5.0)  # > capacity: writer must wait
            reader.join(timeout=5.0)
            assert out == [blob]
            assert ring.stall_ns > 0
            # The reader's own ring never saw backpressure.
            assert peer.stall_ns == 0
        finally:
            peer.close()
            ring.close()


# -------------------------------------------------------------- block codecs


class TestBlockCodecs:
    def test_query_block_roundtrip_all_rows(self):
        qtypes = [QueryType.SET, QueryType.GET, QueryType.DELETE]
        keys = [b"alpha", b"", b"y" * 70]
        values = [b"v1", b"", b""]
        buf = b"".join(encode_query_block(qtypes, keys, values))
        columns = decode_query_block(buf)
        assert columns.qtypes == qtypes
        assert columns.keys == keys
        assert columns.values == values

    def test_query_block_row_subset(self):
        qtypes = [QueryType.SET, QueryType.GET, QueryType.SET, QueryType.GET]
        keys = [b"a", b"b", b"c", b"d"]
        values = [b"1", b"", b"3", b""]
        buf = b"".join(encode_query_block(qtypes, keys, values, rows=[1, 3]))
        columns = decode_query_block(buf)
        assert columns.keys == [b"b", b"d"]
        assert columns.qtypes == [QueryType.GET, QueryType.GET]

    def test_response_block_roundtrip(self):
        statuses = [
            ResponseStatus.OK.value,
            ResponseStatus.NOT_FOUND.value,
            ResponseStatus.STORED.value,
            ResponseStatus.OK.value,
        ]
        values = [b"payload", None, None, b""]
        buf = b"".join(encode_response_block(statuses, values))
        out_statuses, out_values, sizes = decode_response_block(buf)
        assert out_statuses == statuses
        # OK rows keep their bytes (including empty); others decode None.
        assert out_values == [b"payload", None, None, b""]
        assert sizes[0] == 5 + len(b"payload")
        assert sizes[1] == 5

    def test_response_block_distinguishes_ok_empty_from_miss(self):
        buf = b"".join(
            encode_response_block(
                [ResponseStatus.OK.value, ResponseStatus.NOT_FOUND.value],
                [b"", None],
            )
        )
        _, values, _ = decode_response_block(buf)
        assert values == [b"", None]

    def test_query_block_columns_bytes_match_scalar_encoder(self):
        """ISSUE tentpole: the precomputed gather-encoder emits the exact
        bytes of the per-row encoder, full batch and row subsets alike."""
        qtypes = [QueryType.SET, QueryType.GET, QueryType.DELETE,
                  QueryType.SET, QueryType.GET]
        keys = [b"alpha", b"", b"y" * 70, b"k", b"zz"]
        values = [b"v1", b"", b"", b"x" * 33, b""]
        columns = QueryBlockColumns(qtypes, keys, values)
        for rows in (None, [0, 2, 4], [1], list(range(5))):
            expected = b"".join(
                encode_query_block(qtypes, keys, values, rows=rows)
            )
            assert b"".join(columns.encode(rows)) == expected, rows

    def test_decode_response_columns_matches_scalar_decoder(self):
        statuses = [
            ResponseStatus.OK.value,
            ResponseStatus.NOT_FOUND.value,
            ResponseStatus.STORED.value,
            ResponseStatus.OK.value,
            ResponseStatus.OK.value,
        ]
        values = [b"payload", None, None, b"", b"x" * 90]
        buf = b"".join(encode_response_block(statuses, values))
        ref_statuses, ref_values, ref_sizes = decode_response_block(buf)
        col_statuses, col_values, col_sizes = decode_response_columns(buf)
        assert list(col_statuses) == ref_statuses
        assert list(col_values) == ref_values
        assert list(col_sizes) == ref_sizes


# ------------------------------------------------------------- store facade


class TestProcShardStoreFacade:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcShardStore(1 << 20, 512, 0)

    def test_scalar_ops_match_plain_store(self):
        plain = KVStore(4 << 20, 2048)
        store = ProcShardStore(4 << 20, 2048, 3)
        try:
            for i in range(50):
                key = b"k%d" % (i % 17)
                value = b"v%d" % i
                plain.set(key, value)
                store.set(key, value)
            for i in range(17):
                key = b"k%d" % i
                assert store.get(key) == plain.get(key)
            assert store.get(b"missing") is None
            assert store.delete(b"k3") is True
            assert store.delete(b"k3") is False
            assert len(store) == len(plain) - 1
        finally:
            store.close()

    def test_populate_and_heap_dump(self):
        store = ProcShardStore(4 << 20, 2048, 4)
        try:
            items = [(b"key-%d" % i, b"v") for i in range(100)]
            assert store.populate(items) == 100
            assert len(store) == 100
            keys = {obj.key for obj in store.heap.objects()}
            assert keys == {key for key, _ in items}
        finally:
            store.close()

    def test_merged_index_stats_accumulate(self):
        store = ProcShardStore(4 << 20, 2048, 2)
        try:
            for i in range(30):
                store.set(b"key-%d" % i, b"v")
            stats = store.index.stats
            assert stats.inserts == 30
            assert stats.average_insert_buckets() > 0
            assert len(store.index) == 30
        finally:
            store.close()

    def test_close_unlinks_all_arenas_and_is_idempotent(self):
        before = shm_segments()
        store = ProcShardStore(2 << 20, 512, 3)
        assert len(shm_segments() - before) == 6  # two rings per worker
        store.close()
        store.close()
        assert shm_segments() <= before

    def test_reset_empties_every_shard(self):
        store = ProcShardStore(2 << 20, 512, 2)
        try:
            store.populate([(b"a", b"1"), (b"b", b"2")])
            assert len(store) == 2
            store.reset()
            assert len(store) == 0
            assert store.get(b"a") is None
        finally:
            store.close()

    def test_worker_exception_carries_traceback(self):
        store = ProcShardStore(2 << 20, 512, 1)
        try:
            with pytest.raises(WorkerFailedError, match="unknown message type"):
                store.workers[0].request(bytes([250]))
        finally:
            store.close()


# ----------------------------------------------------------- crash handling


class TestWorkerCrash:
    def test_killed_worker_leaves_no_orphaned_segments(self):
        """ISSUE satellite: SIGKILL a worker mid-life; close() must still
        unlink every /dev/shm arena (the router owns both rings)."""
        before = shm_segments()
        store = ProcShardStore(2 << 20, 512, 3)
        os.kill(store.workers[1].process.pid, signal.SIGKILL)
        store.workers[1].process.join(timeout=5.0)
        store.close()
        assert shm_segments() <= before

    def test_dead_shard_rows_answer_error_and_respawn(self):
        store = ProcShardStore(4 << 20, 2048, 2)
        engine = ProcShardEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        try:
            keys = [b"key-%d" % i for i in range(40)]
            store.populate([(k, b"v") for k in keys])
            dead = store.workers[0]
            os.kill(dead.process.pid, signal.SIGKILL)
            dead.process.join(timeout=5.0)
            plane = BatchPlane([Query(QueryType.GET, k) for k in keys])
            engine.run(store, plan, plane, epoch=1)
            responses = plane.take_responses()
            statuses = {r.status for r in responses}
            assert ResponseStatus.ERROR in statuses  # dead shard's rows
            assert ResponseStatus.OK in statuses  # live shard still serves
            # Column view stays consistent with the response objects.
            assert plane.response_statuses == [r.status.value for r in responses]
            assert store.ensure_workers() == [0]
            assert store.respawns == 1
            # The respawned worker is empty but serving again.
            plane = BatchPlane([Query(QueryType.SET, b"fresh", b"1"),
                                Query(QueryType.GET, b"fresh")])
            engine.run(store, plan, plane, epoch=2)
            assert plane.take_responses()[1].value == b"1"
        finally:
            store.close()

    def test_maintain_respawns_through_dido_system(self):
        system = DidoSystem(
            memory_bytes=4 << 20, expected_objects=2048,
            engine="procshard", shards=2,
        )
        try:
            assert system.maintain() == []
            worker = system.store.workers[1]
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=5.0)
            assert system.maintain() == [1]
            result = system.process([Query(QueryType.SET, b"x", b"1")])
            assert result.responses[0].status is ResponseStatus.STORED
        finally:
            system.close()


# ------------------------------------------------- byte-identity (property)

_STORES: dict[tuple[int, bool, bool, bool], ProcShardStore] = {}


def _pooled_store(
    shards: int, dedup: bool, hot_cache: bool, delta_index: bool = False
) -> ProcShardStore:
    """Persistent worker fleets reused across hypothesis examples (spawning
    14 processes per example would dominate the suite); reset() between
    examples rebuilds every shard's store fresh."""
    key = (shards, dedup, hot_cache, delta_index)
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = ProcShardStore(
            32 << 20, 2048, shards,
            dedup=dedup, hot_cache=hot_cache, delta_index=delta_index,
        )
    else:
        store.reset()
    return store


def _drain_pools() -> None:
    while _STORES:
        _STORES.popitem()[1].close()


@pytest.fixture(scope="module", autouse=True)
def _close_pooled_stores():
    yield
    _drain_pools()


def _queries_from_ops(ops) -> list[Query]:
    queries = []
    for op, key_id, value in ops:
        key = b"key-%d" % key_id
        if op == "set":
            queries.append(Query(QueryType.SET, key, value))
        elif op == "get":
            queries.append(Query(QueryType.GET, key))
        else:
            queries.append(Query(QueryType.DELETE, key))
    return queries


def run_pipeline(store, engine, config, batches):
    pipeline = FunctionalPipeline(store, engine=engine)
    frames = []
    for batch in batches:
        result = pipeline.process_batch(config, batch)
        frames.append(b"".join(f.payload for f in result.frames))
    return frames


# A small key space forces hot keys: repeated GET runs of one key exercise
# the workers' dedup and hot-cache paths on every shard count.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "get", "get", "delete"]),
        st.integers(0, 15),
        st.binary(min_size=0, max_size=40),
    ),
    min_size=1,
    max_size=100,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(ops_strategy, min_size=1, max_size=3))
def test_procshard_byte_identical_to_reference(batches_ops):
    """ISSUE satellite: procshard vs ReferenceEngine, byte-identical
    responses across shard counts {1, 2, 4, 7} x (dedup, hot-cache) flag
    combinations on mixed GET/SET/DELETE traces."""
    config = megakv_coupled_config()
    batches = [_queries_from_ops(ops) for ops in batches_ops]
    baseline = run_pipeline(KVStore(32 << 20, 2048), "reference", config, batches)
    for shards in SHARD_COUNTS:
        for dedup, hot_cache in ((False, False), (True, True)):
            store = _pooled_store(shards, dedup, hot_cache)
            frames = run_pipeline(store, ProcShardEngine(), config, batches)
            assert frames == baseline, (
                f"shards={shards} dedup={dedup} hot_cache={hot_cache}"
            )


# ------------------------------------------------------------ system level


class TestProcShardSystem:
    def test_dido_system_constructs_procshard_store(self):
        system = DidoSystem(
            memory_bytes=4 << 20, expected_objects=2048,
            engine="procshard", shards=4,
        )
        try:
            assert isinstance(system.store, ProcShardStore)
            assert isinstance(system.pipeline._engine, ProcShardEngine)
            assert system.store.num_shards == 4
        finally:
            system.close()

    def test_system_matches_plain_system_with_flags(self):
        system = DidoSystem(
            memory_bytes=8 << 20, expected_objects=4096,
            engine="procshard", shards=3, dedup=True, hot_cache=True,
        )
        plain = DidoSystem(memory_bytes=8 << 20, expected_objects=4096)
        try:
            for batch in workload_batches(batches=3, size=256):
                proc_result = system.process(list(batch))
                plain_result = plain.process(list(batch))
                assert encode_responses(proc_result.responses) == (
                    encode_responses(plain_result.responses)
                )
        finally:
            system.close()

    def test_worker_frequency_harvest_feeds_profiler(self):
        system = DidoSystem(
            memory_bytes=4 << 20, expected_objects=2048,
            engine="procshard", shards=2, hot_cache=True,
        )
        try:
            hot = [Query(QueryType.SET, b"hot", b"v")] + [
                Query(QueryType.GET, b"hot")
            ] * 63
            for _ in range(4):
                system.process(list(hot))
            # The last batch's reply shipped a worker-side harvest of the
            # hot key's access counts (drained into the profiler at the
            # start of the *next* process call — the same one-window lag
            # the in-process heap harvest has).
            assert system.store.take_frequency_samples()
        finally:
            system.close()

    def test_engine_falls_back_in_process_on_plain_store(self):
        store = KVStore(2 << 20, 512)
        engine = ProcShardEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        plane = BatchPlane(
            [Query(QueryType.SET, b"a", b"1"), Query(QueryType.GET, b"a")]
        )
        engine.run(store, plan, plane, epoch=0)
        assert plane.take_responses()[1].value == b"1"


# -------------------------------------------- pipelined IPC (submit/collect)


def run_pipeline_overlapped(store, engine, config, batches):
    """Submit every window before collecting any: windows overlap in
    flight (the engine itself caps residency at the double-buffer bound,
    completing the oldest window when a third submit arrives)."""
    pipeline = FunctionalPipeline(store, engine=engine)
    pending = [pipeline.submit_batch(config, batch) for batch in batches]
    frames = []
    for handle in pending:
        result = pipeline.collect_batch(handle)
        frames.append(b"".join(f.payload for f in result.frames))
    return frames


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(ops_strategy, min_size=2, max_size=4))
def test_pipelined_byte_identical_to_synchronous(batches_ops):
    """ISSUE satellite: pipelined submit/collect vs the synchronous run()
    contract across shard counts {1, 2, 4, 7} x (dedup, hot-cache,
    delta-index) flags, both byte-identical to the ReferenceEngine."""
    config = megakv_coupled_config()
    batches = [_queries_from_ops(ops) for ops in batches_ops]
    baseline = run_pipeline(KVStore(32 << 20, 2048), "reference", config, batches)
    for shards in SHARD_COUNTS:
        for dedup, hot_cache, delta in (
            (False, False, False),
            (True, True, True),
        ):
            store = _pooled_store(shards, dedup, hot_cache, delta)
            sync = run_pipeline(store, ProcShardEngine(), config, batches)
            store.reset()
            overlapped = run_pipeline_overlapped(
                store, ProcShardEngine(), config, batches
            )
            flags = f"shards={shards} dedup={dedup} hot={hot_cache} delta={delta}"
            assert sync == baseline, flags
            assert overlapped == baseline, flags


class TestPipelinedEngine:
    def test_scalar_fallback_matches_vectorized_merge(self):
        """``vectorize=False`` keeps the per-row split/merge loops; both
        paths must produce identical response frames."""
        config = megakv_coupled_config()
        batches = [list(b) for b in workload_batches(batches=2, size=128)]
        vec_store = ProcShardStore(8 << 20, 2048, 3)
        scalar_store = ProcShardStore(8 << 20, 2048, 3)
        try:
            vector = run_pipeline(
                vec_store, ProcShardEngine(vectorize=True), config, batches
            )
            scalar = run_pipeline(
                scalar_store, ProcShardEngine(vectorize=False), config, batches
            )
            assert vector == scalar
        finally:
            vec_store.close()
            scalar_store.close()

    def test_overlap_counters_and_inflight_cap(self):
        store = ProcShardStore(4 << 20, 2048, 2)
        engine = ProcShardEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        try:
            store.populate([(b"a", b"1"), (b"b", b"2")])
            planes = [
                BatchPlane(
                    [Query(QueryType.GET, b"a"), Query(QueryType.GET, b"b")]
                )
                for _ in range(3)
            ]
            tickets = [
                engine.submit(store, plan, plane, epoch=i)
                for i, plane in enumerate(planes)
            ]
            # The third submit forced the oldest window to complete: the
            # in-flight set never exceeds the double-buffer bound.
            assert tickets[0].done
            assert len(store._inflight) <= 2
            for ticket, plane in zip(tickets, planes):
                engine.collect(ticket)
                values = [r.value for r in plane.take_responses()]
                assert values == [b"1", b"2"]
            assert not store._inflight
            assert engine.windows_submitted == 3
            assert engine.windows_overlapped == 2
            assert engine.overlap_ratio == pytest.approx(2 / 3)
            # collect() is idempotent on a completed ticket.
            engine.collect(tickets[0])
        finally:
            store.close()

    def test_control_plane_round_trip_drains_inflight(self):
        """A facade round trip (stats refresh) must not consume a pending
        batch reply off the FIFO ring: it drains in-flight windows first."""
        store = ProcShardStore(4 << 20, 2048, 2)
        engine = ProcShardEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        try:
            store.populate([(b"a", b"1")])
            plane = BatchPlane([Query(QueryType.GET, b"a")])
            ticket = engine.submit(store, plan, plane, epoch=1)
            assert store._inflight
            assert len(store) == 1  # control-plane round trip
            assert ticket.done
            assert not store._inflight
            assert plane.take_responses()[0].value == b"1"
        finally:
            store.close()

    def test_pipeline_metrics_exported(self):
        """ISSUE tentpole: per-stage ring timers and overlap gauges land
        in the registry under their documented names."""
        telemetry = configure_telemetry(enabled=True)
        store = ProcShardStore(4 << 20, 2048, 2)
        engine = ProcShardEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        try:
            store.populate([(b"a", b"1")])
            planes = [
                BatchPlane([Query(QueryType.GET, b"a")]) for _ in range(2)
            ]
            tickets = [
                engine.submit(store, plan, p, epoch=i)
                for i, p in enumerate(planes)
            ]
            for ticket in tickets:
                engine.collect(ticket)
            snapshot = telemetry.registry.snapshot()
            for name in (
                "repro_procshard_encode_ns",
                "repro_procshard_send_ns",
                "repro_procshard_wait_ns",
                "repro_procshard_decode_ns",
                "repro_procshard_scatter_ns",
                "repro_procshard_queue_depth_bytes",
                "repro_procshard_inflight_windows",
                "repro_procshard_overlap_ratio",
            ):
                assert name in snapshot, name
        finally:
            configure_telemetry(enabled=False)
            store.close()


class TestPipelinedCrash:
    def test_midflight_kill_fills_every_inflight_window(self):
        """ISSUE satellite: with two windows in flight against a dead
        worker, both collects fill the dead shard's rows with ERROR —
        no hang, and close() still unlinks every /dev/shm segment."""
        before = shm_segments()
        store = ProcShardStore(4 << 20, 2048, 2)
        engine = ProcShardEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        try:
            keys = [b"key-%d" % i for i in range(40)]
            store.populate([(k, b"v") for k in keys])
            dead = store.workers[0]
            os.kill(dead.process.pid, signal.SIGKILL)
            dead.process.join(timeout=5.0)
            planes, tickets = [], []
            for epoch in (1, 2):
                plane = BatchPlane([Query(QueryType.GET, k) for k in keys])
                tickets.append(engine.submit(store, plan, plane, epoch=epoch))
                planes.append(plane)
            start = time.monotonic()
            for ticket, plane in zip(tickets, planes):
                engine.collect(ticket)
                statuses = {r.status for r in plane.take_responses()}
                assert ResponseStatus.ERROR in statuses  # dead shard's rows
                assert ResponseStatus.OK in statuses  # live shard answered
            assert time.monotonic() - start < 30.0  # dead ring aborts fast
            assert store.ensure_workers() == [0]
        finally:
            store.close()
        assert shm_segments() <= before


# ------------------------------------------------------------------- server


class TestProcShardServer:
    def test_udp_serving_end_to_end(self):
        from repro.client import DidoClient
        from repro.server import DidoUDPServer

        # The pooled hypothesis fleets (~14 idle workers) poll their rings;
        # on a 1-core host they can starve the server past the client
        # timeout.  This is the last test that needs processes — drop them.
        _drain_pools()
        server = DidoUDPServer(
            ("127.0.0.1", 0), engine="procshard", shards=2,
            batch_size=64, coalesce_us=500,
        )
        before = shm_segments()
        # A procshard-backed system auto-enables double-buffered windows.
        assert server._pipeline_depth == 2
        with server:
            server.start()
            with DidoClient(server.address, timeout_s=5.0) as client:
                assert client.set(b"alpha", b"1")
                assert client.get(b"alpha") == b"1"
                assert client.get(b"missing") is None
                assert client.delete(b"alpha") is True
        # stop() closed the default-created system: workers gone, arenas
        # unlinked (the SIGTERM-drain path exercises the same close()).
        assert shm_segments() <= before

    def test_invalid_pipeline_depth_rejected(self):
        from repro.server import DidoUDPServer

        with pytest.raises(ConfigurationError):
            DidoUDPServer(("127.0.0.1", 0), pipeline_depth=0)
