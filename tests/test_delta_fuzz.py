"""Byte-identity fuzz: `--delta-index` on vs off across every backend.

The delta index is a pure write-absorption layer — responses must be
byte-identical whether it is attached or not.  Hypothesis drives random
GET/SET/DELETE streams through the functional pipeline per engine x heap
x shard count and asserts the framed responses match the delta-less
reference exactly, including with merges forced mid-stream and with a
tiny delta capacity overflowing into synchronous merges.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import ReferenceEngine, SerialEngine, ShardedEngine, VectorEngine
from repro.engine.procshard import ProcShardEngine, ProcShardStore
from repro.kv.protocol import Query, QueryType
from repro.kv.sharding import ShardedKVStore
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config

#: (op, key index, value index) triples; a small key pool maximises
#: collisions (re-sets, delete-then-set, get-after-delete) per stream.
op_streams = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=23),
            st.integers(min_value=0, max_value=500),
        ),
        min_size=1,
        max_size=40,
    ),
    min_size=1,
    max_size=6,
)

ENGINES = {
    "serial": lambda: SerialEngine(),
    "vector": lambda: VectorEngine(),
    "sharded": lambda: ShardedEngine(VectorEngine()),
}


def build_batches(raw):
    batches = []
    for raw_batch in raw:
        batch = []
        for op, key_idx, value_idx in raw_batch:
            key = b"fuzz-key-%02d" % key_idx
            if op == 0:
                batch.append(Query(QueryType.SET, key, b"val-%04d" % value_idx))
            elif op == 1:
                batch.append(Query(QueryType.GET, key))
            else:
                batch.append(Query(QueryType.DELETE, key))
        batches.append(batch)
    return batches


def run_stream(
    batches,
    engine=None,
    heap="slab",
    shards=1,
    delta=False,
    merge_threshold=None,
    capacity=None,
    force_every=None,
):
    if shards > 1:
        store = ShardedKVStore(8 << 20, 4096, shards, heap=heap, delta_index=delta)
        deltas = [s.delta_index for s in store.shards]
    else:
        store = KVStore(8 << 20, 4096, heap=heap, delta_index=delta)
        deltas = [store.delta_index]
    if delta:
        for d in deltas:
            if merge_threshold is not None:
                d.merge_threshold = merge_threshold
            if capacity is not None:
                d.capacity = capacity
    pipeline = FunctionalPipeline(store, engine=engine)
    config = megakv_coupled_config()
    frames = []
    for i, batch in enumerate(batches):
        result = pipeline.process_batch(config, batch)
        frames.append(b"".join(f.payload for f in result.frames))
        if force_every is not None and i % force_every == 0:
            store.maintenance(force=True)
    if isinstance(engine, ShardedEngine):
        engine.close()
    return frames


def reference_frames(batches):
    return run_stream(batches, engine=ReferenceEngine(), heap="slab")


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("heap", ["slab", "log"])
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(raw=op_streams)
def test_delta_matches_reference(engine_name, heap, raw):
    batches = build_batches(raw)
    expected = reference_frames(batches)
    shards = 4 if engine_name == "sharded" else 1
    # barrier-paced merges (tiny threshold => several per stream)
    on = run_stream(
        batches,
        engine=ENGINES[engine_name](),
        heap=heap,
        shards=shards,
        delta=True,
        merge_threshold=8,
    )
    off = run_stream(
        batches, engine=ENGINES[engine_name](), heap=heap, shards=shards
    )
    assert off == expected
    assert on == expected


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(raw=op_streams)
def test_forced_merge_mid_stream_and_overflow(raw):
    batches = build_batches(raw)
    expected = reference_frames(batches)
    # idle-tick merges forced after every batch
    forced = run_stream(
        batches,
        engine=VectorEngine(),
        heap="log",
        delta=True,
        merge_threshold=1 << 30,
        force_every=1,
    )
    assert forced == expected
    # overflow: capacity so small that absorbs merge synchronously
    overflow = run_stream(
        batches,
        engine=VectorEngine(),
        heap="log",
        delta=True,
        merge_threshold=1 << 30,
        capacity=4,
    )
    assert overflow == expected


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(raw=op_streams, shards=st.sampled_from([1, 4]))
def test_sharded_shard_counts_match(raw, shards):
    batches = build_batches(raw)
    expected = reference_frames(batches)
    frames = run_stream(
        batches,
        engine=ShardedEngine(VectorEngine()),
        heap="log",
        shards=shards,
        delta=True,
        merge_threshold=8,
    )
    assert frames == expected


def test_procshard_delta_matches_reference():
    """Deterministic (no hypothesis): worker processes are expensive."""
    raw = [
        [(0, i % 16, i) for i in range(48)],
        [(1, i % 16, 0) for i in range(32)] + [(2, i % 8, 0) for i in range(16)],
        [(0, (i * 3) % 16, 1000 + i) for i in range(48)],
        [(1, i % 24, 0) for i in range(48)],
    ]
    batches = build_batches(raw)
    expected = reference_frames(batches)
    store = ProcShardStore(8 << 20, 4096, 2, heap="log", delta_index=True)
    try:
        pipeline = FunctionalPipeline(store, engine=ProcShardEngine())
        config = megakv_coupled_config()
        frames = []
        for batch in batches:
            result = pipeline.process_batch(config, batch)
            frames.append(b"".join(f.payload for f in result.frames))
    finally:
        store.close()
    assert frames == expected
