"""Log-structured value arena: unit, equivalence, and regression coverage.

Four layers:

* :class:`repro.kv.logarena.LogValueArena` in isolation — bump-pointer
  allocation, tombstone accounting, jumbo segments, the columnar
  ``multi_allocate_kv`` fast path, and the two compaction phases (LRU
  segment victimisation, dead-space rewrite);
* :class:`KVStore` on the arena — maintenance-driven eviction with index
  cleanup, and the stale-mapping regression on a failed replace (both
  heaps);
* slab-vs-log equivalence — hypothesis GET/SET/DELETE fuzz plus the
  capacity-saturation parity property (both heaps stop a bulk load at the
  same item and agree on every stored value);
* the hot-path regression the arena exists to close — on a log heap a
  mid-batch SET can never evict a cache-served key, so the revalidation
  fallback (`HotPathState.revalidations`) must stay at zero under exactly
  the filler pressure that forces it on the slab.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    BatchPlane,
    ReferenceEngine,
    SerialEngine,
    ShardedEngine,
    VectorEngine,
    compile_stage_plan,
)
from repro.errors import CapacityError, ConfigurationError
from repro.kv.logarena import LogValueArena
from repro.kv.objects import KVObject
from repro.kv.protocol import Query, QueryType, ResponseStatus
from repro.kv.sharding import ShardedKVStore
from repro.kv.slab import SlabAllocator
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config

PLAN = compile_stage_plan(megakv_coupled_config())


# ------------------------------------------------------------- arena unit


class TestArenaBasics:
    def test_bump_allocation_round_trip(self):
        arena = LogValueArena(1 << 20, segment_bytes=1 << 12)
        loc_a, evicted = arena.allocate_kv(b"a", b"alpha")
        assert evicted is None
        loc_b, _ = arena.allocate_kv(b"b", b"beta")
        assert loc_b == loc_a + 1
        assert arena.get(loc_a).value == b"alpha"
        assert arena.get(loc_b).value == b"beta"
        assert loc_a in arena and loc_b in arena
        assert len(arena) == 2
        assert arena.num_segments == 1
        assert arena.live_bytes == len(b"a" b"alpha") + len(b"b" b"beta")
        assert arena.dead_bytes == 0

    def test_value_materialises_from_segment_bytes(self):
        arena = LogValueArena(1 << 20, segment_bytes=1 << 12)
        location, _ = arena.allocate_kv(b"k", b"payload")
        record = arena.get(location)
        record._value = None  # drop the write-path cache
        assert record.value == b"payload"

    def test_tombstone_keeps_bytes_until_compaction(self):
        arena = LogValueArena(1 << 20, segment_bytes=1 << 12)
        location, _ = arena.allocate_kv(b"k", b"vvvv")
        claimed = arena.claimed_bytes
        record = arena.free(location)
        assert location not in arena
        assert arena.live_bytes == 0
        assert arena.dead_bytes == len(b"k" b"vvvv")
        # Accounting-only: the segment (and the bytes) are still there.
        assert arena.claimed_bytes == claimed
        record._value = None
        assert record.value == b"vvvv"
        assert arena.stats.frees == 1

    def test_free_unknown_location_raises(self):
        arena = LogValueArena(1 << 20)
        with pytest.raises(CapacityError):
            arena.free(17)

    def test_jumbo_value_gets_dedicated_segment(self):
        arena = LogValueArena(1 << 20, segment_bytes=64)
        small, _ = arena.allocate_kv(b"s", b"x" * 10)
        jumbo, _ = arena.allocate_kv(b"j", b"y" * 200)
        assert arena.num_segments == 2
        assert arena.get(jumbo).value == b"y" * 200
        # The open head is unaffected: the next small value appends to it.
        after, _ = arena.allocate_kv(b"t", b"z" * 10)
        assert arena.get(small).segment is arena.get(after).segment
        assert arena.num_segments == 2

    def test_oversize_allocation_raises(self):
        arena = LogValueArena(1 << 10)
        with pytest.raises(CapacityError):
            arena.allocate_kv(b"k", b"x" * (1 << 11))
        assert arena.stats.failed_allocations == 1
        assert len(arena) == 0 and arena.live_bytes == 0

    def test_kvobject_shim(self):
        arena = LogValueArena(1 << 20)
        location, evicted = arena.allocate(KVObject(b"k", b"v"))
        assert evicted is None
        assert arena.get(location).value == b"v"

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LogValueArena(0)
        with pytest.raises(ConfigurationError):
            LogValueArena(1 << 20, segment_bytes=0)

    def test_record_access_matches_kvobject_semantics(self):
        arena = LogValueArena(1 << 20)
        location, _ = arena.allocate_kv(b"k", b"v")
        record = arena.get(location)
        obj = KVObject(b"k", b"v")
        for epoch, count in [(1, 1), (1, 3), (2, 2), (2, 1)]:
            assert record.record_access(epoch, count) == obj.record_access(
                epoch, count
            )
        assert record.signature == obj.signature
        assert record.size_bytes == obj.size_bytes


class TestMultiAllocate:
    def test_matches_scalar_loop(self):
        items = [(b"key-%03d" % i, bytes([i]) * (i % 37)) for i in range(100)]
        bulk = LogValueArena(1 << 20, segment_bytes=256)
        scalar = LogValueArena(1 << 20, segment_bytes=256)
        locations = bulk.multi_allocate_kv(
            [k for k, _ in items], [v for _, v in items]
        )
        expected = [scalar.allocate_kv(k, v)[0] for k, v in items]
        assert locations == expected
        for (key, value), location in zip(items, locations):
            record = bulk.get(location)
            assert record.key == key
            record._value = None
            assert record.value == value
        assert bulk.live_bytes == scalar.live_bytes
        assert bulk.stats.allocations == scalar.stats.allocations == 100

    def test_run_spans_segments(self):
        arena = LogValueArena(1 << 20, segment_bytes=100)
        values = [b"x" * 40] * 10  # 2 per segment, 5 segments
        arena.multi_allocate_kv([b"k%d" % i for i in range(10)], values)
        assert arena.num_segments == 5

    def test_jumbo_and_empty_values_inline(self):
        arena = LogValueArena(1 << 20, segment_bytes=64)
        keys = [b"a", b"b", b"c", b"d"]
        values = [b"", b"x" * 200, b"y" * 10, b""]
        locations = arena.multi_allocate_kv(keys, values)
        for key, value, location in zip(keys, values, locations):
            record = arena.get(location)
            assert record.key == key
            record._value = None
            assert record.value == value

    def test_oversize_item_fails_at_position_with_prefix_applied(self):
        arena = LogValueArena(1 << 10, segment_bytes=256)
        keys = [b"a", b"b", b"c"]
        values = [b"x" * 8, b"y" * (1 << 11), b"z" * 8]
        with pytest.raises(CapacityError):
            arena.multi_allocate_kv(keys, values)
        # The earlier item is applied; the failed and later ones are not.
        assert len(arena) == 1
        (record,) = arena.objects()
        assert record.key == b"a"
        assert arena.live_bytes == len(b"a") + 8
        # The arena stays consistent for further allocation.
        location, _ = arena.allocate_kv(b"d", b"w" * 8)
        assert arena.get(location).value == b"w" * 8


class TestCompaction:
    def test_rewrite_reclaims_dead_space(self):
        arena = LogValueArena(1 << 20, segment_bytes=256)
        # 4 values of 64 B fill segment 0 exactly; 4 more open segment 1.
        locations = arena.multi_allocate_kv(
            [b"k%d" % i for i in range(8)], [bytes([i]) * 64 for i in range(8)]
        )
        assert arena.num_segments == 2
        arena.free(locations[0])
        arena.free(locations[1])  # segment 0 now 50% dead (>= 25%)
        claimed = arena.claimed_bytes
        evicted = arena.compact()
        assert evicted == []  # rewrite is not eviction
        assert arena.dead_bytes == 0
        assert arena.claimed_bytes <= claimed
        assert arena.stats.relocations == 2
        assert arena.stats.segments_dropped == 1
        assert arena.stats.compactions == 1
        # Survivors keep their locations and bytes through the move.
        for i in (2, 3, 4, 5, 6, 7):
            record = arena.get(locations[i])
            record._value = None
            assert record.value == bytes([i]) * 64

    def test_lightly_dead_segments_left_alone(self):
        arena = LogValueArena(1 << 20, segment_bytes=1 << 12)
        locations = arena.multi_allocate_kv(
            [b"key-%03d" % i for i in range(32)], [b"x" * 64] * 32
        )
        arena.free(locations[0])  # ~3% dead: below the rewrite threshold
        assert arena.compact() == []
        assert arena.stats.relocations == 0
        assert arena.dead_bytes > 0

    def test_lru_victimisation_settles_budget(self):
        arena = LogValueArena(1024, segment_bytes=256)
        # 64 B accounted per record (8 B key + 56 B value), 4 per segment:
        # 20 records = 5 segments, 1280 live bytes against a 1024 budget.
        locations = arena.multi_allocate_kv(
            [b"key-%03d" % i for i in range(20)], [b"v" * 56] * 20
        )
        # Touch everything but segment 0's records, making it the LRU.
        for location in locations[4:]:
            arena.get(location)
        evicted = arena.compact()
        assert {loc for loc, _ in evicted} == set(locations[:4])
        assert arena.live_bytes <= arena.budget_bytes
        assert arena.stats.evictions == 4
        assert arena.stats.compactions == 1
        for location in locations[:4]:
            assert arena.get(location) is None
        for location in locations[4:]:
            assert arena.get(location) is not None
        # Evicted records keep their payloads for the caller's bookkeeping.
        for _loc, record in evicted:
            assert record.value == b"v" * 56

    def test_needs_maintenance_gate(self):
        arena = LogValueArena(1024, segment_bytes=256)
        assert not arena.needs_maintenance
        locations = arena.multi_allocate_kv(
            [b"key-%03d" % i for i in range(20)], [b"v" * 56] * 20
        )
        assert arena.needs_maintenance  # over budget
        arena.compact()
        assert not arena.needs_maintenance
        # Dead bytes alone re-arm the gate once past the trigger.
        for location in locations[4:]:
            if location in arena:
                arena.free(location)
        assert arena.needs_maintenance


# ----------------------------------------------------------- store on log


class TestStoreOnLogArena:
    def test_set_get_delete_replace(self):
        store = KVStore(1 << 20, 1024)  # log arena is the default heap
        assert isinstance(store.heap, LogValueArena)
        outcome = store.set(b"k", b"v1")
        assert outcome.evicted is None and outcome.replaced is None
        assert store.get(b"k") == b"v1"
        outcome = store.set(b"k", b"v2")
        assert outcome.evicted is None
        assert outcome.replaced is not None
        assert outcome.index_deletes == 1
        assert store.get(b"k") == b"v2"
        assert store.delete(b"k") is True
        assert store.get(b"k") is None

    def test_invalid_heap_name_rejected(self):
        with pytest.raises(ConfigurationError):
            KVStore(1 << 20, 1024, heap="arena")

    def test_heap_instance_passes_through(self):
        arena = LogValueArena(1 << 16, segment_bytes=1 << 12)
        store = KVStore(1 << 20, 1024, heap=arena)
        assert store.heap is arena

    def test_maintenance_evicts_and_cleans_index(self):
        store = KVStore(
            1 << 20, 4096, heap=LogValueArena(1 << 16, segment_bytes=1 << 12)
        )
        keys = [b"key-%04d" % i for i in range(700)]
        for key in keys:
            store.set(key, b"x" * 100)  # 106 B accounted: ~72 KiB live
        assert store.needs_maintenance
        deletes_before = store.index.stats.deletes
        evictions = store.maintenance()
        assert evictions > 0
        assert store.heap.live_bytes <= store.heap.budget_bytes
        # One index Delete per evicted record (the paper's SET pairing,
        # settled at the barrier), and every eviction fully unmapped.
        assert store.index.stats.deletes - deletes_before == evictions
        hits = 0
        for key in keys:
            value = store.get(key)
            if value is None:
                assert key not in store._key_location
            else:
                assert value == b"x" * 100
                hits += 1
        assert hits == 700 - evictions

    def test_maintenance_noop_on_slab(self):
        store = KVStore(1 << 20, 1024, heap="slab")
        assert not store.needs_maintenance
        assert store.maintenance(force=True) == 0

    def test_populate_stops_at_index_capacity_on_log(self):
        store = KVStore(1 << 20, 64)
        items = [(b"key-%08d" % i, b"x" * 8) for i in range(10000)]
        stored = store.populate(items)
        assert 0 < stored < 10000


class TestStaleMappingRegression:
    @pytest.mark.parametrize("heap", ["slab", "log"])
    def test_failed_replace_drops_mapping(self, heap):
        store = KVStore(memory_bytes=1 << 20, expected_objects=256, heap=heap)
        store.set(b"k", b"small")
        with pytest.raises(CapacityError):
            store.set(b"k", b"x" * (2 << 20))  # exceeds the whole budget
        # The old version was freed before the allocation failed: every
        # reference must be gone, not left dangling at a freed location.
        assert b"k" not in store._key_location
        assert store.key_compare(b"k", store.index_search(b"k")) is None
        assert store.get(b"k") is None
        # And the store still works for that key afterwards.
        store.set(b"k", b"fresh")
        assert store.get(b"k") == b"fresh"


class TestSlabGrowPath:
    def test_full_class_grows_without_eviction(self):
        slab = SlabAllocator(2 << 20, min_chunk=1 << 16)
        objs = [KVObject(b"k%02d" % i, b"x" * 60000) for i in range(17)]
        for obj in objs[:16]:  # exactly one page of 64 KiB chunks
            slab.allocate(obj)
        assert slab.claimed_bytes == 1 << 20
        location, evicted = slab.allocate(objs[16])
        # The class was full but the budget was not: the class grows a page
        # and the allocation lands with no eviction.
        assert evicted is None
        assert slab.stats.evictions == 0
        assert slab.claimed_bytes == 2 << 20
        assert slab.get(location, touch=False) is objs[16]


# -------------------------------------------------- slab-vs-log equivalence


OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "get", "delete"]),
        st.integers(0, 15),
        st.binary(max_size=64),
    ),
    max_size=120,
)


class TestHeapEquivalence:
    @given(ops=OPS)
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_get_set_delete_fuzz(self, ops):
        """With no capacity pressure the two heaps are indistinguishable.

        8 MiB funds a slab page for every size class the 0-64 B values
        can touch, so neither heap ever evicts or rejects.
        """
        slab_store = KVStore(8 << 20, 1024, heap="slab")
        log_store = KVStore(8 << 20, 1024, heap="log")
        for op, kid, value in ops:
            key = b"key-%02d" % kid
            if op == "set":
                s = slab_store.set(key, value)
                l = log_store.set(key, value)
                assert (s.replaced is None) == (l.replaced is None)
                assert s.evicted is None and l.evicted is None
            elif op == "get":
                assert slab_store.get(key) == log_store.get(key)
            else:
                assert slab_store.delete(key) == log_store.delete(key)
        # Compaction must not change observable state either.
        log_store.heap.compact()
        for kid in range(16):
            key = b"key-%02d" % kid
            assert slab_store.get(key) == log_store.get(key)
        assert len(slab_store) == len(log_store)

    @given(data=st.data())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_capacity_saturation_parity(self, data):
        """Both heaps stop a bulk load at the same item under saturation.

        Small items all land in the 32 B slab class (8 B key + 9-20 B
        value), far below its chunk count, so neither heap evicts; the
        poison item exceeds the whole 1 MiB budget, so the slab (its class
        full-and-empty after the one affordable page went to the small
        class) and the log (object bigger than the budget) must both
        raise at exactly its position.
        """
        n = data.draw(st.integers(2, 120))
        poison_at = data.draw(st.integers(1, n - 1))
        vlens = data.draw(
            st.lists(st.integers(9, 20), min_size=n, max_size=n)
        )
        items = [(b"key-%04d" % i, b"x" * vlens[i]) for i in range(n)]
        items[poison_at] = (b"poison", b"x" * (2 << 20))
        slab_store = KVStore(1 << 20, 4096, heap="slab")
        log_store = KVStore(1 << 20, 4096, heap="log")
        assert slab_store.populate(items) == poison_at
        assert log_store.populate(items) == poison_at
        for key, value in items[:poison_at]:
            assert slab_store.get(key) == value
            assert log_store.get(key) == value
        assert slab_store.get(b"poison") is None
        assert log_store.get(b"poison") is None
        assert len(slab_store) == len(log_store) == poison_at

    def test_bulk_set_columns_saturation_parity(self):
        keys = [b"key-%04d" % i for i in range(64)]
        values = [b"x" * 8] * 64
        values[40] = b"x" * (2 << 20)
        slab_store = KVStore(1 << 20, 4096, heap="slab")
        log_store = KVStore(1 << 20, 4096, heap="log")
        assert slab_store.bulk_set_columns(keys, values) == 40
        assert log_store.bulk_set_columns(keys, values) == 40
        for key in keys[:40]:
            assert slab_store.get(key) == log_store.get(key) == b"x" * 8


# ------------------------------------------- hot-path regression on log


def run_batch(engine, store, queries):
    """One batch through ``engine``; returns (plane, (status, value) rows)."""
    plane = BatchPlane(list(queries))
    engine.run(store, PLAN, plane)
    return plane, [(r.status, r.value) for r in plane.take_responses()]


class TestReassignFusionThroughEngines:
    """Replace-heavy batches on the log arena settle each SET's
    Insert+Delete pair as one in-place slot rewrite at MM time
    (``CuckooHashTable.reassign_prehashed``); results must stay identical
    to the scalar reference path, which never fuses."""

    @pytest.mark.parametrize("engine_cls", [SerialEngine, VectorEngine])
    def test_replaces_settle_in_place_with_identical_results(self, engine_cls):
        store = KVStore(8 << 20, 4096)
        reference = KVStore(8 << 20, 4096, heap="slab")
        keys = [f"key-{i:04d}".encode() for i in range(256)]
        for s in (store, reference):
            s.populate([(k, b"seed") for k in keys])
        assert store.index.stats.reassigns == 0
        batch = [
            Query(QueryType.SET, k, b"v2-%s" % k) for k in keys
        ] + [Query(QueryType.GET, k) for k in keys]
        _, rows = run_batch(engine_cls(), store, batch)
        _, ref_rows = run_batch(ReferenceEngine(), reference, batch)
        assert rows == ref_rows
        # Every SET replaced a prefilled key whose entry was live, so the
        # whole batch's index writes were fused reassigns.
        assert store.index.stats.reassigns == len(keys)
        assert reference.index.stats.reassigns == 0

    def test_fresh_keys_do_not_fuse(self):
        store = KVStore(8 << 20, 4096)
        batch = [Query(QueryType.SET, f"new-{i}".encode(), b"v") for i in range(64)]
        _, rows = run_batch(VectorEngine(), store, batch)
        assert all(status is ResponseStatus.STORED for status, _ in rows)
        assert store.index.stats.reassigns == 0
        assert all(store.get(f"new-{i}".encode()) == b"v" for i in range(64))

    def test_in_batch_duplicate_then_delete_stays_consistent(self):
        """A SET whose old version is still pending in the same batch falls
        back to the queued pair; a trailing DELETE leaves no trace."""
        store = KVStore(8 << 20, 4096)
        reference = KVStore(8 << 20, 4096, heap="slab")
        batch = [
            Query(QueryType.SET, b"dup", b"v1"),
            Query(QueryType.SET, b"dup", b"v2"),
            Query(QueryType.GET, b"dup"),
            Query(QueryType.DELETE, b"dup"),
            Query(QueryType.GET, b"dup"),
        ]
        _, rows = run_batch(VectorEngine(), store, batch)
        _, ref_rows = run_batch(ReferenceEngine(), reference, batch)
        assert rows == ref_rows
        assert store.get(b"dup") is None
        candidates, _ = store.index.search(b"dup")
        assert candidates == []


class TestNoRevalidationOnLogArena:
    """The filler pressure that forces mid-batch revalidation on the slab
    (see ``tests/test_hotpath.py::TestStaleReadRegression``) must never
    trigger it on the log arena: allocation there cannot evict, so a
    cache-served key stays valid across every write barrier in the batch.
    """

    @pytest.mark.parametrize(
        "engine_factory",
        [lambda: SerialEngine(dedup=True), lambda: VectorEngine(dedup=True)],
        ids=["serial", "vector"],
    )
    def test_mid_batch_writes_never_stale_served_groups(self, engine_factory):
        store = KVStore(memory_bytes=1 << 20, expected_objects=1 << 12)
        store.attach_hot_cache(64)
        engine = engine_factory()
        value = b"v" * 8000
        victim = b"victim-00000"
        run_batch(engine, store, [Query(QueryType.SET, victim, value)])
        plane, warm = run_batch(engine, store, [Query(QueryType.GET, victim)] * 4)
        assert all(row == (ResponseStatus.OK, value) for row in warm)
        assert store.hot_cache.lookup(victim) == value
        revalidations = plane.hotpath.revalidations if plane.hotpath else 0
        for i in range(200):  # same pressure that slab-evicts the victim
            batch = [Query(QueryType.SET, b"filler-%05d" % i, value)]
            batch += [Query(QueryType.GET, victim)] * 4
            plane, rows = run_batch(engine, store, batch)
            assert all(row == (ResponseStatus.OK, value) for row in rows[1:])
            assert victim in store._key_location
            assert plane.hotpath is not None
            revalidations += plane.hotpath.revalidations
        assert revalidations == 0

    def test_sharded_merge_never_revalidates(self):
        from repro.kv.sharding import shard_of

        store = ShardedKVStore(2 << 20, 8192, 2)  # log heap per shard
        store.attach_hot_cache(128)
        engine = ShardedEngine(VectorEngine(dedup=True), dedup=True)
        value = b"v" * 8000
        victim = b"victim-00000"
        vshard = shard_of(victim, 2)
        fillers = [
            k
            for k in (b"filler-%05d" % i for i in range(400))
            if shard_of(k, 2) == vshard
        ]
        run_batch(engine, store, [Query(QueryType.SET, victim, value)])
        for _ in range(2):  # admit, then serve from the shard cache
            run_batch(engine, store, [Query(QueryType.GET, victim)] * 4)
        assert store.shards[vshard].hot_cache.lookup(victim) == value
        revalidations = 0
        for filler in fillers:
            batch = [Query(QueryType.SET, filler, value)]
            batch += [Query(QueryType.GET, victim)] * 4
            plane, rows = run_batch(engine, store, batch)
            assert all(row == (ResponseStatus.OK, value) for row in rows[1:])
            assert victim in store.shards[vshard]._key_location
            if plane.hotpath is not None:
                revalidations += plane.hotpath.revalidations
        assert revalidations == 0


class TestEvictionThroughPipelineOnLog:
    def test_barrier_eviction_generates_correct_responses(self):
        """Overfilling a log-heap store through the pipeline settles at
        batch barriers: evicted keys read back NOT_FOUND, survivors keep
        their bytes, and the arena ends within budget."""
        store = KVStore(
            1 << 20,
            70000,
            heap=LogValueArena(1 << 20, segment_bytes=1 << 16),
        )
        pipeline = FunctionalPipeline(store)
        config = megakv_coupled_config()
        keys = [b"key-%06d" % i for i in range(40_000)]
        for start in range(0, len(keys), 1000):
            batch = [
                Query(QueryType.SET, k, b"x" * 24)
                for k in keys[start : start + 1000]
            ]
            result = pipeline.process_batch(config, batch)
            assert all(
                r.status is ResponseStatus.STORED for r in result.responses
            )
        assert store.heap.stats.evictions > 0
        assert store.heap.live_bytes <= store.heap.budget_bytes
        hits = 0
        for start in range(0, len(keys), 1000):
            batch = [Query(QueryType.GET, k) for k in keys[start : start + 1000]]
            result = pipeline.process_batch(config, batch)
            for response in result.responses:
                if response.status is ResponseStatus.OK:
                    assert response.value == b"x" * 24
                    hits += 1
                else:
                    assert response.status is ResponseStatus.NOT_FOUND
        assert 0 < hits < len(keys)
