"""Unit tests for the binary wire protocol."""

import pytest

from repro.errors import ProtocolError
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_queries,
    decode_responses,
    encode_queries,
    encode_responses,
)


class TestQueryValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError):
            Query(QueryType.GET, b"")

    def test_get_with_value_rejected(self):
        with pytest.raises(ProtocolError):
            Query(QueryType.GET, b"k", b"value")

    def test_delete_with_value_rejected(self):
        with pytest.raises(ProtocolError):
            Query(QueryType.DELETE, b"k", b"value")

    def test_set_carries_value(self):
        q = Query(QueryType.SET, b"k", b"v")
        assert q.value == b"v"

    def test_wire_size(self):
        q = Query(QueryType.SET, b"key", b"value")
        assert q.wire_size == 7 + 3 + 5


class TestQueryRoundTrip:
    def test_single_get(self):
        out = decode_queries(encode_queries([Query(QueryType.GET, b"k1")]))
        assert len(out) == 1
        assert out[0].qtype is QueryType.GET
        assert out[0].key == b"k1"

    def test_mixed_batch(self):
        batch = [
            Query(QueryType.GET, b"a"),
            Query(QueryType.SET, b"b", b"valueB"),
            Query(QueryType.DELETE, b"c"),
            Query(QueryType.SET, b"d", b""),
        ]
        out = decode_queries(encode_queries(batch))
        assert [q.qtype for q in out] == [q.qtype for q in batch]
        assert [q.key for q in out] == [q.key for q in batch]
        assert [q.value for q in out] == [q.value for q in batch]

    def test_binary_payloads(self):
        value = bytes(range(256)) * 3
        out = decode_queries(encode_queries([Query(QueryType.SET, b"\x00\xffk", value)]))
        assert out[0].value == value

    def test_empty_batch(self):
        assert decode_queries(encode_queries([])) == []


class TestQueryDecodingErrors:
    def test_truncated_header(self):
        with pytest.raises(ProtocolError):
            decode_queries(b"\x01\x00")

    def test_truncated_body(self):
        payload = encode_queries([Query(QueryType.SET, b"key", b"value")])
        with pytest.raises(ProtocolError):
            decode_queries(payload[:-2])

    def test_unknown_opcode(self):
        payload = bytearray(encode_queries([Query(QueryType.GET, b"key")]))
        payload[0] = 99
        with pytest.raises(ProtocolError):
            decode_queries(bytes(payload))


class TestResponseRoundTrip:
    def test_ok_with_value(self):
        out = decode_responses(encode_responses([Response(ResponseStatus.OK, b"data")]))
        assert out[0].status is ResponseStatus.OK
        assert out[0].value == b"data"

    def test_all_statuses(self):
        batch = [Response(status) for status in ResponseStatus]
        out = decode_responses(encode_responses(batch))
        assert [r.status for r in out] == list(ResponseStatus)

    def test_wire_size(self):
        r = Response(ResponseStatus.OK, b"12345")
        assert r.wire_size == 5 + 5

    def test_truncated_response(self):
        payload = encode_responses([Response(ResponseStatus.OK, b"data")])
        with pytest.raises(ProtocolError):
            decode_responses(payload[:-1])

    def test_unknown_status(self):
        payload = bytearray(encode_responses([Response(ResponseStatus.OK)]))
        payload[0] = 200
        with pytest.raises(ProtocolError):
            decode_responses(bytes(payload))
