"""Unit tests for the consistent-hash ring and the DIDO fleet."""

import pytest

from repro.cluster.fleet import KVCluster
from repro.cluster.ring import HashRing
from repro.errors import ConfigurationError
from repro.kv.protocol import Query, QueryType, ResponseStatus
from repro.workloads.ycsb import QueryStream, standard_workload


class TestHashRing:
    def make(self, names=("a", "b", "c")):
        ring = HashRing()
        for name in names:
            ring.add_node(name)
        return ring

    def test_routing_deterministic(self):
        ring = self.make()
        assert ring.node_for(b"key-1") == ring.node_for(b"key-1")

    def test_all_nodes_receive_keys(self):
        ring = self.make()
        owners = {ring.node_for(f"key-{i}".encode()) for i in range(2000)}
        assert owners == {"a", "b", "c"}

    def test_balance_roughly_even(self):
        ring = self.make()
        shares = ring.ownership_share(samples=6000)
        for share in shares.values():
            assert 0.15 < share < 0.55

    def test_removal_only_moves_victims_keys(self):
        """Consistent hashing: keys owned by surviving nodes do not move."""
        ring = self.make()
        before = {f"key-{i}".encode(): ring.node_for(f"key-{i}".encode()) for i in range(3000)}
        ring.remove_node("b")
        moved_from_survivor = 0
        for key, owner in before.items():
            new_owner = ring.node_for(key)
            if owner != "b" and new_owner != owner:
                moved_from_survivor += 1
        assert moved_from_survivor == 0

    def test_removed_nodes_keys_redistributed(self):
        ring = self.make()
        victim_keys = [
            f"key-{i}".encode()
            for i in range(3000)
            if ring.node_for(f"key-{i}".encode()) == "b"
        ]
        assert victim_keys
        ring.remove_node("b")
        new_owners = {ring.node_for(k) for k in victim_keys}
        assert new_owners <= {"a", "c"}
        assert len(new_owners) >= 1

    def test_duplicate_add_rejected(self):
        ring = self.make()
        with pytest.raises(ConfigurationError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().remove_node("zz")

    def test_empty_ring_rejects_routing(self):
        with pytest.raises(ConfigurationError):
            HashRing().node_for(b"k")

    def test_len(self):
        assert len(self.make()) == 3


class TestKVCluster:
    @pytest.fixture
    def cluster(self):
        return KVCluster(
            ["n1", "n2", "n3"], node_memory_bytes=8 << 20, expected_objects=4096
        )

    def test_round_trip_across_nodes(self, cluster):
        sets = [Query(QueryType.SET, f"key-{i}".encode(), f"v{i}".encode()) for i in range(60)]
        responses = cluster.process(sets)
        assert all(r.status is ResponseStatus.STORED for r in responses)
        gets = [Query(QueryType.GET, f"key-{i}".encode()) for i in range(60)]
        responses = cluster.process(gets)
        for i, response in enumerate(responses):
            assert response.value == f"v{i}".encode()

    def test_responses_keep_input_order(self, cluster):
        batch = [Query(QueryType.SET, f"k{i}".encode(), str(i).encode()) for i in range(40)]
        cluster.process(batch)
        gets = [Query(QueryType.GET, f"k{i}".encode()) for i in range(40)]
        values = [r.value for r in cluster.process(gets)]
        assert values == [str(i).encode() for i in range(40)]

    def test_routing_partitions_batch(self, cluster):
        batch = [Query(QueryType.GET, f"key-{i}".encode()) for i in range(300)]
        routed = cluster.route(batch)
        total = sum(len(v) for v in routed.values())
        assert total == 300
        assert len(routed) == 3

    def test_failover_redistributes(self, cluster):
        stream = QueryStream(standard_workload("K16-G95-U"), num_keys=3000, seed=2)
        cluster.process(stream.next_batch(900))
        victim = "n2"
        before = {s.name: s.queries for s in cluster.stats()}
        cluster.fail_node(victim)
        assert victim not in cluster.nodes
        cluster.process(stream.next_batch(900))
        after = {s.name: s.queries for s in cluster.stats()}
        # Survivors absorbed more traffic than before.
        for name in after:
            assert after[name] > before[name]

    def test_failed_nodes_data_lost(self, cluster):
        cluster.process([Query(QueryType.SET, b"somekey", b"val")])
        owner = cluster.ring.node_for(b"somekey")
        cluster.fail_node(owner)
        response = cluster.process([Query(QueryType.GET, b"somekey")])[0]
        assert response.status is ResponseStatus.NOT_FOUND

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            KVCluster([])
        with pytest.raises(ConfigurationError):
            KVCluster(["x", "x"])

    def test_fail_unknown_node(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.fail_node("nope")
