"""Unit tests for the cost model / pipeline analyzer (Equations 1-4)."""

import pytest

from repro.core.cost_model import (
    DETAILED_FIDELITY,
    IDEAL_FIDELITY,
    MIN_BATCH,
    CostModel,
    PipelineAnalyzer,
)
from repro.core.tasks import IndexOp
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV
from repro.pipeline.megakv import megakv_coupled_config

from conftest import profile_for


@pytest.fixture(scope="module")
def cm():
    return CostModel(APU_A10_7850K)


@pytest.fixture(scope="module")
def megakv():
    return megakv_coupled_config()


class TestEstimateBasics:
    def test_estimate_structure(self, cm, megakv):
        est = cm.estimate(megakv, profile_for("K16-G95-S"))
        assert est.batch_size >= MIN_BATCH
        assert len(est.stage_times_ns) == 3
        assert est.throughput_mops > 0
        assert 0.0 < est.cpu_utilization <= 1.0
        assert 0.0 < est.gpu_utilization <= 1.0

    def test_throughput_is_batch_over_tmax(self, cm, megakv):
        est = cm.estimate(megakv, profile_for("K16-G95-S"))
        assert est.throughput_mops == pytest.approx(
            est.batch_size / est.tmax_ns * 1000.0
        )

    def test_tmax_within_interval(self, cm, megakv):
        budget = 1_000_000.0
        est = cm.estimate(megakv, profile_for("K16-G95-S"), budget)
        assert est.tmax_ns <= cm.interval_ns(megakv, budget) * 1.001

    def test_latency_within_budget(self, cm, megakv):
        budget = 1_000_000.0
        est = cm.estimate(megakv, profile_for("K8-G95-U"), budget)
        assert est.latency_ns <= budget * 1.01

    def test_smaller_budget_smaller_batch(self, cm, megakv):
        profile = profile_for("K16-G95-S")
        large = cm.estimate(megakv, profile, 1_000_000.0)
        small = cm.estimate(megakv, profile, 600_000.0)
        assert small.batch_size < large.batch_size

    def test_interval_matches_paper_300us(self, cm, megakv):
        """3-stage pipeline at 1,000 us budget -> ~300 us per stage."""
        interval = cm.interval_ns(megakv, 1_000_000.0)
        assert interval == pytest.approx(300_000.0, rel=0.01)

    def test_index_op_times_reported(self, cm, megakv):
        est = cm.estimate(megakv, profile_for("K8-G95-S"))
        assert set(est.index_op_times_ns) == set(IndexOp)
        assert est.index_op_times_ns[IndexOp.SEARCH] > 0


class TestWorkloadSensitivity:
    def test_larger_values_lower_throughput(self, cm, megakv):
        small = cm.estimate(megakv, profile_for("K8-G95-S"))
        large = cm.estimate(megakv, profile_for("K128-G95-S"))
        assert large.throughput_mops < small.throughput_mops

    def test_skew_helps_cpu_bound_stages(self, cm, megakv):
        uniform = cm.estimate(megakv, profile_for("K8-G95-U"))
        skewed = cm.estimate(megakv, profile_for("K8-G95-S"))
        assert skewed.throughput_mops > uniform.throughput_mops

    def test_sets_cost_more_than_gets(self, cm, megakv):
        read_heavy = cm.estimate(megakv, profile_for("K16-G100-U"))
        write_heavy = cm.estimate(megakv, profile_for("K16-G50-U"))
        assert write_heavy.throughput_mops < read_heavy.throughput_mops


class TestInsertDeletePenalty:
    def test_small_insert_batches_disproportionate(self, cm, megakv):
        """Figure 6: ~5 % of ops (Insert+Delete) consume a large share of
        GPU time under a read-dominant workload."""
        est = cm.estimate(megakv, profile_for("K8-G95-S"))
        times = est.index_op_times_ns
        id_share = (times[IndexOp.INSERT] + times[IndexOp.DELETE]) / sum(times.values())
        assert id_share > 0.30  # vs a 10 % op share


class TestWorkStealing:
    def test_stealing_never_hurts(self, cm):
        profile = profile_for("K8-G95-U")
        base = megakv_coupled_config().with_work_stealing(False)
        stealing = base.with_work_stealing(True)
        t_off = cm.estimate(base, profile).throughput_mops
        t_on = cm.estimate(stealing, profile).throughput_mops
        assert t_on >= t_off * 0.999

    def test_steal_plan_reported(self, cm):
        config = megakv_coupled_config().with_work_stealing(True)
        est = cm.estimate(config, profile_for("K8-G95-U"))
        if est.steal is not None:
            assert 0.0 <= est.steal.stolen_fraction <= 1.0
            assert est.steal.new_tmax_ns <= max(est.stage_times_ns)


class TestFidelityGap:
    def test_fidelities_differ_but_agree_broadly(self, megakv):
        """The simulator includes effects the planner idealises away, so the
        two disagree (Figure 9's error exists) but stay within the same
        ballpark (the model is usable)."""
        ideal = PipelineAnalyzer(APU_A10_7850K, IDEAL_FIDELITY)
        detailed = PipelineAnalyzer(APU_A10_7850K, DETAILED_FIDELITY)
        diffs = []
        for label in ("K8-G95-U", "K16-G95-S", "K32-G100-S", "K128-G50-U"):
            profile = profile_for(label)
            t_ideal = ideal.estimate(megakv, profile).throughput_mops
            t_detail = detailed.estimate(megakv, profile).throughput_mops
            diffs.append(abs(t_detail - t_ideal) / t_detail)
        assert max(diffs) < 0.35  # same ballpark
        assert max(diffs) > 0.005  # but genuinely different models

    def test_error_within_paper_band(self, megakv):
        """Average error must stay in the paper's ballpark (<= ~15 %)."""
        ideal = PipelineAnalyzer(APU_A10_7850K, IDEAL_FIDELITY)
        detailed = PipelineAnalyzer(APU_A10_7850K, DETAILED_FIDELITY)
        errors = []
        for label in ("K8-G95-U", "K16-G95-S", "K32-G50-U", "K128-G100-S"):
            profile = profile_for(label)
            est = ideal.estimate(megakv, profile).throughput_mops
            meas = detailed.estimate(megakv, profile).throughput_mops
            errors.append(abs(meas - est) / meas)
        assert sum(errors) / len(errors) < 0.15

    def test_detailed_batch_is_wavefront_aligned(self, megakv):
        detailed = PipelineAnalyzer(APU_A10_7850K, DETAILED_FIDELITY)
        est = detailed.estimate(megakv, profile_for("K16-G95-S"))
        assert est.batch_size % 64 == 0


class TestDiscretePlatform:
    def test_pcie_makes_gpu_stage_pay(self):
        """The same pipeline on the discrete platform includes PCIe time in
        its GPU stage (per-kernel round trips)."""
        from repro.pipeline.megakv import megakv_discrete_config

        analyzer = PipelineAnalyzer(DISCRETE_MEGAKV, DETAILED_FIDELITY)
        est = analyzer.estimate(
            megakv_discrete_config(), profile_for("K8-G95-U")
        )
        assert est.throughput_mops > 0
        # Discrete hardware is far faster despite PCIe (paper Figure 16).
        apu = PipelineAnalyzer(APU_A10_7850K, DETAILED_FIDELITY)
        apu_est = apu.estimate(megakv_coupled_config(), profile_for("K8-G95-U"))
        assert est.throughput_mops > 2 * apu_est.throughput_mops


class TestTemplateCache:
    def test_cache_consistency(self, cm, megakv):
        """Repeated estimates hit the demand-template cache and agree."""
        profile = profile_for("K32-G95-S")
        first = cm.estimate(megakv, profile)
        second = cm.estimate(megakv, profile)
        assert first.throughput_mops == pytest.approx(second.throughput_mops)
        assert first.batch_size == second.batch_size

    def test_demands_scale_linearly(self, cm, megakv):
        profile = profile_for("K16-G95-S")
        d1 = cm.stage_demands(megakv, profile, 1000)
        d2 = cm.stage_demands(megakv, profile, 2000)
        for stage1, stage2 in zip(d1, d2):
            for a, b in zip(stage1, stage2):
                assert b.count == pytest.approx(2 * a.count)
                assert b.instructions == a.instructions
