"""Unit and integration tests for the repro.telemetry subsystem."""

import io
import json
import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    Telemetry,
    TraceEvent,
    configure,
    console_summary,
    export_jsonl,
    get_telemetry,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
    replan_event,
    span,
    stage_span,
    timed,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def live_telemetry():
    """Enable the process-wide hub for one test; always disable after."""
    telemetry = configure(enabled=True)
    yield telemetry
    configure(enabled=False)


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("queries_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labels_are_independent(self, registry):
        counter = registry.counter("claims_total")
        counter.inc(owner="gpu")
        counter.inc(2, owner="cpu")
        assert counter.value(owner="gpu") == 1
        assert counter.value(owner="cpu") == 2
        assert counter.value(owner="npu") == 0

    def test_counters_only_go_up(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("c").inc(-1)

    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("c")
        with pytest.raises(TelemetryError):
            registry.gauge("c")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(TelemetryError):
            registry.counter("bad name")
        with pytest.raises(TelemetryError):
            registry.counter("ok").inc(**{"0bad": "x"})

    def test_thread_safety(self, registry):
        counter = registry.counter("contended")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 4000


class TestGauge:
    def test_set_and_inc(self, registry):
        gauge = registry.gauge("ratio")
        gauge.set(0.95)
        assert gauge.value() == pytest.approx(0.95)
        gauge.inc(0.05)
        gauge.dec(0.5)
        assert gauge.value() == pytest.approx(0.5)

    def test_reset_clears_samples(self, registry):
        gauge = registry.gauge("g")
        gauge.set(7)
        registry.reset()
        assert gauge.value() == 0
        assert registry.get("g") is gauge  # instrument survives reset


class TestHistogram:
    def test_bucketing(self, registry):
        histogram = registry.histogram("t_us", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 99.0, 100.0, 1e6):
            histogram.observe(value)
        # Non-cumulative per-bucket counts, +Inf last: le=1 gets 0.5 and
        # exactly-1.0; le=10 gets 5.0; le=100 gets 99.0 and exactly-100.0.
        assert histogram.bucket_counts() == [2, 1, 2, 1]
        assert histogram.count() == 6
        assert histogram.total() == pytest.approx(0.5 + 1.0 + 5.0 + 99.0 + 100.0 + 1e6)

    def test_buckets_must_increase(self, registry):
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(10.0, 1.0))
        with pytest.raises(TelemetryError):
            registry.histogram("h2", buckets=())

    def test_labelled_histograms(self, registry):
        histogram = registry.histogram("stage_us", buckets=(10.0,))
        histogram.observe(1.0, stage="IN")
        histogram.observe(100.0, stage="IN")
        histogram.observe(5.0, stage="KC")
        assert histogram.bucket_counts(stage="IN") == [1, 1]
        assert histogram.count(stage="KC") == 1


class TestEventLog:
    def test_ring_overflow_keeps_newest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.append(TraceEvent("span", "e", t_wall=float(i)))
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.t_wall for e in log.snapshot()] == [2.0, 3.0, 4.0]

    def test_overflow_wraps_repeatedly(self):
        log = EventLog(capacity=2)
        for i in range(7):
            log.append(TraceEvent("span", "e", t_wall=float(i)))
        assert [e.t_wall for e in log.snapshot()] == [5.0, 6.0]
        assert log.dropped == 5

    def test_clear(self):
        log = EventLog(capacity=2)
        log.append(TraceEvent("span", "e", t_wall=0.0))
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(TelemetryError):
            EventLog(capacity=0)

    def test_by_kind(self):
        log = EventLog()
        log.append(TraceEvent("span", "a", t_wall=0.0))
        log.append(TraceEvent("replan", "b", t_wall=1.0))
        assert [e.name for e in log.by_kind("replan")] == ["b"]

    def test_replan_event_sanitises_infinite_trigger(self):
        event = replan_event(
            batch_index=1,
            trigger_change=float("inf"),
            old_config=None,
            new_config="[...]CPU",
            estimated_mops=10.0,
            changed=True,
        )
        assert event.fields["trigger_change"] is None
        json.dumps(event.to_dict(), allow_nan=False)  # strict-JSON safe


class TestScoped:
    def test_span_records_duration(self):
        telemetry = Telemetry(enabled=True)
        with span("region", telemetry=telemetry, shard=3):
            pass
        (event,) = telemetry.events.snapshot()
        assert event.kind == "span" and event.name == "region"
        assert event.duration_us >= 0.0
        assert event.fields == {"shard": 3}

    def test_span_noop_when_disabled(self):
        telemetry = Telemetry(enabled=False)
        with span("region", telemetry=telemetry):
            pass
        assert len(telemetry.events) == 0

    def test_timed_records_into_histogram(self):
        telemetry = Telemetry(enabled=True)
        with timed("lat_us", telemetry=telemetry, stage="IN"):
            pass
        histogram = telemetry.registry.get("lat_us")
        assert histogram.count(stage="IN") == 1

    def test_timed_noop_when_disabled(self):
        telemetry = Telemetry(enabled=False)
        with timed("lat_us", telemetry=telemetry):
            pass
        assert telemetry.registry.get("lat_us") is None


class TestJsonlExporter:
    def _populated(self):
        telemetry = Telemetry(enabled=True)
        telemetry.registry.counter("queries_total", help="q").inc(5, node="a")
        telemetry.registry.gauge("ratio").set(0.9)
        telemetry.registry.histogram("t_us", buckets=(1.0, 10.0)).observe(3.0)
        telemetry.events.append(stage_span("[IN]GPU", "IN", "gpu", 12.5, batch=1))
        telemetry.events.append(
            replan_event(2, 0.4, "old", "new", 33.0, True, estimated_tmax_us=100.0)
        )
        return telemetry

    def test_round_trip(self):
        telemetry = self._populated()
        buffer = io.StringIO()
        records = export_jsonl(telemetry, buffer)
        assert records == 1 + 3 + 2  # header + metrics + events
        buffer.seek(0)
        metrics, events = read_jsonl(buffer)
        assert metrics["queries_total"]["samples"] == {"node=a": 5.0}
        assert metrics["ratio"]["samples"] == {"": 0.9}
        assert metrics["t_us"]["samples"][""]["count"] == 1
        assert [e.kind for e in events] == ["span", "replan"]
        assert events[0].fields["task"] == "IN"
        assert events[1].fields["new_config"] == "new"

    def test_round_trip_via_file(self, tmp_path):
        telemetry = self._populated()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(telemetry, path)
        metrics, events = read_jsonl(path)
        assert "queries_total" in metrics
        assert len(events) == 2

    def test_every_line_is_strict_json(self):
        telemetry = self._populated()
        buffer = io.StringIO()
        export_jsonl(telemetry, buffer)
        for line in buffer.getvalue().splitlines():
            json.loads(line)

    def test_malformed_input_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TelemetryError):
            read_jsonl(str(path))


class TestPrometheusExporter:
    def test_counter_and_gauge_series(self):
        registry = MetricsRegistry()
        registry.counter("claims_total", help="claim sets").inc(3, owner="gpu")
        registry.gauge("skew").set(0.99)
        families = parse_prometheus(prometheus_text(registry))
        assert families["claims_total"]["type"] == "counter"
        assert families["claims_total"]["samples"]['claims_total{owner="gpu"}'] == 3
        assert families["skew"]["samples"]["skew"] == pytest.approx(0.99)

    def test_histogram_series_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_us", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            histogram.observe(value)
        families = parse_prometheus(prometheus_text(registry))
        samples = families["t_us"]["samples"]
        assert samples['t_us_bucket{le="1"}'] == 1
        assert samples['t_us_bucket{le="10"}'] == 2
        assert samples['t_us_bucket{le="+Inf"}'] == 3
        assert samples["t_us_count"] == 3
        assert samples["t_us_sum"] == pytest.approx(105.5)

    def test_one_family_per_registry_entry(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        families = parse_prometheus(prometheus_text(registry))
        assert set(families) == {"a", "b", "c"}

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(node='we"ird\\')
        text = prometheus_text(registry)
        parse_prometheus(text)  # must not choke on escaped quotes
        assert '\\"' in text


class TestHub:
    def test_default_hub_starts_disabled(self):
        assert get_telemetry().enabled is False

    def test_configure_resets_and_preserves_identity(self):
        hub = get_telemetry()
        telemetry = configure(enabled=True)
        assert telemetry is hub
        telemetry.registry.counter("x").inc()
        configure(enabled=False)
        assert hub.enabled is False
        assert hub.registry.counter("x").value() == 0

    def test_emit_respects_enabled(self):
        telemetry = Telemetry(enabled=False)
        telemetry.emit(TraceEvent("span", "e", t_wall=0.0))
        assert len(telemetry.events) == 0
        telemetry.enable()
        telemetry.emit(TraceEvent("span", "e", t_wall=0.0))
        assert len(telemetry.events) == 1


class TestInstrumentedSystem:
    """The acceptance demo as a test: a dynamic workload leaves a full trace."""

    @pytest.fixture
    def traced_system(self, live_telemetry):
        from repro import DidoSystem, QueryStream, standard_workload

        system = DidoSystem(memory_bytes=48 << 20, expected_objects=20_000)
        for label in ("K8-G95-S", "K128-G95-S", "K8-G50-U"):
            stream = QueryStream(standard_workload(label), num_keys=2_000, seed=3)
            for _ in range(2):
                system.process(stream.next_batch(512))
        return system, live_telemetry

    def test_replan_events_with_before_after_configs(self, traced_system):
        _, telemetry = traced_system
        replans = telemetry.events.by_kind("replan")
        assert len(replans) >= 1
        bootstrap = replans[0]
        assert bootstrap.fields["old_config"] is None
        assert bootstrap.fields["new_config"]
        switches = [e for e in replans[1:] if e.fields["changed"]]
        assert switches, "the phase shifts must change the pipeline"
        for event in switches:
            assert event.fields["old_config"] != event.fields["new_config"]
            assert event.fields["estimated_mops"] > 0

    def test_spans_cover_all_eight_tasks(self, traced_system):
        _, telemetry = traced_system
        spans = [e for e in telemetry.events.snapshot() if e.name == "pipeline_stage"]
        tasks = {e.fields["task"] for e in spans}
        assert tasks == {"RV", "PP", "MM", "IN", "KC", "RD", "WR", "SD"}

    def test_steal_claims_counted_per_owner(self, traced_system):
        _, telemetry = traced_system
        counter = telemetry.registry.get("repro_steal_claims_total")
        assert counter is not None
        assert counter.value(owner="gpu", stolen="false") > 0
        assert counter.value(owner="cpu", stolen="true") > 0

    def test_profiler_gauges_exposed(self, traced_system):
        _, telemetry = traced_system
        get_ratio = telemetry.registry.get("repro_profile_get_ratio")
        assert get_ratio is not None
        assert 0.0 <= get_ratio.value() <= 1.0
        assert telemetry.registry.get("repro_profile_window_queries").value() == 512

    def test_trace_exports_round_trip(self, traced_system, tmp_path):
        _, telemetry = traced_system
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(telemetry, path)
        metrics, events = read_jsonl(path)
        assert "repro_pipeline_queries_total" in metrics
        assert any(e.kind == "replan" for e in events)
        families = parse_prometheus(prometheus_text(telemetry.registry))
        assert len(families) == len(telemetry.registry.instruments())

    def test_console_summary_renders(self, traced_system):
        _, telemetry = traced_system
        text = console_summary(telemetry)
        assert "replans" in text
        assert "repro_pipeline_batches_total" in text

    def test_executor_measurement_spans(self, live_telemetry):
        from repro.hardware.specs import APU_A10_7850K
        from repro.pipeline.executor import PipelineExecutor
        from repro.pipeline.megakv import megakv_coupled_config

        from conftest import profile_for

        executor = PipelineExecutor(APU_A10_7850K)
        executor.measure(megakv_coupled_config(), profile_for("K16-G95-S"))
        spans = live_telemetry.events.by_kind("span")
        tasks = {e.fields["task"] for e in spans}
        assert tasks == {"RV", "PP", "MM", "IN", "KC", "RD", "WR", "SD"}
        assert live_telemetry.registry.get("repro_executor_measurements_total").value() == 1
        assert live_telemetry.registry.get("repro_batch_period_us").count() == 1


class TestLogArenaTelemetry:
    def test_arena_series_and_console_section(self, live_telemetry):
        from repro.kv.logarena import LogValueArena
        from repro.kv.store import KVStore

        store = KVStore(
            1 << 20, 4096, heap=LogValueArena(1 << 16, segment_bytes=1 << 12)
        )
        for i in range(700):  # ~72 KiB live against a 64 KiB budget
            store.set(b"key-%04d" % i, b"x" * 100)
        assert store.maintenance(force=True) > 0
        registry = live_telemetry.registry
        assert registry.get("repro_logarena_live_bytes").value() <= 1 << 16
        assert registry.get("repro_logarena_dead_bytes").value() >= 0
        assert registry.get("repro_logarena_compactions_total").value() >= 1
        text = console_summary(live_telemetry)
        assert "log arena" in text
        assert "repro_logarena_live_bytes" in text
        assert "repro_logarena_dead_bytes" in text
        assert "repro_logarena_compactions_total" in text

    def test_maintenance_emits_nothing_when_disabled(self):
        from repro.kv.logarena import LogValueArena
        from repro.kv.store import KVStore

        telemetry = get_telemetry()
        assert not telemetry.enabled
        before = telemetry.registry.snapshot()
        store = KVStore(
            1 << 20, 4096, heap=LogValueArena(1 << 16, segment_bytes=1 << 12)
        )
        for i in range(700):
            store.set(b"key-%04d" % i, b"x" * 100)
        assert store.maintenance(force=True) > 0
        assert telemetry.registry.snapshot() == before


class TestDisabledOverheadPath:
    def test_disabled_system_records_nothing(self):
        from repro import DidoSystem, QueryStream, standard_workload

        telemetry = get_telemetry()
        assert not telemetry.enabled
        before_events = len(telemetry.events)
        system = DidoSystem(memory_bytes=16 << 20, expected_objects=4_096)
        stream = QueryStream(standard_workload("K16-G95-S"), num_keys=500, seed=1)
        system.process(stream.next_batch(256))
        assert len(telemetry.events) == before_events
