"""Unit tests for the detailed pipeline simulator (executor)."""

import pytest

from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import IndexOp, Task
from repro.errors import SimulationError
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.megakv import megakv_coupled_config

from conftest import profile_for


@pytest.fixture(scope="module")
def ex():
    return PipelineExecutor(APU_A10_7850K)


class TestMeasure:
    def test_measurement_fields(self, ex):
        m = ex.measure(megakv_coupled_config(), profile_for("K16-G95-S"))
        assert m.throughput_mops > 0
        assert m.batch_size % 64 == 0
        assert m.tmax_us <= 301.0
        assert len(m.stages()) == 3
        assert all(s.time_us >= 0 for s in m.stages())

    def test_index_op_times_us(self, ex):
        m = ex.measure(megakv_coupled_config(), profile_for("K8-G95-S"))
        times = m.index_op_times_us
        assert times[IndexOp.SEARCH] > times[IndexOp.DELETE] > 0

    def test_utilizations_bounded(self, ex):
        for label in ("K8-G95-S", "K128-G50-U"):
            m = ex.measure(megakv_coupled_config(), profile_for(label))
            assert 0.0 < m.cpu_utilization <= 1.0
            assert 0.0 < m.gpu_utilization <= 1.0

    def test_deterministic(self, ex):
        a = ex.measure(megakv_coupled_config(), profile_for("K32-G95-S"))
        b = ex.measure(megakv_coupled_config(), profile_for("K32-G95-S"))
        assert a.throughput_mops == b.throughput_mops


class TestPaperShapes:
    """The motivational findings of the paper's Section II-C, measured on
    the Mega-KV static pipeline."""

    def test_fig4_rsv_binds(self, ex):
        """Read & Send Value is the bottleneck stage for all datasets."""
        from repro.pipeline.megakv import megakv_executor

        mkex = megakv_executor(APU_A10_7850K)
        for name in ("K8", "K16", "K32", "K128"):
            m = mkex.measure(megakv_coupled_config(), profile_for(f"{name}-G95-S"))
            times = m.estimate.stage_times_us
            assert times[2] == max(times), name

    def test_fig4_index_time_decreases_with_kv_size(self, ex):
        from repro.pipeline.megakv import megakv_executor

        mkex = megakv_executor(APU_A10_7850K)
        in_times = []
        for name in ("K8", "K16", "K32", "K128"):
            m = mkex.measure(megakv_coupled_config(), profile_for(f"{name}-G95-S"))
            in_times.append(m.estimate.stage_times_us[1])
        assert in_times == sorted(in_times, reverse=True)

    def test_fig5_gpu_underutilized_and_decreasing(self, ex):
        from repro.pipeline.megakv import megakv_executor

        mkex = megakv_executor(APU_A10_7850K)
        utils = []
        for name in ("K8", "K16", "K32", "K128"):
            m = mkex.measure(megakv_coupled_config(), profile_for(f"{name}-G95-S"))
            utils.append(m.gpu_utilization)
        assert utils == sorted(utils, reverse=True)
        assert utils[-1] < 0.55  # severely underutilised for large KV


class TestTimeline:
    def test_static_schedule_throughput_matches_steady_state(self, ex):
        config = megakv_coupled_config()
        profile = profile_for("K16-G95-S")
        steady = ex.measure(config, profile).throughput_mops

        points = ex.run_timeline(lambda now: (config, profile), duration_ns=3e6)
        mid = [p.throughput_mops for p in points[1:-1]]
        assert sum(mid) / len(mid) == pytest.approx(steady, rel=0.1)

    def test_samples_cover_duration(self, ex):
        config = megakv_coupled_config()
        profile = profile_for("K16-G95-S")
        points = ex.run_timeline(
            lambda now: (config, profile), duration_ns=3e6, sample_every_ns=3e5
        )
        assert len(points) >= 9
        assert points[0].time_ns == 0.0

    def test_schedule_switch_changes_config_label(self, ex):
        fast = megakv_coupled_config()
        slow = PipelineConfig.assemble(
            (Task.IN, Task.KC, Task.RD), total_cpu_cores=4
        )

        def schedule(now):
            cfg = fast if now < 1.5e6 else slow
            return cfg, profile_for("K16-G95-S")

        points = ex.run_timeline(schedule, duration_ns=3e6)
        labels = {p.config_label for p in points}
        assert len(labels) == 2

    def test_binned_query_mass_is_conserved(self, ex):
        """Every query of every simulated batch lands in exactly one bin.

        Regression guard for the timeline's bin-spreading loop: summing the
        binned query mass (throughput x bin width) must reproduce
        batches x batch_size exactly — no queries dropped, none counted
        twice, independent of how batch periods straddle bin edges.
        """
        import math

        config = megakv_coupled_config()
        profile = profile_for("K16-G95-S")
        duration_ns, sample_every_ns = 3e6, 2.5e5
        estimate = ex.estimate(config, profile, 1_000_000.0)
        period = max(estimate.tmax_ns, 1.0)
        batches = math.ceil(duration_ns / period)

        points = ex.run_timeline(
            lambda now: (config, profile),
            duration_ns=duration_ns,
            sample_every_ns=sample_every_ns,
        )
        binned_mass = sum(p.throughput_mops * sample_every_ns / 1000.0 for p in points)
        assert binned_mass == pytest.approx(batches * estimate.batch_size, rel=1e-9)

    def test_rejects_nonpositive_duration(self, ex):
        with pytest.raises(SimulationError):
            ex.run_timeline(lambda now: (megakv_coupled_config(), profile_for("K8-G95-U")), 0.0)
