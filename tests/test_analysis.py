"""Unit tests for metrics and reporting helpers."""

import pytest

from repro.analysis.metrics import (
    energy_efficiency_kops_per_watt,
    error_rate,
    improvement_pct,
    price_performance_kops_per_usd,
    speedup,
)
from repro.analysis.reporting import Table, format_row
from repro.errors import ConfigurationError


class TestMetrics:
    def test_speedup(self):
        assert speedup(30.0, 15.0) == pytest.approx(2.0)

    def test_speedup_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            speedup(1.0, 0.0)

    def test_improvement_pct(self):
        assert improvement_pct(18.1, 10.0) == pytest.approx(81.0)

    def test_error_rate_sign(self):
        """Paper definition: positive when the model underestimates."""
        assert error_rate(measured=100.0, estimated=90.0) == pytest.approx(0.1)
        assert error_rate(measured=100.0, estimated=110.0) == pytest.approx(-0.1)

    def test_price_performance(self):
        # 17.3 MOPS on a $173 part = 100 KOPS/USD.
        assert price_performance_kops_per_usd(17.3, 173.0) == pytest.approx(100.0)

    def test_energy_efficiency(self):
        # 9.5 MOPS at 95 W = 100 KOPS/W.
        assert energy_efficiency_kops_per_watt(9.5, 95.0) == pytest.approx(100.0)

    def test_invalid_denominators(self):
        with pytest.raises(ConfigurationError):
            price_performance_kops_per_usd(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            energy_efficiency_kops_per_watt(1.0, -1.0)
        with pytest.raises(ConfigurationError):
            error_rate(0.0, 1.0)

    def test_error_rate_rejects_bad_estimate(self):
        """A zero/negative estimate is a modelling bug, not a 100 % error."""
        with pytest.raises(ConfigurationError):
            error_rate(100.0, 0.0)
        with pytest.raises(ConfigurationError):
            error_rate(100.0, -5.0)


class TestReporting:
    def test_format_row_floats(self):
        row = format_row(["x", 1.23456, 7], [4, 8, 3])
        assert "1.235" in row
        assert row.startswith("x")

    def test_table_render(self):
        table = Table("Demo", ["name", "value"])
        table.add("alpha", 1.5)
        table.add("beta", 2.0)
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text
        assert text.count("\n") >= 5

    def test_table_rejects_wrong_arity(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_table_widths_fit_contents(self):
        table = Table("T", ["col"])
        table.add("a-very-long-cell-value")
        lines = table.render().splitlines()
        header_line = lines[2]
        assert len(header_line) <= len(lines[-1])

    def test_show_prints(self, capsys):
        table = Table("Printed", ["x"])
        table.add(1.0)
        table.show()
        assert "Printed" in capsys.readouterr().out
