"""Sharded data plane: routing, facade views, engine equivalence, coalescing."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dido import DidoSystem
from repro.engine import BatchPlane, ShardedEngine, compile_stage_plan
from repro.errors import ConfigurationError
from repro.kv.protocol import Query, QueryType, encode_responses
from repro.kv.sharding import ShardedKVStore, shard_of
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config

from test_engine import all_canonical_configs, workload_batches

SHARD_COUNTS = (1, 2, 4, 7)


# ------------------------------------------------------------------ routing


class TestShardRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for n in SHARD_COUNTS:
            for i in range(200):
                key = f"key-{i}".encode()
                shard = shard_of(key, n)
                assert 0 <= shard < n
                assert shard == shard_of(key, n)

    def test_vectorized_assignment_matches_scalar(self):
        engine = ShardedEngine()
        keys = [f"some-key-{i}".encode() for i in range(500)] + [b"", b"x" * 300]
        for n in SHARD_COUNTS:
            assert engine._assign_shards(keys, n) == [shard_of(k, n) for k in keys]

    def test_all_shards_receive_keys(self):
        store = ShardedKVStore(8 << 20, 4096, 4)
        for i in range(400):
            store.set(f"key-{i}".encode(), b"v")
        assert all(size > 0 for size in store.shard_sizes())


# ------------------------------------------------------------------- facade


class TestShardedStoreFacade:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedKVStore(1 << 20, 512, 0)

    def test_scalar_ops_route_consistently(self):
        store = ShardedKVStore(8 << 20, 4096, 4)
        assert store.get(b"missing") is None
        store.set(b"k1", b"v1")
        assert store.get(b"k1") == b"v1"
        assert len(store) == 1
        assert store.delete(b"k1") is True
        assert store.delete(b"k1") is False
        assert len(store) == 0

    def test_merged_stats_sum_shard_counters(self):
        store = ShardedKVStore(8 << 20, 4096, 4)
        for i in range(60):
            store.set(f"key-{i}".encode(), b"v")
            store.get(f"key-{i}".encode())
        stats = store.stats
        assert stats.sets == 60
        assert stats.gets == 60
        assert stats.get_hits == 60
        index_stats = store.index.stats
        assert index_stats.inserts == 60
        assert index_stats.average_insert_buckets() > 0
        assert len(store.heap.objects()) == 60

    def test_populate_counts_and_len(self):
        store = ShardedKVStore(8 << 20, 4096, 7)
        items = [(f"key-{i}".encode(), b"v") for i in range(100)]
        assert store.populate(items) == 100
        assert len(store) == 100
        assert len(store.index) == 100


# ----------------------------------------------------------- engine parity


def run_pipeline(store, engine, config, batches):
    pipeline = FunctionalPipeline(store, engine=engine)
    frames = []
    for batch in batches:
        result = pipeline.process_batch(config, batch)
        frames.append(b"".join(f.payload for f in result.frames))
    return frames


class TestShardedEquivalence:
    def test_sharded_matches_reference_across_canonical_configs(self):
        batches = workload_batches()
        for config in all_canonical_configs():
            ref = run_pipeline(
                KVStore(8 << 20, 4096), "reference", config, batches
            )
            engine = ShardedEngine()
            shd = run_pipeline(
                ShardedKVStore(8 << 20, 4096, 4), engine, config, batches
            )
            engine.close()
            assert shd == ref, config.label

    def test_single_shard_and_plain_store_fallback(self):
        config = megakv_coupled_config()
        batches = workload_batches(batches=2)
        ref = run_pipeline(KVStore(8 << 20, 4096), "reference", config, batches)
        for store in (ShardedKVStore(8 << 20, 4096, 1), KVStore(8 << 20, 4096)):
            engine = ShardedEngine()
            assert run_pipeline(store, engine, config, batches) == ref
            engine.close()

    def test_response_size_column_survives_the_merge(self):
        config = megakv_coupled_config()
        store = ShardedKVStore(8 << 20, 4096, 4)
        pipeline = FunctionalPipeline(store, engine="sharded")
        for batch in workload_batches(batches=2):
            result = pipeline.process_batch(config, batch)
            assert result.response_sizes == [r.wire_size for r in result.responses]


# --------------------------------------------------- the property test


def _queries_from_ops(ops) -> list[Query]:
    queries = []
    for op, key_id, value in ops:
        key = b"key-%d" % key_id
        if op == "set":
            queries.append(Query(QueryType.SET, key, value))
        elif op == "get":
            queries.append(Query(QueryType.GET, key))
        else:
            queries.append(Query(QueryType.DELETE, key))
    return queries


# A small key space (0..15) forces hot keys: repeated SETs of one key in a
# single batch exercise the batch-local dedup path on every shard count.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "get", "delete"]),
        st.integers(0, 15),
        st.binary(min_size=0, max_size=40),
    ),
    min_size=1,
    max_size=120,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(ops_strategy, min_size=1, max_size=4))
def test_sharded_store_byte_identical_to_plain_store(batches_ops):
    """ISSUE satellite: ShardedKVStore vs plain KVStore, byte-identical
    responses across shard counts {1, 2, 4, 7} on mixed GET/SET/DELETE
    traces, including hot-key batch-local dedup."""
    config = megakv_coupled_config()
    batches = [_queries_from_ops(ops) for ops in batches_ops]
    # Budgets sized so neither side ever evicts (eviction order is the one
    # legitimate divergence between a partitioned and a monolithic LRU).
    baseline = run_pipeline(KVStore(64 << 20, 2048), "serial", config, batches)
    for n in SHARD_COUNTS:
        engine = ShardedEngine()
        frames = run_pipeline(
            ShardedKVStore(64 << 20, 2048, n), engine, config, batches
        )
        engine.close()
        assert frames == baseline, f"shards={n}"


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["set", "get", "delete"]), st.integers(0, 30)),
        min_size=1,
        max_size=150,
    ),
    st.sampled_from(SHARD_COUNTS),
)
def test_sharded_scalar_ops_match_plain_store(ops, num_shards):
    plain = KVStore(4 << 20, 2048)
    sharded = ShardedKVStore(4 << 20, 2048, num_shards)
    for op, key_id in ops:
        key = b"k%d" % key_id
        if op == "set":
            value = b"v-%d" % key_id
            plain.set(key, value)
            sharded.set(key, value)
        elif op == "get":
            assert plain.get(key) == sharded.get(key)
        else:
            assert plain.delete(key) == sharded.delete(key)
    assert len(plain) == len(sharded)


# ------------------------------------------------------------ system level


class TestShardedSystem:
    def test_dido_system_auto_selects_sharded_engine(self):
        system = DidoSystem(
            memory_bytes=8 << 20, expected_objects=4096, shards=4
        )
        assert isinstance(system.store, ShardedKVStore)
        assert isinstance(system.pipeline._engine, ShardedEngine)

    def test_dido_system_rejects_incompatible_engine(self):
        with pytest.raises(ConfigurationError):
            DidoSystem(memory_bytes=8 << 20, expected_objects=4096,
                       engine="serial", shards=4)

    def test_sharded_system_processes_batches(self):
        system = DidoSystem(memory_bytes=8 << 20, expected_objects=4096, shards=4)
        plain = DidoSystem(memory_bytes=8 << 20, expected_objects=4096)
        for batch in workload_batches(batches=3, size=256):
            sharded_result = system.process(list(batch))
            plain_result = plain.process(list(batch))
            assert encode_responses(sharded_result.responses) == encode_responses(
                plain_result.responses
            )

    def test_sharded_engine_runs_inside_batch_plane_directly(self):
        store = ShardedKVStore(1 << 20, 512, 2)
        engine = ShardedEngine()
        plan = compile_stage_plan(megakv_coupled_config())
        plane = BatchPlane(
            [Query(QueryType.SET, b"a", b"1"), Query(QueryType.GET, b"a")]
        )
        engine.run(store, plan, plane, epoch=0)
        engine.close()
        responses = plane.take_responses()
        assert responses[1].value == b"1"
