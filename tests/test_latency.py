"""Tests for the analytic latency-distribution helper."""

import pytest

from repro.analysis.latency import latency_profile
from repro.core.cost_model import CostModel
from repro.errors import ConfigurationError
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.megakv import megakv_coupled_config

from conftest import profile_for


@pytest.fixture(scope="module")
def estimate():
    return CostModel(APU_A10_7850K).estimate(
        megakv_coupled_config(), profile_for("K16-G95-S")
    )


class TestLatencyProfile:
    def test_ordering(self, estimate):
        lat = latency_profile(estimate)
        assert lat.p50_us < lat.p95_us < lat.p99_us < lat.worst_us
        assert lat.mean_us == lat.p50_us  # uniform distribution

    def test_three_stage_bounds(self, estimate):
        """3-stage pipeline: latency between 3 and 3.67 periods."""
        lat = latency_profile(estimate)
        assert lat.stages == 3
        assert 3 * lat.period_us <= lat.p50_us <= 4 * lat.period_us
        assert lat.worst_us == pytest.approx((3 + 2 / 3) * lat.period_us)

    def test_within_budget(self, estimate):
        """The scheduler keeps the average (p50) within the 1,000 us budget."""
        lat = latency_profile(estimate)
        assert lat.mean_us <= 1050.0

    def test_percentile_function(self, estimate):
        lat = latency_profile(estimate)
        assert lat.percentile(50) == pytest.approx(lat.p50_us)
        assert lat.percentile(0) == pytest.approx(lat.stages * lat.period_us)
        assert lat.percentile(100) == pytest.approx(lat.worst_us)

    def test_percentile_validation(self, estimate):
        with pytest.raises(ConfigurationError):
            latency_profile(estimate).percentile(101)

    def test_tighter_budget_lowers_tail(self):
        cm = CostModel(APU_A10_7850K)
        profile = profile_for("K16-G95-S")
        loose = latency_profile(cm.estimate(megakv_coupled_config(), profile, 1_000_000.0))
        tight = latency_profile(cm.estimate(megakv_coupled_config(), profile, 600_000.0))
        assert tight.p99_us < loose.p99_us
