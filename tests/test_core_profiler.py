"""Unit tests for the workload profiler and skew estimator."""

import numpy as np
import pytest

from repro.core.profiler import (
    CHANGE_THRESHOLD,
    WorkloadProfile,
    WorkloadProfiler,
    estimate_zipf_skew,
    profile_delta,
    sample_skewness,
)
from repro.errors import WorkloadError
from repro.kv.protocol import Query, QueryType
from repro.workloads.distributions import ZipfKeys
from repro.workloads.ycsb import standard_workload


def queries(gets: int, sets: int, key_size: int = 16, value_size: int = 64):
    out = [Query(QueryType.GET, bytes(key_size)) for _ in range(gets)]
    out += [
        Query(QueryType.SET, bytes(key_size), b"v" * value_size) for _ in range(sets)
    ]
    return out


class TestWorkloadProfile:
    def test_from_spec(self):
        profile = WorkloadProfile.from_spec(standard_workload("K32-G95-S"))
        assert profile.get_ratio == pytest.approx(0.95)
        assert profile.avg_key_size == 32.0
        assert profile.avg_value_size == 256.0
        assert profile.zipf_skew == pytest.approx(0.99)

    def test_set_ratio(self):
        profile = WorkloadProfile(0.8, 16, 64, 0.0)
        assert profile.set_ratio == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(1.5, 16, 64, 0.0)
        with pytest.raises(WorkloadError):
            WorkloadProfile(0.5, 0, 64, 0.0)


class TestProfiler:
    def test_counts_mix(self):
        profiler = WorkloadProfiler()
        profiler.observe_batch(queries(95, 5))
        profile = profiler.snapshot()
        assert profile.get_ratio == pytest.approx(0.95)
        assert profile.batch_queries == 100

    def test_average_sizes(self):
        profiler = WorkloadProfiler()
        profiler.observe_batch(queries(0, 10, key_size=32, value_size=128))
        profile = profiler.snapshot()
        assert profile.avg_key_size == pytest.approx(32.0)
        assert profile.avg_value_size == pytest.approx(128.0)

    def test_get_value_sizes_via_observation(self):
        profiler = WorkloadProfiler()
        profiler.observe_batch(queries(10, 0))
        for _ in range(10):
            profiler.observe_value_size(200)
        profile = profiler.snapshot()
        assert profile.avg_value_size == pytest.approx(200.0)

    def test_empty_window_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfiler().snapshot()

    def test_epoch_advances(self):
        profiler = WorkloadProfiler()
        profiler.observe_batch(queries(1, 0))
        assert profiler.epoch == 0
        profiler.snapshot()
        assert profiler.epoch == 1

    def test_insert_buckets_carried(self):
        profiler = WorkloadProfiler()
        profiler.observe_insert_buckets(3.2)
        profiler.observe_batch(queries(1, 0))
        assert profiler.snapshot().insert_buckets == pytest.approx(3.2)

    def test_window_resets(self):
        profiler = WorkloadProfiler()
        profiler.observe_batch(queries(10, 0))
        profiler.snapshot()
        profiler.observe_batch(queries(0, 10))
        assert profiler.snapshot().get_ratio == 0.0


class TestSkewEstimation:
    def test_uniform_frequencies_estimate_zero(self):
        freqs = np.ones(1000)
        assert estimate_zipf_skew(freqs) == 0.0

    def test_zipf_sample_recovers_exponent(self):
        dist = ZipfKeys(50_000, skew=0.99, seed=21)
        ranks = dist.sample(200_000)
        _, counts = np.unique(ranks, return_counts=True)
        estimate = estimate_zipf_skew(counts.astype(float))
        assert estimate == pytest.approx(0.99, abs=0.25)

    def test_mild_skew_lower_estimate(self):
        strong = ZipfKeys(50_000, skew=1.1, seed=22)
        mild = ZipfKeys(50_000, skew=0.5, seed=22)
        est = {}
        for name, dist in (("strong", strong), ("mild", mild)):
            _, counts = np.unique(dist.sample(100_000), return_counts=True)
            est[name] = estimate_zipf_skew(counts.astype(float))
        assert est["strong"] > est["mild"]

    def test_too_few_samples(self):
        assert estimate_zipf_skew(np.array([5.0, 3.0])) == 0.0

    def test_sample_skewness_symmetry(self):
        symmetric = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert sample_skewness(symmetric) == pytest.approx(0.0, abs=1e-9)

    def test_sample_skewness_right_tail(self):
        right = np.array([1.0] * 50 + [100.0])
        assert sample_skewness(right) > 1.0

    def test_sample_skewness_degenerate(self):
        assert sample_skewness(np.array([2.0, 2.0, 2.0, 2.0])) == 0.0


class TestProfileDelta:
    def base(self):
        return WorkloadProfile(0.95, 16, 64, 0.99)

    def test_identical_not_substantial(self):
        delta = profile_delta(self.base(), self.base())
        assert not delta.substantial
        assert delta.max_change == pytest.approx(0.0)

    def test_value_size_change_detected(self):
        new = WorkloadProfile(0.95, 16, 128, 0.99)
        assert profile_delta(new, self.base()).substantial

    def test_get_ratio_change_detected(self):
        new = WorkloadProfile(0.50, 16, 64, 0.99)
        assert profile_delta(new, self.base()).substantial

    def test_skew_change_detected(self):
        new = WorkloadProfile(0.95, 16, 64, 0.0)
        assert profile_delta(new, self.base()).substantial

    def test_small_drift_ignored(self):
        """Under the 10 % threshold nothing triggers (paper Section III-A)."""
        new = WorkloadProfile(0.93, 16.5, 66, 0.95)
        delta = profile_delta(new, self.base())
        assert delta.max_change < CHANGE_THRESHOLD
        assert not delta.substantial
