"""Unit tests for the cuckoo hash table index."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.kv.hashtable import CuckooHashTable
from repro.kv.objects import key_signature


def make_table(buckets=256, **kwargs):
    return CuckooHashTable(num_buckets=buckets, **kwargs)


class TestConstruction:
    def test_rounds_buckets_to_power_of_two(self):
        table = make_table(buckets=100)
        assert table.num_buckets == 128

    def test_rejects_nonpositive_buckets(self):
        with pytest.raises(ConfigurationError):
            CuckooHashTable(num_buckets=0)

    def test_rejects_single_hash(self):
        with pytest.raises(ConfigurationError):
            CuckooHashTable(num_buckets=16, num_hashes=1)

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            CuckooHashTable(num_buckets=16, slots_per_bucket=0)

    def test_capacity(self):
        table = make_table(buckets=64)
        assert table.capacity == 64 * table.slots_per_bucket

    def test_expected_search_buckets_two_hashes(self):
        assert make_table().expected_search_buckets() == pytest.approx(1.5)

    def test_expected_search_buckets_three_hashes(self):
        table = make_table(num_hashes=3)
        assert table.expected_search_buckets() == pytest.approx(2.0)


class TestInsertSearch:
    def test_insert_then_search_finds_location(self):
        table = make_table()
        table.insert(b"alpha", 42)
        candidates, _ = table.search(b"alpha")
        assert 42 in candidates

    def test_search_missing_returns_empty(self):
        table = make_table()
        candidates, buckets = table.search(b"nothing")
        assert candidates == []
        assert buckets == table.num_hashes  # probed every candidate bucket

    def test_search_short_circuits_on_first_bucket(self):
        table = make_table()
        table.insert(b"alpha", 1)
        _, buckets = table.search(b"alpha")
        assert buckets >= 1

    def test_len_tracks_inserts(self):
        table = make_table()
        for i in range(10):
            table.insert(f"key-{i}".encode(), i)
        assert len(table) == 10

    def test_many_inserts_all_findable(self):
        table = make_table(buckets=1024)
        keys = [f"key-{i}".encode() for i in range(1500)]
        for i, key in enumerate(keys):
            table.insert(key, i)
        for i, key in enumerate(keys):
            candidates, _ = table.search(key)
            assert i in candidates, f"lost {key!r}"

    def test_rejects_negative_location(self):
        with pytest.raises(ConfigurationError):
            make_table().insert(b"k", -5)

    def test_insert_returns_buckets_written(self):
        table = make_table()
        writes = table.insert(b"k", 0)
        assert writes >= 1

    def test_stats_count_operations(self):
        table = make_table()
        table.insert(b"a", 1)
        table.search(b"a")
        table.delete(b"a")
        assert table.stats.inserts == 1
        assert table.stats.searches == 1
        assert table.stats.deletes == 1

    def test_average_insert_buckets_positive(self):
        table = make_table(buckets=128)
        for i in range(200):
            table.insert(f"k{i}".encode(), i)
        assert table.stats.average_insert_buckets() >= 1.0

    def test_average_search_buckets_in_range(self):
        table = make_table(buckets=512)
        for i in range(400):
            table.insert(f"k{i}".encode(), i)
        for i in range(400):
            table.search(f"k{i}".encode())
        avg = table.stats.average_search_buckets()
        assert 1.0 <= avg <= table.num_hashes


class TestDelete:
    def test_delete_removes_entry(self):
        table = make_table()
        table.insert(b"alpha", 7)
        assert table.delete(b"alpha")
        candidates, _ = table.search(b"alpha")
        assert 7 not in candidates

    def test_delete_missing_returns_false(self):
        table = make_table()
        assert not table.delete(b"ghost")

    def test_delete_specific_location(self):
        table = make_table()
        table.insert(b"dup", 1)
        table.insert(b"dup", 2)
        assert table.delete(b"dup", location=1)
        candidates, _ = table.search(b"dup")
        assert 1 not in candidates
        assert 2 in candidates

    def test_delete_wrong_location_scans(self):
        table = make_table()
        table.insert(b"k", 5)
        # Deleting with a location that exists nowhere fails cleanly.
        assert not table.delete(b"k", location=999)

    def test_delete_updates_len(self):
        table = make_table()
        table.insert(b"a", 1)
        table.delete(b"a")
        assert len(table) == 0


class TestReassign:
    def test_reassign_moves_entry_in_place(self):
        table = make_table()
        table.insert(b"alpha", 7)
        assert table.reassign_prehashed(*table.probe_cached(b"alpha"), 7, 42)
        candidates, _ = table.search(b"alpha")
        assert 42 in candidates
        assert 7 not in candidates
        assert len(table) == 1

    def test_reassign_counts_the_insert_delete_pair(self):
        """One reassign is the paper's one-Insert-one-Delete SET pair."""
        table = make_table()
        table.insert(b"k", 1)
        inserts, deletes = table.stats.inserts, table.stats.deletes
        assert table.reassign_prehashed(*table.probe_cached(b"k"), 1, 2)
        assert table.stats.inserts == inserts + 1
        assert table.stats.deletes == deletes + 1
        assert table.stats.reassigns == 1

    def test_reassign_missing_entry_returns_false(self):
        table = make_table()
        table.insert(b"k", 1)
        stats_before = (table.stats.inserts, table.stats.deletes)
        assert not table.reassign_prehashed(*table.probe_cached(b"k"), 999, 2)
        assert (table.stats.inserts, table.stats.deletes) == stats_before
        candidates, _ = table.search(b"k")
        assert candidates == [1]

    def test_reassign_rejects_negative_location(self):
        table = make_table()
        table.insert(b"k", 1)
        with pytest.raises(ConfigurationError):
            table.reassign_prehashed(*table.probe_cached(b"k"), 1, -3)

    def test_reassign_leaves_signature_colliders_alone(self):
        """Only the (signature, old_location) entry moves; another entry
        for the same key at a different location is untouched."""
        table = make_table()
        table.insert(b"dup", 1)
        table.insert(b"dup", 2)
        assert table.reassign_prehashed(*table.probe_cached(b"dup"), 1, 9)
        candidates, _ = table.search(b"dup")
        assert sorted(candidates) == [2, 9]

    def test_scalar_ops_warm_the_probe_cache(self):
        """Scalar insert/search/delete route through the persistent probe
        cache, so a populated table serves prehashed batches hash-free."""
        table = make_table()
        table.insert(b"warm", 3)
        assert b"warm" in table._probe_cache


class TestDisplacement:
    def test_kicks_preserve_reachability_at_high_load(self):
        table = CuckooHashTable(num_buckets=64, slots_per_bucket=4)
        stored = {}
        try:
            for i in range(int(table.capacity * 0.9)):
                key = f"key-{i}".encode()
                table.insert(key, i)
                stored[key] = i
        except CapacityError:
            pass  # near-capacity failure is legitimate cuckoo behaviour
        # Entries must remain present *somewhere* (signature-level check:
        # kicked entries move to derived buckets the search may not probe,
        # as in real signature-only cuckoo tables, so check the global set).
        present = {loc for _, loc in table.entries()}
        for key, loc in stored.items():
            assert loc in present, f"{key!r} vanished from the table"

    def test_capacity_error_at_overload(self):
        table = CuckooHashTable(num_buckets=4, slots_per_bucket=2, max_kicks=8)
        with pytest.raises(CapacityError):
            for i in range(100):
                table.insert(f"key-{i}".encode(), i)

    def test_failed_insert_counted(self):
        table = CuckooHashTable(num_buckets=4, slots_per_bucket=2, max_kicks=8)
        try:
            for i in range(100):
                table.insert(f"key-{i}".encode(), i)
        except CapacityError:
            pass
        assert table.stats.failed_inserts == 1

    def test_load_factor(self):
        table = make_table(buckets=64)
        for i in range(32):
            table.insert(f"k{i}".encode(), i)
        assert table.load_factor == pytest.approx(32 / table.capacity)


class TestVersioning:
    def test_write_bumps_bucket_version(self):
        table = make_table()
        key = b"versioned"
        bucket = table.candidate_buckets(key)[0]
        before = table.bucket_version(bucket)
        table.insert(key, 3)
        # Some candidate bucket's version moved.
        after = [table.bucket_version(b) for b in table.candidate_buckets(key)]
        assert any(v > before or v > 0 for v in after)

    def test_search_does_not_bump_version(self):
        table = make_table()
        table.insert(b"k", 1)
        versions = [table.bucket_version(i) for i in range(table.num_buckets)]
        table.search(b"k")
        assert versions == [table.bucket_version(i) for i in range(table.num_buckets)]


class TestSignatureSemantics:
    def test_candidates_are_signature_matches(self):
        table = make_table()
        table.insert(b"key-A", 10)
        candidates, _ = table.search(b"key-A")
        assert candidates == [10]

    def test_entries_lists_all(self):
        table = make_table()
        table.insert(b"a", 1)
        table.insert(b"b", 2)
        entries = table.entries()
        assert (key_signature(b"a"), 1) in entries
        assert (key_signature(b"b"), 2) in entries
