"""Unit tests for CPU/GPU execution-time models."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.memory import AccessPattern
from repro.hardware.processor import (
    cpu_task_time_ns,
    gpu_batch_efficiency,
    gpu_task_time_ns,
    task_time_ns,
)
from repro.hardware.specs import APU_A10_7850K

CPU = APU_A10_7850K.cpu
GPU = APU_A10_7850K.gpu
NOMEM = AccessPattern(0.0, 0.0)


class TestCpuModel:
    def test_scales_linearly_with_batch(self):
        t1 = cpu_task_time_ns(CPU, 1000, 100, NOMEM, cores=1)
        t2 = cpu_task_time_ns(CPU, 2000, 100, NOMEM, cores=1)
        assert t2 == pytest.approx(2 * t1)

    def test_cores_divide_time(self):
        t1 = cpu_task_time_ns(CPU, 1000, 100, NOMEM, cores=1)
        t2 = cpu_task_time_ns(CPU, 1000, 100, NOMEM, cores=2)
        assert t2 == pytest.approx(t1 / 2)

    def test_cores_capped_at_physical(self):
        t4 = cpu_task_time_ns(CPU, 1000, 100, NOMEM, cores=4)
        t8 = cpu_task_time_ns(CPU, 1000, 100, NOMEM, cores=8)
        assert t8 == pytest.approx(t4)

    def test_memory_term(self):
        t = cpu_task_time_ns(CPU, 1, 0, AccessPattern(1.0, 0.0), cores=1)
        assert t == pytest.approx(CPU.mem_latency_ns / CPU.mem_parallelism)

    def test_zero_batch(self):
        assert cpu_task_time_ns(CPU, 0, 100, NOMEM, cores=1) == 0.0

    def test_rejects_gpu_spec(self):
        with pytest.raises(ConfigurationError):
            cpu_task_time_ns(GPU, 10, 1, NOMEM, cores=1)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            cpu_task_time_ns(CPU, 10, 1, NOMEM, cores=0)


class TestGpuEfficiency:
    def test_monotone_in_batch(self):
        effs = [gpu_batch_efficiency(GPU, n) for n in (64, 512, 4096, 32768)]
        assert effs == sorted(effs)

    def test_half_at_saturation_batch(self):
        assert gpu_batch_efficiency(GPU, GPU.saturation_batch) == pytest.approx(0.5)

    def test_bounded(self):
        assert 0.0 < gpu_batch_efficiency(GPU, 1) < 1.0
        assert gpu_batch_efficiency(GPU, 10**9) < 1.0

    def test_zero_batch(self):
        assert gpu_batch_efficiency(GPU, 0) == 0.0

    def test_rejects_cpu_spec(self):
        with pytest.raises(ConfigurationError):
            gpu_batch_efficiency(CPU, 100)


class TestGpuModel:
    def test_kernel_launch_floor(self):
        t = gpu_task_time_ns(GPU, 1, 1, NOMEM)
        assert t >= GPU.kernel_launch_ns

    def test_small_batch_per_query_penalty(self):
        """Per-query cost falls as the batch grows — the Figure 6 effect."""
        per_query_small = gpu_task_time_ns(GPU, 256, 100, AccessPattern(1.5, 0.5)) / 256
        per_query_large = gpu_task_time_ns(GPU, 32768, 100, AccessPattern(1.5, 0.5)) / 32768
        assert per_query_small > 3 * per_query_large

    def test_atomic_penalty_increases_time(self):
        plain = gpu_task_time_ns(GPU, 4096, 100, AccessPattern(2.0, 0.0))
        atomic = gpu_task_time_ns(GPU, 4096, 100, AccessPattern(2.0, 0.0), atomic=True)
        assert atomic > plain

    def test_bandwidth_bound_dominates_memory_heavy_work(self):
        """A memory-heavy kernel's time tracks bytes moved, not lanes."""
        batch = 50000
        light = gpu_task_time_ns(GPU, batch, 10, AccessPattern(1.0, 0.0))
        heavy = gpu_task_time_ns(GPU, batch, 10, AccessPattern(4.0, 0.0))
        assert heavy / light == pytest.approx(4.0, rel=0.1)

    def test_sequential_lines_cost_bandwidth(self):
        """Per-thread object walks are uncoalesced: trailing lines are not
        free on the GPU (Section V-D3's large-value inefficiency)."""
        batch = 50000
        small_obj = gpu_task_time_ns(GPU, batch, 10, AccessPattern(1.0, 0.0))
        big_obj = gpu_task_time_ns(GPU, batch, 10, AccessPattern(1.0, 16.0))
        assert big_obj > 5 * small_obj

    def test_interference_scales_time(self):
        base = gpu_task_time_ns(GPU, 8192, 100, AccessPattern(1.5, 0.0))
        slowed = gpu_task_time_ns(GPU, 8192, 100, AccessPattern(1.5, 0.0), interference=1.4)
        assert slowed > base

    def test_zero_batch(self):
        assert gpu_task_time_ns(GPU, 0, 100, NOMEM) == 0.0

    def test_rejects_cpu_spec(self):
        with pytest.raises(ConfigurationError):
            gpu_task_time_ns(CPU, 10, 1, NOMEM)


class TestDispatch:
    def test_task_time_dispatches_cpu(self):
        direct = cpu_task_time_ns(CPU, 100, 50, NOMEM, cores=2)
        assert task_time_ns(CPU, 100, 50, NOMEM, cores=2) == pytest.approx(direct)

    def test_task_time_dispatches_gpu(self):
        direct = gpu_task_time_ns(GPU, 100, 50, NOMEM)
        assert task_time_ns(GPU, 100, 50, NOMEM) == pytest.approx(direct)
