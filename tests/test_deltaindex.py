"""Delta index: absorption semantics, merge correctness, mirror coherence.

Covers the FliX-style flipped-indexing layer (`repro.kv.deltaindex`):
entry lifecycle and tri-state deletes, merge triggers (size / age /
overflow), post-merge probe-cache honesty, the column- and tuple-form
bulk apply paths landing identical tables, signature-mirror == table
coherence after randomized op soups, and the `--delta-index` telemetry
series showing up in the console exporter.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.kv.deltaindex import TOMBSTONE, DeltaIndex
from repro.kv.store import KVStore
from repro.telemetry import configure, console_summary, get_telemetry

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

needs_numpy = pytest.mark.skipif(np is None, reason="numpy required")


def fresh_store(heap="slab", delta=True, **delta_kw):
    store = KVStore(memory_bytes=8 << 20, expected_objects=4096, heap=heap)
    if delta:
        store.attach_delta_index(**delta_kw)
    return store


@pytest.fixture
def live_telemetry():
    telemetry = configure(enabled=True)
    telemetry.reset()
    yield telemetry
    configure(enabled=False)


# ------------------------------------------------------------ absorption


class TestAbsorption:
    def make(self, **kw):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        return DeltaIndex(store.index, **kw)

    def test_lookup_tristate(self):
        delta = self.make()
        assert delta.lookup(b"ghost") is None  # unknown: fall through to main
        delta.insert(b"k", 7)
        assert delta.lookup(b"k") == [7]
        assert delta.delete(b"k") is True
        assert delta.lookup(b"k") == []  # tombstone suppresses main

    def test_born_and_died_entries_merge_to_nothing(self):
        delta = self.make()
        delta.insert(b"k", 7)
        delta.delete(b"k")
        deletes, reassigns, inserts, keys = delta.merge_rows()
        assert (deletes, reassigns, inserts) == ([], [], [])
        assert keys == [b"k"]

    def test_resets_collapse_onto_one_entry(self):
        delta = self.make()
        delta.assign(b"k", 3, 5)
        delta.insert(b"k", 9)  # re-set between merges
        assert len(delta) == 1
        assert delta.lookup(b"k") == [9]
        deletes, reassigns, inserts, _ = delta.merge_rows()
        # main_old survives the collapse: the merge still retires slot 3
        assert deletes == [] and inserts == []
        [(sig, buckets, old, new)] = reassigns
        assert (old, new) == (3, 9)

    def test_delete_unknown_key_without_location_is_not_absorbed(self):
        delta = self.make()
        assert delta.delete(b"k") is None  # caller must hit main synchronously
        assert delta.pending_ops == 0

    def test_delete_unknown_key_with_location_tombstones(self):
        delta = self.make()
        assert delta.delete(b"k", 11) is True
        [(sig, buckets, old)] = delta.merge_rows()[0]
        assert old == 11

    def test_mismatched_delete_queues_orphan(self):
        delta = self.make()
        delta.assign(b"k", 3, 5)
        assert delta.delete(b"k", 42) is False  # neither final nor main_old
        assert delta.stats.orphan_deletes == 1
        deletes, reassigns, _, keys = delta.merge_rows()
        assert [row[2] for row in deletes] == [42]
        assert len(reassigns) == 1  # the tracked binding still merges
        assert keys.count(b"k") == 2

    def test_wants_merge_size_trigger(self):
        delta = self.make(merge_threshold=2)
        delta.insert(b"a", 1)
        assert not delta.wants_merge()
        delta.insert(b"b", 2)
        assert delta.wants_merge()

    def test_wants_merge_age_trigger(self):
        delta = self.make(merge_threshold=1 << 30, max_age_s=0.0)
        assert not delta.wants_merge()  # empty: never
        delta.insert(b"a", 1)
        assert delta.wants_merge()  # age 0 → any non-empty delta is due

    def test_finish_merge_resets_everything(self):
        delta = self.make()
        delta.insert(b"a", 1)
        delta.merge_rows()
        delta.finish_merge(1)
        assert len(delta) == 0
        assert delta.pending_ops == 0
        assert not delta.wants_merge()
        assert delta.stats.merges == 1


# ---------------------------------------------------------- store plumbing


class TestStoreDelta:
    def test_ctor_flag_attaches(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512, delta_index=True)
        assert store.delta_index is not None

    def test_attach_requires_bulk_capable_index(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        store.index = object()  # no bulk_apply_prehashed
        with pytest.raises(ConfigurationError):
            store.attach_delta_index()

    @pytest.mark.parametrize("heap", ["slab", "log"])
    def test_scalar_ops_identical_with_delta(self, heap):
        ref = fresh_store(heap=heap, delta=False)
        dut = fresh_store(heap=heap, merge_threshold=16)
        rng = random.Random(5)
        keys = [b"k%03d" % i for i in range(80)]
        for step in range(1500):
            key = rng.choice(keys)
            roll = rng.random()
            if roll < 0.5:
                value = b"v%06d" % step
                dut_out, ref_out = dut.set(key, value), ref.set(key, value)
                assert (dut_out.replaced is None) == (ref_out.replaced is None)
            elif roll < 0.7:
                assert dut.delete(key) == ref.delete(key)
            else:
                assert dut.get(key) == ref.get(key)
            if dut.needs_maintenance:
                dut.maintenance()
            if ref.needs_maintenance:
                ref.maintenance()
        dut.maintenance(force=True)
        for key in keys:
            assert dut.get(key) == ref.get(key)
        assert dut.delta_index.stats.merges > 0

    def test_overflow_merges_synchronously(self):
        dut = fresh_store(merge_threshold=1 << 30, capacity=8)
        for i in range(32):
            dut.set(b"key-%04d" % i, b"val-%04d" % i)
        # capacity 8 forces merges inline long before any barrier runs
        assert dut.delta_index.stats.merges >= 3
        assert len(dut.delta_index) < 8 + 1
        for i in range(32):
            assert dut.get(b"key-%04d" % i) == b"val-%04d" % i

    def test_force_maintenance_merges_small_delta(self):
        dut = fresh_store(merge_threshold=1 << 30)
        dut.set(b"k", b"v")
        assert len(dut.delta_index) == 1
        dut.maintenance(force=True)
        assert len(dut.delta_index) == 0
        assert dut.get(b"k") == b"v"

    def test_needs_maintenance_reflects_delta(self):
        dut = fresh_store(merge_threshold=2)
        dut.set(b"a", b"1")
        assert not dut.needs_maintenance
        dut.set(b"b", b"2")
        assert dut.needs_maintenance
        dut.maintenance()
        assert not dut.needs_maintenance


# ------------------------------------------------- merge / cache honesty


class TestMergeHonesty:
    """Satellite: the delta never serves (or leaves behind) a stale slot."""

    def test_post_merge_probe_cache_returns_new_slot(self):
        dut = fresh_store(merge_threshold=1 << 30)
        dut.set(b"key", b"old-value")
        dut.maintenance(force=True)  # binding now lives in main
        index = dut.index
        index.probe_cached(b"key")  # warm the probe cache pre-merge
        dut.set(b"key", b"new-value")  # absorbed: main still points at old
        dut.maintenance(force=True)  # merge reassigns the main slot
        assert b"key" not in index._probe_cache  # invalidated, not stale
        sig, buckets = index.probe_cached(b"key")
        [loc] = index.search_prehashed(sig, buckets)[0]
        assert dut.heap.get(loc).value == b"new-value"
        assert dut.get(b"key") == b"new-value"

    def test_merged_delete_clears_main_entry(self):
        dut = fresh_store(merge_threshold=1 << 30)
        dut.set(b"key", b"value")
        dut.maintenance(force=True)
        dut.delete(b"key")
        dut.maintenance(force=True)
        sig, buckets = dut.index.probe(b"key")
        assert dut.index.search_prehashed(sig, buckets)[0] == []
        assert dut.get(b"key") is None

    def test_merge_with_cuckoo_pressure_keeps_all_bindings(self):
        # a small table forces kick chains while merged inserts land
        store = KVStore(memory_bytes=1 << 20, expected_objects=64)
        store.attach_delta_index(merge_threshold=1 << 30)
        items = {b"key-%03d" % i: b"val-%03d" % i for i in range(120)}
        for key, value in items.items():
            store.set(key, value)
        store.maintenance(force=True)
        for key, value in items.items():
            assert store.get(key) == value

    def test_merge_is_idempotent_across_empty_ticks(self):
        dut = fresh_store(merge_threshold=1 << 30)
        dut.set(b"k", b"v")
        dut.maintenance(force=True)
        merges = dut.delta_index.stats.merges
        dut.maintenance(force=True)  # nothing pending: no-op
        assert dut.delta_index.stats.merges == merges
        assert dut.get(b"k") == b"v"


# --------------------------------------------------- tuple vs column paths


@needs_numpy
class TestApplyPaths:
    """The columnar fast path lands the same table as the tuple path."""

    def run_soup(self, columns: bool):
        store = fresh_store(heap="log", merge_threshold=48)
        if columns:
            store.index.ensure_mirror()
        rng = random.Random(11)
        keys = [b"key-%04d" % i for i in range(160)]
        for step in range(2500):
            key = rng.choice(keys)
            roll = rng.random()
            if roll < 0.6:
                store.set(key, b"val-%07d" % step)
            elif roll < 0.75:
                store.delete(key)
            if store.needs_maintenance:
                store.maintenance()
        store.maintenance(force=True)
        return store, keys

    def test_columns_and_rows_land_identical_tables(self):
        col_store, keys = self.run_soup(columns=True)
        row_store, _ = self.run_soup(columns=False)
        assert sorted(col_store.index.entries()) == sorted(row_store.index.entries())
        for key in keys:
            assert col_store.get(key) == row_store.get(key)

    def test_merge_columns_requires_numpy_reachable_keys(self):
        from repro.engine.vector import MAX_VECTOR_KEY_BYTES

        store = fresh_store(merge_threshold=1 << 30)
        store.set(b"x" * (MAX_VECTOR_KEY_BYTES + 1), b"v")
        assert store.delta_index.merge_columns() is None  # falls back to rows
        store.maintenance(force=True)
        assert store.get(b"x" * (MAX_VECTOR_KEY_BYTES + 1)) == b"v"

    def test_bulk_apply_columns_without_mirror_raises(self):
        store = fresh_store(merge_threshold=1 << 30)
        store.set(b"k", b"v")
        plan = store.delta_index.merge_columns()
        assert plan is not None
        keys, signatures, buckets, classes = plan
        with pytest.raises(ConfigurationError):
            store.index.bulk_apply_columns(signatures, buckets, classes)


# ----------------------------------------------------- mirror coherence


@needs_numpy
class TestMirrorCoherence:
    """Satellite: every mirror writer funnels through one store point."""

    @pytest.mark.parametrize("heap", ["slab", "log"])
    def test_mirror_matches_table_after_op_soup(self, heap):
        store = fresh_store(heap=heap, merge_threshold=32)
        index = store.index
        mirror = index.ensure_mirror()
        rng = random.Random(13)
        keys = [b"key-%04d" % i for i in range(200)]
        for step in range(3000):
            key = rng.choice(keys)
            roll = rng.random()
            if roll < 0.55:
                store.set(key, b"val-%07d" % step)
            elif roll < 0.75:
                store.delete(key)
            else:
                store.get(key)
            if store.needs_maintenance:
                store.maintenance()
        store.maintenance(force=True)
        assert store.delta_index.stats.merges > 10
        for bucket_idx, bucket in enumerate(index._buckets):
            for slot_idx, slot in enumerate(bucket):
                assert int(mirror.signatures[bucket_idx, slot_idx]) == slot.signature
                assert int(mirror.locations[bucket_idx, slot_idx]) == slot.location

    def test_signature_column_sorted_and_tracks_tombstones(self):
        store = fresh_store(merge_threshold=1 << 30)
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        store.delete(b"a")  # tombstone must stay visible to the prefilter
        column = store.delta_index.signature_column()
        assert list(column) == sorted(column)
        assert len(column) == 2


# ------------------------------------------------------------- telemetry


class TestDeltaTelemetry:
    def test_merge_metrics_visible_in_console_summary(self, live_telemetry):
        dut = fresh_store(merge_threshold=4)
        for i in range(12):
            dut.set(b"key-%02d" % i, b"val")
            if dut.needs_maintenance:
                dut.maintenance()
        dut.maintenance(force=True)
        text = console_summary(get_telemetry())
        assert "delta index" in text
        assert "repro_delta_merges_total" in text
        assert "repro_delta_index_size" in text
        assert "repro_delta_merge_ns" in text
