"""Coordinator lifecycle tests against real ``repro cluster`` subprocesses.

The load-bearing regression here is orphaned children: a coordinator that
dies on SIGTERM must take every spawned ``repro serve`` process with it,
because leaked servers keep their UDP ports and silently absorb the next
test run's traffic.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster.serving import ClusterError, control_request, free_tcp_port

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _wait_ready(control, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            return control_request(control, {"cmd": "ping"}, timeout_s=2.0)
        except (OSError, ClusterError):
            time.sleep(0.1)
    raise AssertionError("coordinator never became ready")


@pytest.fixture
def cluster(tmp_path):
    port = free_tcp_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "--nodes",
            "2",
            "--control-port",
            str(port),
            "--workdir",
            str(tmp_path),
            "--memory-mb",
            "8",
            "--expected-objects",
            "4096",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    control = ("127.0.0.1", port)
    try:
        _wait_ready(control)
        yield process, control
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)
        # Belt and braces: never leak servers past the test, even on failure.
        try:
            status = control_request(control, {"cmd": "status"}, timeout_s=2.0)
            for entry in status["nodes"].values():
                if _alive(entry["pid"]):
                    os.kill(entry["pid"], signal.SIGKILL)
        except (OSError, ClusterError):
            pass


def test_sigterm_tears_down_every_child(cluster):
    process, control = cluster
    status = control_request(control, {"cmd": "status"}, timeout_s=10.0)
    pids = [entry["pid"] for entry in status["nodes"].values()]
    assert len(pids) == 2
    assert all(_alive(pid) for pid in pids)
    assert all(entry["alive"] for entry in status["nodes"].values())

    process.send_signal(signal.SIGTERM)
    process.wait(timeout=30)
    assert process.returncode == 0

    # Children must be gone with the coordinator — the orphan regression.
    deadline = time.monotonic() + 10.0
    while any(_alive(pid) for pid in pids) and time.monotonic() < deadline:
        time.sleep(0.1)
    orphans = [pid for pid in pids if _alive(pid)]
    assert not orphans, f"orphaned cluster children: {orphans}"

    # And the control port must be released.
    with pytest.raises((OSError, ClusterError)):
        control_request(control, {"cmd": "ping"}, timeout_s=2.0)


def test_control_shutdown_matches_sigterm(cluster):
    process, control = cluster
    status = control_request(control, {"cmd": "status"}, timeout_s=10.0)
    pids = [entry["pid"] for entry in status["nodes"].values()]
    reply = control_request(control, {"cmd": "shutdown"}, timeout_s=30.0)
    assert reply["ok"]
    process.wait(timeout=30)
    deadline = time.monotonic() + 10.0
    while any(_alive(pid) for pid in pids) and time.monotonic() < deadline:
        time.sleep(0.1)
    assert not any(_alive(pid) for pid in pids)


def test_cluster_serves_traffic_end_to_end(cluster):
    """Sanity: the spawned fleet answers real routed queries."""
    from repro.client import ClusterClient

    _, control = cluster
    manifest = control_request(control, {"cmd": "manifest"}, timeout_s=10.0)
    assert manifest["manifest"]["epoch"] == 1
    with ClusterClient(control) as client:
        for i in range(32):
            client.set(f"coord-{i}".encode(), f"val-{i}".encode())
        for i in range(32):
            assert client.get(f"coord-{i}".encode()) == f"val-{i}".encode()
    status = control_request(control, {"cmd": "status"}, timeout_s=10.0)
    keys = sum(e["stats"]["keys"] for e in status["nodes"].values())
    assert keys == 32


def test_status_reports_dead_children(cluster):
    process, control = cluster
    status = control_request(control, {"cmd": "status"}, timeout_s=10.0)
    victim_name, victim = sorted(status["nodes"].items())[0]
    os.kill(victim["pid"], signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        status = control_request(control, {"cmd": "status"}, timeout_s=10.0)
        if not status["nodes"][victim_name]["alive"]:
            break
        time.sleep(0.1)
    assert not status["nodes"][victim_name]["alive"]
