"""Functional-pipeline tests: every configuration computes identical results."""


from repro.core.config_search import enumerate_configs
from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import Task
from repro.kv.protocol import Query, QueryType, ResponseStatus, decode_responses
from repro.kv.store import KVStore
from repro.net.packets import frames_for_queries
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import QueryStream, standard_workload


def fresh_pipeline(memory=8 << 20, expected=8192):
    store = KVStore(memory_bytes=memory, expected_objects=expected)
    return FunctionalPipeline(store), store


def run_workload(config: PipelineConfig, batches: list[list[Query]]):
    """Run batches through a fresh store; return all response tuples."""
    pipeline, store = fresh_pipeline()
    out = []
    for batch in batches:
        result = pipeline.process_batch(config, batch)
        out.extend((r.status, r.value) for r in result.responses)
    return out


def workload_batches(label="K16-G95-S", batches=4, size=600, seed=5):
    stream = QueryStream(standard_workload(label), num_keys=800, seed=seed)
    return [stream.next_batch(size) for _ in range(batches)]


class TestBasicSemantics:
    def test_set_then_get_within_batch(self):
        """Batch semantics: MM+Insert complete before Searches, so a GET in
        the same batch as its SET finds the value."""
        pipeline, _ = fresh_pipeline()
        batch = [
            Query(QueryType.SET, b"batchkey", b"batchval"),
            Query(QueryType.GET, b"batchkey"),
        ]
        result = pipeline.process_batch(megakv_coupled_config(), batch)
        assert result.responses[0].status is ResponseStatus.STORED
        assert result.responses[1].status is ResponseStatus.OK
        assert result.responses[1].value == b"batchval"

    def test_get_missing(self):
        pipeline, _ = fresh_pipeline()
        result = pipeline.process_batch(
            megakv_coupled_config(), [Query(QueryType.GET, b"nope")]
        )
        assert result.responses[0].status is ResponseStatus.NOT_FOUND

    def test_delete_round_trip(self):
        pipeline, _ = fresh_pipeline()
        config = megakv_coupled_config()
        pipeline.process_batch(config, [Query(QueryType.SET, b"k", b"v")])
        result = pipeline.process_batch(config, [Query(QueryType.DELETE, b"k")])
        assert result.responses[0].status is ResponseStatus.DELETED
        result = pipeline.process_batch(config, [Query(QueryType.GET, b"k")])
        assert result.responses[0].status is ResponseStatus.NOT_FOUND

    def test_delete_missing(self):
        pipeline, _ = fresh_pipeline()
        result = pipeline.process_batch(
            megakv_coupled_config(), [Query(QueryType.DELETE, b"ghost")]
        )
        assert result.responses[0].status is ResponseStatus.NOT_FOUND

    def test_overwrite_within_and_across_batches(self):
        pipeline, _ = fresh_pipeline()
        config = megakv_coupled_config()
        pipeline.process_batch(config, [Query(QueryType.SET, b"k", b"v1")])
        pipeline.process_batch(config, [Query(QueryType.SET, b"k", b"v2")])
        result = pipeline.process_batch(config, [Query(QueryType.GET, b"k")])
        assert result.responses[0].value == b"v2"

    def test_response_frames_decode(self):
        pipeline, _ = fresh_pipeline()
        batch = [Query(QueryType.SET, b"k", b"v"), Query(QueryType.GET, b"k")]
        result = pipeline.process_batch(megakv_coupled_config(), batch)
        decoded = []
        for frame in result.frames:
            decoded.extend(decode_responses(frame.payload))
        assert [r.status for r in decoded] == [r.status for r in result.responses]

    def test_process_frames_entry_point(self):
        pipeline, _ = fresh_pipeline()
        frames = frames_for_queries([Query(QueryType.SET, b"k", b"v")])
        result = pipeline.process_frames(megakv_coupled_config(), frames)
        assert result.responses[0].status is ResponseStatus.STORED


class TestConfigEquivalence:
    """The core dynamic-pipeline correctness property: all legal
    configurations produce byte-identical responses."""

    def test_all_configs_agree_on_read_heavy(self):
        batches = workload_batches("K16-G95-S")
        reference = None
        for config in enumerate_configs(4, work_stealing=False):
            outcome = run_workload(config, batches)
            if reference is None:
                reference = outcome
            else:
                assert outcome == reference, f"divergence under {config.label}"

    def test_all_configs_agree_on_write_heavy(self):
        batches = workload_batches("K8-G50-U", seed=9)
        reference = run_workload(megakv_coupled_config(), batches)
        for config in enumerate_configs(4, work_stealing=False)[:8]:
            assert run_workload(config, batches) == reference

    def test_work_stealing_preserves_results(self):
        batches = workload_batches("K16-G95-S", seed=13)
        baseline = run_workload(megakv_coupled_config(), batches)
        stealing = run_workload(
            megakv_coupled_config().with_work_stealing(True), batches
        )
        assert stealing == baseline

    def test_reconfiguration_mid_stream(self):
        """Batches processed under different configs as the pipeline adapts
        still yield the same results as a single static config."""
        batches = workload_batches("K16-G95-S", batches=6, seed=17)
        configs = enumerate_configs(4, work_stealing=False)
        pipeline, _ = fresh_pipeline()
        dynamic = []
        for i, batch in enumerate(batches):
            result = pipeline.process_batch(configs[i % len(configs)], batch)
            dynamic.extend((r.status, r.value) for r in result.responses)
        static = run_workload(megakv_coupled_config(), batches)
        assert dynamic == static


class TestWorkStealingClaims:
    def test_claims_recorded_for_gpu_stage(self):
        batches = workload_batches("K16-G95-S", batches=1, size=500)
        pipeline, _ = fresh_pipeline()
        config = PipelineConfig.assemble(
            (Task.IN, Task.KC, Task.RD), total_cpu_cores=4, work_stealing=True
        )
        result = pipeline.process_batch(config, batches[0])
        assert result.steal_claims.get("gpu", 0) > 0
        assert result.steal_claims.get("cpu", 0) > 0

    def test_claims_cover_batch_per_phase(self):
        batches = workload_batches("K16-G95-S", batches=1, size=640)
        pipeline, _ = fresh_pipeline()
        config = PipelineConfig.assemble((Task.IN,), total_cpu_cores=4)
        result = pipeline.process_batch(config, batches[0])
        total_chunks = sum(result.steal_claims.values())
        chunks_per_phase = -(-640 // 64)
        # The [IN] stage has three phases (Delete, Insert, Search), each
        # fully claimed once.
        assert total_chunks == 3 * chunks_per_phase


class TestEvictionThroughPipeline:
    def test_eviction_generates_correct_responses(self):
        """A tiny store evicts under load; every response stays well-formed
        and evicted keys read back as NOT_FOUND (never stale values)."""
        store = KVStore(memory_bytes=1 << 20, expected_objects=70000, heap="slab")
        pipeline = FunctionalPipeline(store)
        config = megakv_coupled_config()
        keys = [f"key-{i:06d}".encode() for i in range(40_000)]
        for start in range(0, len(keys), 1000):
            batch = [Query(QueryType.SET, k, b"x" * 8) for k in keys[start : start + 1000]]
            result = pipeline.process_batch(config, batch)
            assert all(r.status is ResponseStatus.STORED for r in result.responses)
        assert store.heap.stats.evictions > 0
        # Read every key: each is either the stored value or a miss.
        hits = 0
        for start in range(0, len(keys), 1000):
            batch = [Query(QueryType.GET, k) for k in keys[start : start + 1000]]
            result = pipeline.process_batch(config, batch)
            for response in result.responses:
                if response.status is ResponseStatus.OK:
                    assert response.value == b"x" * 8
                    hits += 1
                else:
                    assert response.status is ResponseStatus.NOT_FOUND
        assert 0 < hits < len(keys)
