"""Unit tests for the Mega-KV baseline (coupled and discrete)."""


from repro.core.tasks import IndexOp, Task
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV, ProcessorKind
from repro.pipeline.megakv import (
    MEGAKV_PORT_OVERHEAD,
    measure_megakv,
    measure_megakv_discrete,
    megakv_coupled_config,
    megakv_discrete_config,
    megakv_executor,
)

from conftest import profile_for


class TestConfigs:
    def test_coupled_static_pipeline(self):
        config = megakv_coupled_config()
        assert config.stages[1].tasks == (Task.IN,)
        assert config.stages[1].processor is ProcessorKind.GPU
        assert not config.work_stealing
        assert not config.insert_on_cpu and not config.delete_on_cpu

    def test_all_index_ops_on_gpu(self):
        config = megakv_coupled_config()
        assert set(config.gpu_stage.index_ops) == set(IndexOp)

    def test_discrete_uses_all_xeon_cores(self):
        config = megakv_discrete_config()
        assert sum(s.cores for s in config.stages if s.cores) == 16


class TestPortOverhead:
    def test_port_overhead_slows_coupled_baseline(self):
        """Mega-KV (Coupled) is an OpenCL port: its CPU-side work carries
        overhead relative to DIDO's native implementation."""
        from repro.pipeline.executor import PipelineExecutor

        profile = profile_for("K16-G95-S")
        native = PipelineExecutor(APU_A10_7850K).measure(
            megakv_coupled_config(), profile
        )
        ported = megakv_executor(APU_A10_7850K).measure(
            megakv_coupled_config(), profile
        )
        assert ported.throughput_mops < native.throughput_mops
        assert MEGAKV_PORT_OVERHEAD > 1.0

    def test_discrete_has_no_port_overhead(self):
        """The discrete baseline is the original native CUDA system."""
        from repro.core.tasks import DEFAULT_CALIBRATION

        ex = megakv_executor(DISCRETE_MEGAKV)
        assert ex.task_model.constants == DEFAULT_CALIBRATION


class TestMeasurements:
    def test_measure_coupled(self):
        m = measure_megakv(APU_A10_7850K, profile_for("K16-G95-S"))
        assert m.throughput_mops > 0

    def test_measure_discrete_faster(self):
        """Figure 16: the discrete testbed far outruns the APU."""
        profile = profile_for("K8-G95-U")
        coupled = measure_megakv(APU_A10_7850K, profile)
        discrete = measure_megakv_discrete(profile)
        assert discrete.throughput_mops > 3 * coupled.throughput_mops

    def test_discrete_gap_larger_for_small_kv(self):
        """The discrete advantage shrinks for large values (PCIe and host
        processing matter more)."""
        gap = {}
        for label in ("K8-G95-U", "K128-G95-U"):
            profile = profile_for(label)
            coupled = measure_megakv(APU_A10_7850K, profile).throughput_mops
            discrete = measure_megakv_discrete(profile).throughput_mops
            gap[label] = discrete / coupled
        assert gap["K8-G95-U"] != gap["K128-G95-U"]  # workload-dependent gap
        assert min(gap.values()) > 2.0
