"""Tests for trace recording, replay, and summarisation."""

import pytest

from repro.core.dido import DidoSystem
from repro.errors import ProtocolError, WorkloadError
from repro.kv.protocol import Query, QueryType
from repro.workloads.trace import (
    iter_trace,
    read_trace,
    replay_trace,
    summarize_trace,
    write_trace,
)
from repro.workloads.ycsb import QueryStream, standard_workload


def sample_queries(n=500, label="K16-G95-S", seed=4):
    return QueryStream(standard_workload(label), num_keys=300, seed=seed).next_batch(n)


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        queries = sample_queries()
        path = tmp_path / "trace.bin"
        assert write_trace(path, queries) == len(queries)
        loaded = read_trace(path)
        assert [(q.qtype, q.key, q.value) for q in loaded] == [
            (q.qtype, q.key, q.value) for q in queries
        ]

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_trace(path, [])
        assert read_trace(path) == []

    def test_iter_batches(self, tmp_path):
        queries = sample_queries(1000)
        path = tmp_path / "trace.bin"
        write_trace(path, queries)
        batches = list(iter_trace(path, batch_size=256))
        assert [len(b) for b in batches] == [256, 256, 256, 232]
        flat = [q.key for b in batches for q in b]
        assert flat == [q.key for q in queries]

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTATRACE" * 4)
        with pytest.raises(ProtocolError):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"DI")
        with pytest.raises(ProtocolError):
            read_trace(path)

    def test_count_mismatch(self, tmp_path):
        import struct

        path = tmp_path / "lying.bin"
        path.write_bytes(struct.pack("<8sQ", b"DIDOTRC1", 99))
        with pytest.raises(ProtocolError):
            read_trace(path)

    def test_bad_batch_size(self, tmp_path):
        path = tmp_path / "t.bin"
        write_trace(path, sample_queries(10))
        with pytest.raises(WorkloadError):
            list(iter_trace(path, batch_size=0))


class TestSummary:
    def test_matches_generator_parameters(self):
        queries = sample_queries(5000)
        summary = summarize_trace(queries)
        assert summary.queries == 5000
        assert summary.get_ratio == pytest.approx(0.95, abs=0.02)
        assert summary.avg_key_size == 16.0
        assert summary.avg_value_size == 64.0
        assert 0 < summary.distinct_keys <= 300

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            summarize_trace([])

    def test_set_only(self):
        queries = [Query(QueryType.SET, b"k", b"v" * 10)]
        summary = summarize_trace(queries)
        assert summary.get_ratio == 0.0
        assert summary.avg_value_size == 10.0


class TestReplay:
    def test_replay_drives_system(self, tmp_path):
        path = tmp_path / "trace.bin"
        write_trace(path, sample_queries(900))
        system = DidoSystem(memory_bytes=8 << 20, expected_objects=4096)
        processed = replay_trace(path, system, batch_size=300)
        assert processed == 900
        report = system.report()
        assert report.batches == 3
        assert report.replans >= 1

    def test_replay_is_faithful(self, tmp_path):
        """Replaying a trace yields the same responses as the live stream."""
        queries = sample_queries(600, seed=9)
        path = tmp_path / "trace.bin"
        write_trace(path, queries)
        live = DidoSystem(memory_bytes=8 << 20, expected_objects=4096)
        live_out = [
            (r.status, r.value) for r in live.process(queries).responses
        ]
        replayed = DidoSystem(memory_bytes=8 << 20, expected_objects=4096)
        replay_out = []
        for batch in iter_trace(path, batch_size=600):
            replay_out.extend(
                (r.status, r.value) for r in replayed.process(batch).responses
            )
        assert replay_out == live_out
