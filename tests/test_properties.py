"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline_config import PipelineConfig, gpu_segments
from repro.core.work_stealing import TagArray, plan_steal
from repro.errors import CapacityError
from repro.hardware.memory import AccessPattern, object_access_pattern
from repro.hardware.processor import gpu_batch_efficiency, gpu_task_time_ns
from repro.hardware.specs import APU_A10_7850K
from repro.kv.hashtable import CuckooHashTable
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_queries,
    decode_responses,
    encode_queries,
    encode_responses,
)
from repro.kv.slab import SlabAllocator
from repro.kv.objects import KVObject
from repro.kv.store import KVStore
from repro.workloads.distributions import ZipfKeys

keys = st.binary(min_size=1, max_size=64)
values = st.binary(min_size=0, max_size=256)


# ------------------------------------------------------------------ protocol


@given(st.lists(st.tuples(st.sampled_from(list(QueryType)), keys, values), max_size=50))
def test_query_codec_round_trip(raw):
    queries = []
    for qtype, key, value in raw:
        queries.append(Query(qtype, key, value if qtype is QueryType.SET else b""))
    decoded = decode_queries(encode_queries(queries))
    assert [(q.qtype, q.key, q.value) for q in decoded] == [
        (q.qtype, q.key, q.value) for q in queries
    ]


@given(st.lists(st.tuples(st.sampled_from(list(ResponseStatus)), values), max_size=50))
def test_response_codec_round_trip(raw):
    responses = [Response(status, value) for status, value in raw]
    decoded = decode_responses(encode_responses(responses))
    assert [(r.status, r.value) for r in decoded] == [(r.status, r.value) for r in responses]


# ------------------------------------------------------------------- hashing


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(keys, st.integers(min_value=0, max_value=10**6), max_size=120))
def test_cuckoo_insert_search_delete_invariant(mapping):
    """Everything inserted is findable; after deletion it is gone; the count
    always matches."""
    table = CuckooHashTable(num_buckets=256)
    try:
        for key, location in mapping.items():
            table.insert(key, location)
    except CapacityError:
        return  # legitimate at extreme load; not this property's subject
    assert len(table) == len(mapping)
    for key, location in mapping.items():
        candidates, _ = table.search(key)
        assert location in candidates
    for key, location in mapping.items():
        assert table.delete(key, location)
    assert len(table) == 0


@settings(max_examples=20, deadline=None)
@given(st.lists(keys, unique=True, min_size=1, max_size=100))
def test_store_get_returns_latest_set(key_list):
    store = KVStore(memory_bytes=8 << 20, expected_objects=1024)
    expected = {}
    for i, key in enumerate(key_list):
        value = f"value-{i}".encode()
        store.set(key, value)
        expected[key] = value
    for key, value in expected.items():
        assert store.get(key) == value


# ---------------------------------------------------------------------- slab


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=200))
def test_slab_locations_unique_and_live_count_consistent(sizes):
    slab = SlabAllocator(32 << 20)
    locations = set()
    live = 0
    for i, size in enumerate(sizes):
        loc, evicted = slab.allocate(KVObject(f"k{i}".encode(), b"x" * size))
        assert loc not in locations
        locations.add(loc)
        live += 1
        if evicted is not None:
            live -= 1
    assert len(slab) == live


# ------------------------------------------------------------- distributions


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=10, max_value=100_000),
    st.floats(min_value=0.2, max_value=1.5),
)
def test_zipf_top_fraction_monotone_and_bounded(num_keys, skew):
    dist = ZipfKeys(num_keys, skew=skew, seed=1)
    previous = 0.0
    for k in (1, num_keys // 10 + 1, num_keys // 2 + 1, num_keys):
        fraction = dist.top_fraction(k)
        assert 0.0 <= fraction <= 1.0
        assert fraction >= previous - 1e-12
        previous = fraction
    assert dist.top_fraction(num_keys) == pytest.approx(1.0)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=100, max_value=50_000))
def test_zipf_samples_in_range(num_keys):
    dist = ZipfKeys(num_keys, seed=2)
    ranks = dist.sample(500)
    assert ranks.min() >= 0
    assert ranks.max() < num_keys


# ------------------------------------------------------------- work stealing


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=256),
)
def test_tag_array_exactly_once(batch, chunk):
    tags = TagArray(batch, chunk=chunk)
    seen = []
    reverse = False
    while (claimed := tags.claim_next("x", reverse=reverse)) is not None:
        seen.extend(claimed)
        reverse = not reverse
    assert sorted(seen) == list(range(batch))


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1e7),
    st.floats(min_value=0.0, max_value=1e7),
    st.floats(min_value=1.0, max_value=1e7),
)
def test_equation3_bounds(owner, helper_own, helper_work):
    """The steal finish time never exceeds the solo time and never beats
    the helper's own finish time."""
    outcome = plan_steal(owner, helper_own, helper_work)
    assert outcome.finish_ns <= owner + 1e-6
    assert outcome.finish_ns >= min(owner, helper_own) - 1e-6
    assert 0.0 <= outcome.stolen_fraction <= 1.0


# ------------------------------------------------------------------ hardware


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=10**6))
def test_gpu_efficiency_bounds(batch):
    eff = gpu_batch_efficiency(APU_A10_7850K.gpu, batch)
    assert 0.0 < eff < 1.0


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=64, max_value=100_000),
    st.floats(min_value=0.0, max_value=8.0),
    st.floats(min_value=0.0, max_value=32.0),
)
def test_gpu_time_monotone_in_batch(batch, mem, cache):
    gpu = APU_A10_7850K.gpu
    pattern = AccessPattern(mem, cache)
    t1 = gpu_task_time_ns(gpu, batch, 50.0, pattern)
    t2 = gpu_task_time_ns(gpu, batch * 2, 50.0, pattern)
    assert t2 >= t1


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=65536), st.sampled_from([32, 64, 128]))
def test_object_access_pattern_conserves_lines(obj_bytes, line):
    plain = object_access_pattern(obj_bytes, line)
    cached = object_access_pattern(obj_bytes, line, already_cached=True)
    total_plain = plain.memory_accesses + plain.cache_accesses
    total_cached = cached.memory_accesses + cached.cache_accesses
    assert total_plain == total_cached  # caching changes kind, not count
    assert cached.memory_accesses == 0.0
    if obj_bytes > 0:
        assert total_plain == math.ceil(obj_bytes / line) or total_plain == 1


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=10.0),
    st.floats(min_value=0.0, max_value=10.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_hot_fraction_conserves_accesses(mem, cache, hot):
    p = AccessPattern(mem, cache)
    q = p.with_hot_fraction(hot)
    assert q.memory_accesses + q.cache_accesses == pytest.approx(mem + cache)
    assert q.memory_accesses <= mem + 1e-12


# -------------------------------------------------------------------- engine


#: Small key pool so random batches hit the interesting collisions: SET
#: followed by GET/DELETE of the same key in one batch, repeated SETs
#: (batch-local insert dedup), DELETE of a key SET earlier in the batch.
engine_keys = st.sampled_from([b"a", b"b", b"hot", b"k-1", b"k-2", b"longer-key"])


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(gpu_segments()),
    st.booleans(),
    st.lists(
        st.tuples(st.sampled_from(list(QueryType)), engine_keys, values),
        max_size=60,
    ),
)
def test_engine_matches_reference_for_any_config_and_batch(segment, stealing, raw):
    """Property: for every legal pipeline configuration, the columnar
    engine produces byte-identical response frames (and identical store
    statistics) to the preserved per-query reference path."""
    from repro.core.pipeline_config import PipelineConfig as PC
    from repro.pipeline.functional import FunctionalPipeline

    config = PC.assemble(
        segment,
        total_cpu_cores=4,
        work_stealing=stealing and bool(segment),
    )
    queries = [
        Query(qtype, key, value if qtype is QueryType.SET else b"")
        for qtype, key, value in raw
    ]

    def run(engine):
        store = KVStore(memory_bytes=4 << 20, expected_objects=2048)
        pipeline = FunctionalPipeline(store, engine=engine)
        result = pipeline.process_batch(config, queries)
        return b"".join(f.payload for f in result.frames), store.stats

    reference_frames, reference_stats = run("reference")
    columnar_frames, columnar_stats = run(None)
    assert columnar_frames == reference_frames
    assert columnar_stats == reference_stats


# ------------------------------------------------------------------- configs


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
@given(
    st.sampled_from(gpu_segments()),
    st.integers(min_value=2, max_value=16),
    st.booleans(),
    st.booleans(),
)
def test_assembled_configs_always_valid(segment, cores, insert_cpu, delete_cpu):
    from repro.core.tasks import TASK_ORDER, Task
    from repro.errors import ConfigurationError

    search_on_gpu = bool(segment) and Task.IN in segment
    if (insert_cpu or delete_cpu) and not search_on_gpu:
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble(
                segment,
                total_cpu_cores=cores,
                insert_on_cpu=insert_cpu,
                delete_on_cpu=delete_cpu,
            )
        return
    config = PipelineConfig.assemble(
        segment,
        total_cpu_cores=cores,
        insert_on_cpu=insert_cpu,
        delete_on_cpu=delete_cpu,
    )
    assert tuple(t for s in config.stages for t in s.tasks) == TASK_ORDER
    cpu_cores = sum(s.cores for s in config.stages if s.cores)
    assert cpu_cores == cores
