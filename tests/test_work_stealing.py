"""Unit tests for the tag array and the Equation-3 stealing estimate."""

import threading

import pytest

from repro.core.work_stealing import WAVEFRONT, TagArray, plan_steal
from repro.errors import ConfigurationError


class TestTagArray:
    def test_tag_count(self):
        assert TagArray(640).num_tags == 10
        assert TagArray(641).num_tags == 11
        assert TagArray(1).num_tags == 1

    def test_claims_cover_batch_exactly_once(self):
        tags = TagArray(1000)
        seen = []
        while (claimed := tags.claim_next("owner")) is not None:
            seen.extend(claimed)
        assert sorted(seen) == list(range(1000))

    def test_forward_and_reverse_meet_in_middle(self):
        tags = TagArray(64 * 10)
        owner_chunks, helper_chunks = [], []
        for turn in range(10):
            if turn % 2 == 0:
                owner_chunks.append(tags.claim_next("gpu"))
            else:
                helper_chunks.append(tags.claim_next("cpu", reverse=True))
        assert tags.all_claimed()
        covered = sorted(i for r in owner_chunks + helper_chunks for i in r)
        assert covered == list(range(640))

    def test_owner_accounting(self):
        tags = TagArray(64 * 4)
        tags.claim_next("gpu")
        tags.claim_next("cpu", reverse=True)
        tags.claim_next("gpu")
        assert tags.claims_by("gpu") == 2
        assert tags.claims_by("cpu") == 1

    def test_last_chunk_partial(self):
        tags = TagArray(100, chunk=64)
        first = tags.claim_next("a")
        second = tags.claim_next("a")
        assert len(first) == 64
        assert len(second) == 36
        assert tags.claim_next("a") is None

    def test_coverage(self):
        tags = TagArray(100, chunk=64)
        tags.claim_next("a")
        assert tags.coverage() == 64

    def test_thread_safety(self):
        """Two racing claimants never claim the same chunk."""
        tags = TagArray(64 * 200)
        claimed: dict[str, list[range]] = {"a": [], "b": []}

        def worker(name, reverse):
            while (r := tags.claim_next(name, reverse=reverse)) is not None:
                claimed[name].append(r)

        threads = [
            threading.Thread(target=worker, args=("a", False)),
            threading.Thread(target=worker, args=("b", True)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        indices = sorted(i for rs in claimed.values() for r in rs for i in r)
        assert indices == list(range(64 * 200))

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            TagArray(0)
        with pytest.raises(ConfigurationError):
            TagArray(10, chunk=0)

    def test_default_chunk_is_wavefront(self):
        assert TagArray(256).chunk == WAVEFRONT == 64


class TestPlanSteal:
    def test_no_steal_when_helper_busy(self):
        outcome = plan_steal(t_owner_work=100.0, t_helper_own=120.0, t_helper_work=50.0)
        assert outcome.finish_ns == 100.0
        assert outcome.stolen_fraction == 0.0

    def test_paper_equation_form(self):
        """T = T_B + T^CPU_A (T^GPU_A - T_B) / (T^CPU_A + T^GPU_A)."""
        t_gpu_a, t_b, t_cpu_a = 300.0, 100.0, 200.0
        outcome = plan_steal(t_gpu_a, t_b, t_cpu_a)
        expected = t_b + t_cpu_a * (t_gpu_a - t_b) / (t_cpu_a + t_gpu_a)
        assert outcome.finish_ns == pytest.approx(expected)

    def test_finish_between_helper_own_and_owner(self):
        outcome = plan_steal(300.0, 100.0, 200.0)
        assert 100.0 < outcome.finish_ns < 300.0

    def test_fast_helper_steals_more(self):
        slow = plan_steal(300.0, 100.0, 600.0)
        fast = plan_steal(300.0, 100.0, 150.0)
        assert fast.stolen_fraction > slow.stolen_fraction
        assert fast.finish_ns < slow.finish_ns

    def test_idle_helper_from_zero(self):
        outcome = plan_steal(300.0, 0.0, 300.0)
        # Equal speeds, helper free the whole time: work splits in half.
        assert outcome.finish_ns == pytest.approx(150.0)
        assert outcome.stolen_fraction == pytest.approx(0.5)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_steal(-1.0, 0.0, 1.0)

    def test_zero_helper_work_time(self):
        outcome = plan_steal(100.0, 10.0, 0.0)
        assert outcome.stolen_fraction == 0.0
