"""Unit tests for the cache/memory access-cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.memory import (
    AccessPattern,
    MemorySystem,
    access_cost_ns,
    object_access_pattern,
)
from repro.hardware.specs import APU_A10_7850K, ProcessorKind


class TestAccessPattern:
    def test_add(self):
        total = AccessPattern(1.0, 2.0) + AccessPattern(0.5, 1.0)
        assert total.memory_accesses == pytest.approx(1.5)
        assert total.cache_accesses == pytest.approx(3.0)

    def test_scaled(self):
        p = AccessPattern(2.0, 4.0).scaled(0.5)
        assert p.memory_accesses == pytest.approx(1.0)
        assert p.cache_accesses == pytest.approx(2.0)

    def test_hot_fraction_moves_accesses(self):
        p = AccessPattern(2.0, 1.0).with_hot_fraction(0.5)
        assert p.memory_accesses == pytest.approx(1.0)
        assert p.cache_accesses == pytest.approx(2.0)

    def test_hot_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            AccessPattern(1.0, 0.0).with_hot_fraction(1.5)

    def test_hot_fraction_preserves_total(self):
        p = AccessPattern(3.0, 2.0)
        q = p.with_hot_fraction(0.7)
        assert p.memory_accesses + p.cache_accesses == pytest.approx(
            q.memory_accesses + q.cache_accesses
        )


class TestObjectAccessPattern:
    def test_one_line_object(self):
        p = object_access_pattern(40, 64)
        assert p.memory_accesses == 1.0
        assert p.cache_accesses == 0.0

    def test_multi_line_object(self):
        """Paper: one random access plus ceil(L/C)-1 cache accesses."""
        p = object_access_pattern(300, 64)
        assert p.memory_accesses == 1.0
        assert p.cache_accesses == 4.0  # ceil(300/64)=5 lines

    def test_already_cached(self):
        p = object_access_pattern(300, 64, already_cached=True)
        assert p.memory_accesses == 0.0
        assert p.cache_accesses == 5.0

    def test_sequential(self):
        p = object_access_pattern(300, 64, sequential=True)
        assert p.memory_accesses == 0.0
        assert p.cache_accesses == 5.0

    def test_zero_bytes(self):
        p = object_access_pattern(0, 64)
        assert p.memory_accesses == 0.0 and p.cache_accesses == 0.0

    def test_exact_line_boundary(self):
        p = object_access_pattern(128, 64)
        assert p.memory_accesses == 1.0
        assert p.cache_accesses == 1.0


class TestAccessCost:
    def test_random_cost_uses_mlp(self):
        cpu = APU_A10_7850K.cpu
        cost = access_cost_ns(AccessPattern(1.0, 0.0), cpu)
        assert cost == pytest.approx(cpu.mem_latency_ns / cpu.mem_parallelism)

    def test_cache_cost(self):
        cpu = APU_A10_7850K.cpu
        cost = access_cost_ns(AccessPattern(0.0, 3.0), cpu)
        assert cost == pytest.approx(3 * cpu.cache_latency_ns)

    def test_interference_scales(self):
        cpu = APU_A10_7850K.cpu
        base = access_cost_ns(AccessPattern(1.0, 1.0), cpu)
        slowed = access_cost_ns(AccessPattern(1.0, 1.0), cpu, interference=1.5)
        assert slowed == pytest.approx(1.5 * base)

    def test_interference_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            access_cost_ns(AccessPattern(1.0, 0.0), APU_A10_7850K.cpu, interference=0.9)


class TestMemorySystem:
    @pytest.fixture
    def mem(self):
        return MemorySystem(APU_A10_7850K)

    def test_object_capacity_shrinks_with_size(self, mem):
        small = mem.object_capacity(8, 8)
        large = mem.object_capacity(128, 1024)
        assert small > large > 0

    def test_capacity_accounts_overhead(self, mem):
        per_object = 8 + 8 + MemorySystem.OBJECT_OVERHEAD_BYTES
        expected = APU_A10_7850K.shared_memory_bytes // per_object
        assert mem.object_capacity(8, 8) == expected

    def test_hot_fraction_zero_for_uniform_large_store(self, mem):
        p = mem.hot_fraction(ProcessorKind.CPU, 8, 8, zipf_skew=0.0)
        assert p < 0.01

    def test_hot_fraction_substantial_for_zipf(self, mem):
        p = mem.hot_fraction(ProcessorKind.CPU, 8, 8, zipf_skew=0.99)
        assert 0.3 < p < 0.95

    def test_hot_fraction_smaller_on_gpu(self, mem):
        cpu = mem.hot_fraction(ProcessorKind.CPU, 16, 64, zipf_skew=0.99)
        gpu = mem.hot_fraction(ProcessorKind.GPU, 16, 64, zipf_skew=0.99)
        assert gpu < cpu

    def test_hot_fraction_decreases_with_object_size(self, mem):
        small = mem.hot_fraction(ProcessorKind.CPU, 8, 8, zipf_skew=0.99)
        large = mem.hot_fraction(ProcessorKind.CPU, 128, 1024, zipf_skew=0.99)
        assert large < small

    def test_hot_fraction_full_when_store_fits_in_cache(self, mem):
        p = mem.hot_fraction(ProcessorKind.CPU, 8, 8, zipf_skew=0.99, total_objects=100)
        assert p == pytest.approx(1.0)

    def test_bandwidth(self, mem):
        assert mem.bytes_per_second() == pytest.approx(21.3e9)
