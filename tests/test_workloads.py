"""Unit tests for workload generators: datasets, distributions, YCSB,
Facebook approximations, and alternating dynamic workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kv.protocol import QueryType
from repro.workloads.datasets import DATASETS, K8, K16, K32, K128, Dataset, dataset_by_name
from repro.workloads.distributions import UniformKeys, ZipfKeys, make_distribution
from repro.workloads.dynamic import AlternatingWorkload
from repro.workloads.facebook import FACEBOOK_ETC, FACEBOOK_USR, FacebookQueryStream
from repro.workloads.ycsb import (
    STANDARD_WORKLOADS,
    QueryStream,
    WorkloadSpec,
    standard_workload,
)


class TestDatasets:
    def test_paper_sizes(self):
        assert (K8.key_size, K8.value_size) == (8, 8)
        assert (K16.key_size, K16.value_size) == (16, 64)
        assert (K32.key_size, K32.value_size) == (32, 256)
        assert (K128.key_size, K128.value_size) == (128, 1024)

    def test_keys_distinct_and_sized(self):
        for dataset in DATASETS:
            keys = {dataset.key_for_rank(r) for r in range(100)}
            assert len(keys) == 100
            assert all(len(k) == dataset.key_size for k in keys)

    def test_values_deterministic(self):
        assert K32.value_for_rank(5) == K32.value_for_rank(5)
        assert len(K32.value_for_rank(5)) == 256

    def test_num_objects(self):
        n = K8.num_objects(1 << 20, overhead_bytes=40)
        assert n == (1 << 20) // (16 + 40)

    def test_lookup(self):
        assert dataset_by_name("k16") is K16
        with pytest.raises(WorkloadError):
            dataset_by_name("K64")

    def test_min_key_size(self):
        with pytest.raises(WorkloadError):
            Dataset("bad", key_size=4, value_size=8)


class TestUniform:
    def test_range(self):
        dist = UniformKeys(1000, seed=1)
        ranks = dist.sample(10_000)
        assert ranks.min() >= 0 and ranks.max() < 1000

    def test_roughly_flat(self):
        dist = UniformKeys(10, seed=2)
        ranks = dist.sample(100_000)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 0.8 * counts.mean()

    def test_skewness_zero(self):
        assert UniformKeys(100).skewness == 0.0

    def test_top_fraction_linear(self):
        dist = UniformKeys(1000)
        assert dist.top_fraction(100) == pytest.approx(0.1)
        assert dist.top_fraction(2000) == 1.0


class TestZipf:
    def test_seeded_determinism(self):
        a = ZipfKeys(10_000, seed=3).sample(1000)
        b = ZipfKeys(10_000, seed=3).sample(1000)
        assert np.array_equal(a, b)

    def test_range(self):
        ranks = ZipfKeys(5000, seed=4).sample(50_000)
        assert ranks.min() >= 0 and ranks.max() < 5000

    def test_head_dominates(self):
        dist = ZipfKeys(100_000, skew=0.99, seed=5)
        ranks = dist.sample(100_000)
        top100 = np.mean(ranks < 100)
        assert top100 > 0.3  # far more than the uniform 0.1 %

    def test_empirical_matches_analytic_top_fraction(self):
        dist = ZipfKeys(100_000, skew=0.99, seed=6)
        ranks = dist.sample(200_000)
        for k in (10, 1000, 10_000):
            empirical = float(np.mean(ranks < k))
            assert empirical == pytest.approx(dist.top_fraction(k), abs=0.05)

    def test_top_fraction_monotone(self):
        dist = ZipfKeys(50_000, skew=0.99)
        fractions = [dist.top_fraction(k) for k in (1, 10, 100, 1000, 50_000)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_higher_skew_more_concentrated(self):
        mild = ZipfKeys(10_000, skew=0.5).top_fraction(100)
        strong = ZipfKeys(10_000, skew=1.2).top_fraction(100)
        assert strong > mild

    def test_rejects_zero_skew(self):
        with pytest.raises(WorkloadError):
            ZipfKeys(100, skew=0.0)

    def test_factory(self):
        assert isinstance(make_distribution(10, 0.0), UniformKeys)
        assert isinstance(make_distribution(10, 0.99), ZipfKeys)

    def test_small_keyspace(self):
        dist = ZipfKeys(5, skew=0.99, seed=7)
        ranks = dist.sample(1000)
        assert set(ranks.tolist()) <= {0, 1, 2, 3, 4}

    def test_harmonic_mass_cached_across_constructions(self):
        """Repeated ZipfKeys over the same (num_keys, skew) grid reuse the
        cached harmonic sums instead of recomputing them."""
        from repro.workloads.distributions import zipf_harmonic_mass

        zipf_harmonic_mass.cache_clear()
        ZipfKeys(123_457, skew=0.77)
        after_first = zipf_harmonic_mass.cache_info()
        dist = ZipfKeys(123_457, skew=0.77)
        assert zipf_harmonic_mass.cache_info().hits > after_first.hits
        assert zipf_harmonic_mass.cache_info().misses == after_first.misses
        # The shared mass function matches a direct exact summation.
        exact = float(np.sum(np.arange(1, 1001, dtype=np.float64) ** -0.77))
        assert dist.top_fraction(1000) == pytest.approx(
            exact / zipf_harmonic_mass(123_457, 0.77)
        )

    def test_empirical_top_key_frequency_matches_top_fraction(self):
        """Timing-free skew check: the observed share of samples landing in
        the top-k ranks tracks the analytic ``top_fraction`` across skews."""
        for skew in (0.5, 0.99, 1.2):
            dist = ZipfKeys(20_000, skew=skew, seed=11)
            ranks = dist.sample(150_000)
            for k in (16, 256, 4096):
                empirical = float(np.mean(ranks < k))
                assert empirical == pytest.approx(dist.top_fraction(k), abs=0.05)


class TestWorkloadSpec:
    def test_label_round_trip(self):
        for spec in STANDARD_WORKLOADS:
            assert standard_workload(spec.label) == spec

    def test_24_standard_workloads(self):
        assert len(STANDARD_WORKLOADS) == 24
        assert len({s.label for s in STANDARD_WORKLOADS}) == 24

    def test_parse_variants(self):
        spec = standard_workload("k32-g50-s")
        assert spec.dataset is K32
        assert spec.get_ratio == pytest.approx(0.5)
        assert spec.skewed

    def test_malformed_labels(self):
        for bad in ("K8", "K8-G95", "K8-X95-U", "K9-G95-U", "K8-G95-Z"):
            with pytest.raises(WorkloadError):
                standard_workload(bad)

    def test_ratio_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(K8, get_ratio=1.2, zipf_skew=0.0)


class TestQueryStream:
    def test_get_set_mix(self):
        stream = QueryStream(standard_workload("K16-G95-U"), num_keys=5000, seed=8)
        batch = stream.next_batch(20_000)
        gets = sum(1 for q in batch if q.qtype is QueryType.GET)
        assert gets / len(batch) == pytest.approx(0.95, abs=0.01)

    def test_sets_carry_dataset_values(self):
        stream = QueryStream(standard_workload("K16-G50-U"), num_keys=100, seed=9)
        for q in stream.next_batch(200):
            if q.qtype is QueryType.SET:
                assert len(q.value) == 64
            assert len(q.key) == 16

    def test_deterministic(self):
        s1 = QueryStream(standard_workload("K8-G95-S"), 1000, seed=10)
        s2 = QueryStream(standard_workload("K8-G95-S"), 1000, seed=10)
        b1, b2 = s1.next_batch(100), s2.next_batch(100)
        assert [(q.qtype, q.key) for q in b1] == [(q.qtype, q.key) for q in b2]

    def test_populate_items(self):
        stream = QueryStream(standard_workload("K8-G95-U"), num_keys=50, seed=11)
        items = stream.populate_items()
        assert len(items) == 50
        assert len({k for k, _ in items}) == 50

    def test_empty_batch(self):
        stream = QueryStream(standard_workload("K8-G95-U"), num_keys=10)
        assert stream.next_batch(0) == []


class TestFacebook:
    def test_usr_tiny_values(self):
        stream = FacebookQueryStream(FACEBOOK_USR, num_keys=1000, seed=12)
        for q in stream.next_batch(500):
            if q.qtype is QueryType.SET:
                assert len(q.value) == 2

    def test_etc_value_spread(self):
        stream = FacebookQueryStream(FACEBOOK_ETC, num_keys=5000, seed=13)
        sizes = {len(q.value) for q in stream.next_batch(5000) if q.qtype is QueryType.SET}
        assert len(sizes) >= 3  # a genuine mixture

    def test_per_rank_size_stable(self):
        stream = FacebookQueryStream(FACEBOOK_ETC, num_keys=100, seed=14)
        sizes = {}
        for q in stream.next_batch(5000):
            if q.qtype is QueryType.SET:
                sizes.setdefault(q.key, set()).add(len(q.value))
        assert all(len(s) == 1 for s in sizes.values())

    def test_mean_value_size(self):
        assert FACEBOOK_USR.mean_value_size == pytest.approx(2.0)
        assert FACEBOOK_ETC.mean_value_size > 500

    def test_average_sizes(self):
        stream = FacebookQueryStream(FACEBOOK_ETC, num_keys=5000, seed=15)
        key_size, value_size = stream.average_sizes()
        assert key_size == 16.0
        assert 64 <= value_size <= 8192


class TestAlternating:
    def make(self, cycle_ns=6e6):
        return AlternatingWorkload(
            standard_workload("K8-G50-U"),
            standard_workload("K16-G95-S"),
            cycle_ns=cycle_ns,
            num_keys=1000,
        )

    def test_phase_halves(self):
        w = self.make()
        assert w.spec_at(0.0).label == "K8-G50-U"
        assert w.spec_at(3.1e6).label == "K16-G95-S"
        assert w.spec_at(6.1e6).label == "K8-G50-U"

    def test_batches_match_phase(self):
        w = self.make()
        batch_a = w.next_batch(0.0, 100)
        assert all(len(q.key) == 8 for q in batch_a)
        batch_b = w.next_batch(4e6, 100)
        assert all(len(q.key) == 16 for q in batch_b)

    def test_switch_times(self):
        w = self.make(cycle_ns=2e6)
        assert w.switch_times(5e6) == [1e6, 2e6, 3e6, 4e6]

    def test_rejects_bad_cycle(self):
        with pytest.raises(WorkloadError):
            self.make(cycle_ns=0)
