"""Tests for the MemcachedGPU-style two-stage baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.megakv import measure_megakv
from repro.pipeline.memcachedgpu import MemcachedGPUModel, measure_memcachedgpu

from conftest import profile_for


@pytest.fixture(scope="module")
def model():
    return MemcachedGPUModel(APU_A10_7850K)


class TestMeasurement:
    def test_basic_fields(self, model):
        m = model.measure(profile_for("K16-G95-S"))
        assert m.throughput_mops > 0
        assert m.batch_size % 64 == 0
        assert m.tmax_us == max(m.gpu_stage_us, m.cpu_stage_us)
        assert 0 < m.gpu_utilization <= 1.0
        assert 0 < m.cpu_utilization <= 1.0

    def test_two_stage_interval_larger_than_three_stage(self, model):
        """A two-stage pipeline gets a longer per-stage interval from the
        same latency budget, hence larger batches than Mega-KV's 300 us."""
        m = model.measure(profile_for("K16-G95-S"), latency_budget_ns=1_000_000.0)
        assert m.tmax_us <= 1000.0 / 2.33 + 1.0

    def test_deterministic(self, model):
        a = model.measure(profile_for("K32-G95-S"))
        b = model.measure(profile_for("K32-G95-S"))
        assert a.throughput_mops == b.throughput_mops

    def test_rejects_bad_budget(self, model):
        with pytest.raises(ConfigurationError):
            model.measure(profile_for("K8-G95-U"), latency_budget_ns=0)

    def test_wrapper(self):
        m = measure_memcachedgpu(APU_A10_7850K, profile_for("K8-G95-U"))
        assert m.throughput_mops > 0


class TestDesignSpace:
    """Paper Figure 2 framing: both static splits exist; neither dominates
    the adaptive system."""

    def test_static_designs_comparable(self):
        """On the APU, the two static designs are within an order of
        magnitude of each other (both are plausible designs)."""
        for label in ("K8-G95-U", "K128-G95-S"):
            profile = profile_for(label)
            mega = measure_megakv(APU_A10_7850K, profile).throughput_mops
            mcg = measure_memcachedgpu(APU_A10_7850K, profile).throughput_mops
            assert 0.1 < mcg / mega < 10.0

    def test_dido_beats_memcachedgpu_style(self):
        """DIDO's adaptive pipeline outperforms the MemcachedGPU-style
        static split as well (it can *choose* a better split per workload)."""
        from repro.core.config_search import ConfigurationSearch
        from repro.core.cost_model import CostModel
        from repro.pipeline.executor import PipelineExecutor

        executor = PipelineExecutor(APU_A10_7850K)
        planner = ConfigurationSearch(CostModel(APU_A10_7850K))
        wins = 0
        for label in ("K8-G95-U", "K16-G95-S", "K128-G50-U"):
            profile = profile_for(label)
            best = planner.best(profile).config
            dido = executor.measure(best, profile).throughput_mops
            mcg = measure_memcachedgpu(APU_A10_7850K, profile).throughput_mops
            if dido > mcg:
                wins += 1
        assert wins >= 2

    def test_gpu_heavier_than_megakv_gpu_stage(self):
        """MemcachedGPU puts packet processing on the GPU too, so its GPU
        stage carries more work per query than Mega-KV's [IN] stage."""
        profile = profile_for("K8-G95-U")
        model = MemcachedGPUModel(APU_A10_7850K)
        batch = 8192
        mcg_gpu_ns = model._gpu_stage_ns(profile, batch)
        from repro.pipeline.executor import PipelineExecutor
        from repro.pipeline.megakv import megakv_coupled_config

        ex = PipelineExecutor(APU_A10_7850K)
        stage_times, _, _, _ = ex.evaluate_batch(
            megakv_coupled_config(), profile, batch
        )
        mega_gpu_ns = stage_times[1].time_ns
        assert mcg_gpu_ns > mega_gpu_ns
