"""Skew-aware hot path: batch key dedup + versioned hot-key read cache.

Covers the three layers the feature spans:

* :class:`repro.kv.hotcache.HotKeyCache` in isolation (versioning, LRU
  bound, skew gating, window-hit draining);
* the engines' dedup/cache hot path (byte-identity against the reference
  engine on skewed mixed traffic, write-barrier run splitting, duplicate
  scatter) across every backend;
* the system wiring (stale-read regression through the functional
  pipeline and a DidoSystem, shard-imbalance improvement from pre-split
  dedup, telemetry series).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dido import DidoSystem
from repro.engine import (
    BatchPlane,
    ReferenceEngine,
    SerialEngine,
    ShardedEngine,
    StealingEngine,
    VectorEngine,
    compile_stage_plan,
)
from repro.engine.hotpath import dedup_batch_keys
from repro.errors import ConfigurationError
from repro.hardware.memory import MemorySystem
from repro.hardware.specs import APU_A10_7850K, ProcessorKind
from repro.kv.hotcache import (
    SKEW_OFF_THRESHOLD,
    SKEW_ON_THRESHOLD,
    HotKeyCache,
)
from repro.kv.protocol import Query, QueryType, ResponseStatus
from repro.kv.sharding import ShardedKVStore
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.telemetry import configure
from repro.workloads.ycsb import QueryStream, standard_workload

PLAN = compile_stage_plan(megakv_coupled_config())


def fresh_store(*, cache: bool = True, shards: int = 1):
    if shards > 1:
        store = ShardedKVStore(8 << 20, 4096, shards)
    else:
        store = KVStore(8 << 20, 4096)
    if cache:
        store.attach_hot_cache(256)
    return store


def run_batches(engine, store, batches):
    """Responses as comparable (status, value) rows, batch by batch."""
    out = []
    for queries in batches:
        plane = BatchPlane(list(queries))
        engine.run(store, PLAN, plane)
        out.append([(r.status, r.value) for r in plane.take_responses()])
    return out


def skewed_batches(num_batches=10, size=512, num_keys=64, seed=7, get_ratio=0.8):
    """Mixed GET/SET/DELETE batches with a heavy-tailed key distribution."""
    rng = random.Random(seed)
    keys = [f"key-{i:04d}".encode() for i in range(num_keys)]
    batches = []
    for _ in range(num_batches):
        queries = []
        for _ in range(size):
            key = keys[int(rng.paretovariate(1.2)) % num_keys]
            roll = rng.random()
            if roll < get_ratio:
                queries.append(Query(QueryType.GET, key))
            elif roll < get_ratio + 0.15:
                queries.append(Query(QueryType.SET, key, b"v" * rng.randint(1, 24)))
            else:
                queries.append(Query(QueryType.DELETE, key))
        batches.append(queries)
    return batches


ALL_HOT_ENGINES = [
    ("serial", lambda: SerialEngine(dedup=True), 1),
    ("serial-nocache", lambda: SerialEngine(dedup=True, hot_cache=False), 1),
    ("stealing", lambda: StealingEngine(dedup=True), 1),
    ("vector", lambda: VectorEngine(dedup=True), 1),
    ("vector-nocache", lambda: VectorEngine(dedup=True, hot_cache=False), 1),
    ("sharded", lambda: ShardedEngine(VectorEngine(dedup=True), dedup=True), 4),
]


# ------------------------------------------------------------- HotKeyCache


class TestHotKeyCache:
    def test_miss_then_admit_then_hit(self):
        cache = HotKeyCache(8)
        assert cache.lookup(b"k") is None
        cache.admit(b"k", b"v")
        assert cache.lookup(b"k") == b"v"
        assert cache.hits == 1 and cache.misses == 1

    def test_lookup_count_weighted(self):
        cache = HotKeyCache(8)
        cache.admit(b"k", b"v")
        cache.lookup(b"k", count=5)
        assert cache.hits == 5
        cache.lookup(b"other", count=3)
        assert cache.misses == 3

    def test_on_write_refreshes_resident_snapshot(self):
        cache = HotKeyCache(8)
        cache.admit(b"k", b"old")
        cache.on_write(b"k", b"new")
        assert cache.lookup(b"k") == b"new"

    def test_stale_version_never_served(self):
        cache = HotKeyCache(8)
        cache.admit(b"k", b"old")
        # Simulate a write that bypassed the refresh (the versioning
        # backstop): the stamped snapshot must be dropped, not served.
        cache._versions[b"k"] = 99
        assert cache.lookup(b"k") is None
        assert len(cache) == 0

    def test_invalidate_drops_entry_and_version(self):
        cache = HotKeyCache(8)
        cache.admit(b"k", b"v")
        cache.invalidate(b"k")
        assert cache.lookup(b"k") is None
        assert cache._versions == {}

    def test_lru_bound(self):
        cache = HotKeyCache(2)
        cache.admit(b"a", b"1")
        cache.admit(b"b", b"2")
        cache.lookup(b"a")  # a is now most recent
        cache.admit(b"c", b"3")  # evicts b
        assert len(cache) == 2
        assert cache.lookup(b"b") is None
        assert cache.lookup(b"a") == b"1"
        assert cache.lookup(b"c") == b"3"

    def test_gate_hysteresis(self):
        cache = HotKeyCache(8, active=False)
        assert cache.gate_on_skew(SKEW_ON_THRESHOLD) is True
        # In the hysteresis band the gate holds its state.
        assert cache.gate_on_skew((SKEW_ON_THRESHOLD + SKEW_OFF_THRESHOLD) / 2) is True
        assert cache.gate_on_skew(SKEW_OFF_THRESHOLD - 0.01) is False
        assert cache.gate_on_skew((SKEW_ON_THRESHOLD + SKEW_OFF_THRESHOLD) / 2) is False

    def test_drain_window_hits(self):
        cache = HotKeyCache(8)
        cache.admit(b"a", b"1")
        cache.admit(b"b", b"2")
        cache.lookup(b"a", count=3)
        cache.lookup(b"b")
        assert sorted(cache.drain_window_hits()) == [1, 3]
        assert cache.drain_window_hits() == []

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            HotKeyCache(0)

    def test_version_map_bounded_to_resident_snapshots(self):
        """SETs of cache-cold keys must not grow the version map: stamps
        exist only for resident snapshots, so the map never duplicates the
        key bytes of every live written key on write-heavy workloads."""
        cache = HotKeyCache(8)
        for i in range(1000):
            cache.on_write(b"cold-%04d" % i, b"v")
        assert cache._versions == {}
        cache.admit(b"hot", b"v1")
        cache.on_write(b"hot", b"v2")
        assert cache._versions == {b"hot": 1}
        assert cache.lookup(b"hot") == b"v2"
        # A later admit at version 0 is still invalidated/refreshed by the
        # next write's bump, which finds the snapshot resident.
        cache.invalidate(b"hot")
        cache.on_write(b"hot", b"v3")  # cold again: no stamp
        assert cache._versions == {}
        cache.admit(b"hot", b"v3")  # snapshot stamped at version 0
        cache.on_write(b"hot", b"v4")
        assert cache.lookup(b"hot") == b"v4"


# ----------------------------------------------------- engine equivalence


class TestHotPathEquivalence:
    @pytest.mark.parametrize("name,factory,shards", ALL_HOT_ENGINES)
    def test_skewed_mixed_traffic_matches_reference(self, name, factory, shards):
        batches = skewed_batches()
        expected = run_batches(ReferenceEngine(), fresh_store(cache=False), batches)
        got = run_batches(factory(), fresh_store(shards=shards), batches)
        assert got == expected

    def test_dedup_actually_collapses_runs(self):
        store = fresh_store(cache=False)
        store.set(b"hot", b"value")
        engine = SerialEngine(dedup=True, hot_cache=False)
        plane = BatchPlane([Query(QueryType.GET, b"hot")] * 16)
        engine.run(store, PLAN, plane)
        assert plane.hotpath is not None
        assert plane.hotpath.dup_count == 15
        assert all(r.value == b"value" for r in plane.take_responses())
        # One probe for the whole run, not sixteen.
        assert store.index.stats.searches == 1

    def test_write_barrier_splits_runs(self):
        """A SET between GET runs must not merge reads across the barrier
        (staged batch semantics: every GET sees the post-batch-write
        value, byte-identical to the reference engine)."""
        queries = [
            Query(QueryType.SET, b"k", b"v1"),
            Query(QueryType.GET, b"k"),
            Query(QueryType.SET, b"k", b"v2"),
            Query(QueryType.GET, b"k"),
            Query(QueryType.GET, b"k"),
            Query(QueryType.DELETE, b"other"),
        ]
        expected = run_batches(ReferenceEngine(), fresh_store(cache=False), [queries])
        for _name, factory, shards in ALL_HOT_ENGINES:
            got = run_batches(factory(), fresh_store(shards=shards), [queries])
            assert got == expected

    def test_cache_serves_hot_reads(self):
        store = fresh_store()
        engine = VectorEngine(dedup=True)
        batches = [[Query(QueryType.SET, b"hot", b"value")]]
        batches.extend([[Query(QueryType.GET, b"hot")] * 32 for _ in range(3)])
        results = run_batches(engine, store, batches)
        assert all(
            row == (ResponseStatus.OK, b"value") for batch in results[1:] for row in batch
        )
        # Batch 2 admitted the key; batches 3 and 4 hit the cache.
        assert store.hot_cache.hits >= 32

    def test_inactive_cache_is_inert(self):
        store = fresh_store()
        store.hot_cache.active = False
        engine = VectorEngine(dedup=True)
        run_batches(engine, store, [[Query(QueryType.GET, b"k")] * 8])
        assert store.hot_cache.hits == 0 and store.hot_cache.misses == 0

    def test_dedup_batch_keys_standalone(self):
        plane = BatchPlane(
            [Query(QueryType.GET, b"a")] * 3 + [Query(QueryType.GET, b"b")]
        )
        state = dedup_batch_keys(plane)
        assert state.dup_count == 2
        assert state.excluded == {1, 2}


# -------------------------------------------------------- stale-read guard


class TestStaleReadRegression:
    def test_set_after_cached_get_serves_new_value(self):
        """SET of a cache-resident key in batch N; GET in batch N+1 must
        return the new value, never the cached snapshot."""
        store = fresh_store()
        pipe = FunctionalPipeline(store, dedup=True)
        config = megakv_coupled_config()
        pipe.process_batch(config, [Query(QueryType.SET, b"k", b"old")])
        pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 8)
        assert store.hot_cache.lookup(b"k") == b"old"  # snapshot admitted
        pipe.process_batch(config, [Query(QueryType.SET, b"k", b"new")])
        result = pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 8)
        assert all(r.value == b"new" for r in result.responses)

    def test_delete_after_cached_get_serves_not_found(self):
        store = fresh_store()
        pipe = FunctionalPipeline(store, dedup=True)
        config = megakv_coupled_config()
        pipe.process_batch(config, [Query(QueryType.SET, b"k", b"v")])
        pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 8)
        pipe.process_batch(config, [Query(QueryType.DELETE, b"k")])
        result = pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 8)
        assert all(r.status is ResponseStatus.NOT_FOUND for r in result.responses)

    def test_same_batch_write_then_read_not_cache_served(self):
        """A batch that writes a key never serves that key's GETs from the
        cache — even when a snapshot exists."""
        store = fresh_store()
        pipe = FunctionalPipeline(store, dedup=True)
        config = megakv_coupled_config()
        pipe.process_batch(config, [Query(QueryType.SET, b"k", b"old")])
        pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 8)
        mixed = [Query(QueryType.SET, b"k", b"new")] + [Query(QueryType.GET, b"k")] * 4
        result = pipe.process_batch(config, mixed)
        assert all(r.value == b"new" for r in result.responses[1:])

    def test_dido_system_stale_guard_under_gating(self):
        """End to end: a DidoSystem whose skew gate opened on a Zipf stream
        never serves a pre-SET value of a cache-hot key."""
        system = DidoSystem(
            memory_bytes=16 << 20,
            expected_objects=8192,
            engine="vector",
            dedup=True,
            hot_cache=True,
        )
        stream = QueryStream(standard_workload("K16-G95-S"), num_keys=2048, seed=5)
        for _ in range(8):
            system.process(stream.next_batch(1024))
        cache = system._hot_caches[0]
        assert cache.active, "skew gate should have opened on Zipf traffic"
        assert cache.hits > 0
        system.process([Query(QueryType.SET, b"k", b"old")] + [Query(QueryType.GET, b"k")] * 63)
        system.process([Query(QueryType.GET, b"k")] * 64)
        system.process([Query(QueryType.SET, b"k", b"new")])
        result = system.process([Query(QueryType.GET, b"k")] * 64)
        assert all(r.value == b"new" for r in result.responses)

    @pytest.mark.parametrize(
        "engine_factory",
        [lambda: SerialEngine(dedup=True), lambda: VectorEngine(dedup=True)],
        ids=["serial", "vector"],
    )
    def test_mid_batch_slab_eviction_not_served_stale(self, engine_factory):
        """A SET elsewhere in the same batch can slab-evict a cache-resident
        key *between* intake (where the snapshot is captured) and the
        post-RD scatter.  finish() must re-validate the captured group and
        fall back to the index — which, the MM/Delete phases having run,
        answers NOT_FOUND exactly like the plain path."""
        store = KVStore(memory_bytes=1 << 20, expected_objects=1 << 12, heap="slab")
        store.attach_hot_cache(64)
        engine = engine_factory()
        value = b"v" * 8000  # 8 KiB slab class: 128 chunks in the budget
        victim = b"victim-00000"
        run_batches(engine, store, [[Query(QueryType.SET, victim, value)]])
        (warm,) = run_batches(engine, store, [[Query(QueryType.GET, victim)] * 4])
        assert all(row == (ResponseStatus.OK, value) for row in warm)
        assert store.hot_cache.lookup(victim) == value
        evicted_rows = None
        for i in range(200):
            # Same-size fillers share the victim's slab class; the victim
            # (cache-served, so never LRU-touched) is evicted mid-batch
            # while its GET run sits captured for cache serving.
            batch = [Query(QueryType.SET, b"filler-%05d" % i, value)]
            batch += [Query(QueryType.GET, victim)] * 4
            (rows,) = run_batches(engine, store, [batch])
            if victim not in store._key_location:
                evicted_rows = rows
                break
            assert all(row == (ResponseStatus.OK, value) for row in rows[1:])
        assert evicted_rows is not None, "victim never slab-evicted"
        assert all(
            row == (ResponseStatus.NOT_FOUND, b"") for row in evicted_rows[1:]
        ), "stale snapshot served after mid-batch slab eviction"
        assert store.hot_cache.lookup(victim) is None

    def test_slab_eviction_invalidates_snapshot(self):
        """A key evicted by the slab LRU must stop being cache-served."""
        store = KVStore(memory_bytes=1 << 20, expected_objects=1 << 16, heap="slab")
        cache = store.attach_hot_cache(64)
        store.set(b"victim-00000", b"v")
        cache.admit(b"victim-00000", b"v")
        # Same-size fillers land in the victim's slab class, so its LRU
        # eventually pushes the victim out once the budget is exhausted.
        i = 0
        while b"victim-00000" in store._key_location and i < 1 << 17:
            store.set(b"filler-%05d" % i, b"v")
            i += 1
        assert b"victim-00000" not in store._key_location, "victim never evicted"
        assert cache.lookup(b"victim-00000") is None


# ------------------------------------------------------ sharded imbalance


class TestShardImbalance:
    def _imbalance(self, dedup: bool) -> float:
        telemetry = configure(enabled=True)
        try:
            store = fresh_store(cache=False, shards=4)
            stream = QueryStream(standard_workload("K16-G95-S"), num_keys=4096, seed=3)
            engine = ShardedEngine(VectorEngine(dedup=dedup), dedup=dedup)
            plane = BatchPlane(stream.next_batch(4096))
            engine.run(store, PLAN, plane)
            return telemetry.registry.gauge("repro_shard_imbalance").value()
        finally:
            configure(enabled=False)

    def test_dedup_improves_skewed_shard_balance(self):
        """Pre-split dedup keeps a hot key's duplicates off its shard, so
        the imbalance gauge on a skew-0.99 batch must improve."""
        plain = self._imbalance(dedup=False)
        deduped = self._imbalance(dedup=True)
        assert plain > 1.0
        assert deduped < plain


# ------------------------------------------------------- sharded hot path


class TestShardedHotPath:
    def test_inner_engines_serve_per_shard_caches(self):
        """Pre-split dedup hands the inner engines multiplicity-1 runs;
        the vector builder's singleton probe must still serve those from
        the per-shard caches — otherwise --hot-cache with --shards admits
        forever without a single hit."""
        store = ShardedKVStore(8 << 20, 4096, 4)
        store.attach_hot_cache(1024)
        engine = ShardedEngine(VectorEngine(dedup=True), dedup=True)
        hot_keys = [b"hot-%02d" % i for i in range(8)]
        run_batches(
            engine, store, [[Query(QueryType.SET, k, b"v:" + k) for k in hot_keys]]
        )
        batch = [Query(QueryType.GET, k) for k in hot_keys for _ in range(8)]
        first, second = run_batches(engine, store, [batch, batch])
        expected = [(ResponseStatus.OK, b"v:" + k) for k in hot_keys for _ in range(8)]
        assert first == expected and second == expected
        hits = sum(shard.hot_cache.hits for shard in store.shards)
        assert hits >= len(hot_keys), "per-shard caches admitted but never served"

    def test_presplit_serving_at_default_scale_caches(self):
        """Multi-runs must be served from the owning shard's cache at the
        pre-split level: with per-shard caches far smaller than the batch
        (the default provisioning), the inner engines' capacity-gated
        singleton probe never fires, so without outer serving the caches
        would admit forever and serve nothing."""
        store = ShardedKVStore(16 << 20, 8192, 4)
        store.attach_hot_cache(256)  # 64 per shard << batch GET count
        engine = ShardedEngine(VectorEngine(dedup=True), dedup=True)
        hot_keys = [b"hot-%03d" % i for i in range(256)]
        run_batches(
            engine, store, [[Query(QueryType.SET, k, b"v:" + k) for k in hot_keys]]
        )
        batch = [Query(QueryType.GET, k) for k in hot_keys for _ in range(8)]
        first, second = run_batches(engine, store, [batch, batch])
        expected = [(ResponseStatus.OK, b"v:" + k) for k in hot_keys for _ in range(8)]
        assert first == expected and second == expected
        hits = sum(shard.hot_cache.hits for shard in store.shards)
        assert hits >= len(batch), "pre-split runs not served from shard caches"

    def test_mid_batch_eviction_revalidated_at_merge(self):
        """A SET routed to the served key's shard can slab-evict it while
        the sub-batches run; the merge must re-validate the captured
        snapshot and answer NOT_FOUND, never the stale value."""
        from repro.kv.sharding import shard_of

        store = ShardedKVStore(2 << 20, 8192, 2, heap="slab")  # 1 MB slab per shard
        store.attach_hot_cache(128)
        engine = ShardedEngine(VectorEngine(dedup=True), dedup=True)
        value = b"v" * 8000
        victim = b"victim-00000"
        vshard = shard_of(victim, 2)
        fillers = [
            k
            for k in (b"filler-%05d" % i for i in range(2000))
            if shard_of(k, 2) == vshard
        ]
        run_batches(engine, store, [[Query(QueryType.SET, victim, value)]])
        # Two warm GET batches: the first admits (merge-time admission),
        # the second serves from the shard's cache.
        run_batches(
            engine, store, [[Query(QueryType.GET, victim)] * 4 for _ in range(2)]
        )
        assert store.shards[vshard].hot_cache.lookup(victim) == value
        evicted_rows = None
        for filler in fillers:
            batch = [Query(QueryType.SET, filler, value)]
            batch += [Query(QueryType.GET, victim)] * 4
            (rows,) = run_batches(engine, store, [batch])
            if victim not in store.shards[vshard]._key_location:
                evicted_rows = rows
                break
            assert all(row == (ResponseStatus.OK, value) for row in rows[1:])
        assert evicted_rows is not None, "victim never slab-evicted"
        assert all(
            row == (ResponseStatus.NOT_FOUND, b"") for row in evicted_rows[1:]
        ), "stale snapshot served after mid-batch eviction in shard"
        assert store.shards[vshard].hot_cache.lookup(victim) is None

    def test_dedup_credits_duplicate_accesses(self):
        """The outer merge credits a run's collapsed duplicates to the
        object's profiler counter, mirroring the serial/vector counts
        path — otherwise popularity is under-reported exactly where dedup
        collapses the most, biasing the skew estimate."""
        store = ShardedKVStore(8 << 20, 4096, 4)
        engine = ShardedEngine(VectorEngine(dedup=True), dedup=True)
        run_batches(engine, store, [[Query(QueryType.SET, b"hot", b"v")]])
        run_batches(engine, store, [[Query(QueryType.GET, b"hot")] * 8])
        obj = next(o for o in store.heap.objects() if o.key == b"hot")
        assert obj.access_count == 8


# ------------------------------------------------------------- telemetry


class TestHotPathTelemetry:
    def test_dedup_and_cache_series_emitted(self):
        telemetry = configure(enabled=True)
        try:
            store = fresh_store()
            pipe = FunctionalPipeline(store, engine="vector", dedup=True)
            config = megakv_coupled_config()
            registry = telemetry.registry
            pipe.process_batch(config, [Query(QueryType.SET, b"k", b"v")])
            # First GET batch: the run dedups (15 duplicate rows) and
            # misses the still-empty cache, which admits the key.
            pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 16)
            assert registry.gauge("repro_batch_dedup_ratio").value() == 15 / 16
            assert registry.counter("repro_hotkey_cache_misses_total").value() == 16
            # Later GET batches are answered wholesale from the cache.
            for _ in range(2):
                pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 16)
            assert registry.counter("repro_hotkey_cache_hits_total").value() == 32
            assert registry.gauge("repro_hotkey_cache_hit_rate").value() == 1.0
        finally:
            configure(enabled=False)

    def test_console_summary_lists_hot_path_gauges(self):
        from repro.telemetry import console_summary

        telemetry = configure(enabled=True)
        try:
            store = fresh_store()
            pipe = FunctionalPipeline(store, engine="vector", dedup=True)
            config = megakv_coupled_config()
            pipe.process_batch(config, [Query(QueryType.SET, b"k", b"v")])
            for _ in range(2):
                pipe.process_batch(config, [Query(QueryType.GET, b"k")] * 16)
            summary = console_summary(telemetry)
            coalescing = summary[summary.index("batch coalescing"):]
            assert "repro_batch_dedup_ratio" in coalescing
            assert "repro_hotkey_cache_hit_rate" in coalescing
        finally:
            configure(enabled=False)


# ------------------------------------------------- measured hot fraction


class TestMeasuredHotFraction:
    def test_measured_floors_analytic(self):
        memory = MemorySystem(APU_A10_7850K)
        analytic = memory.hot_fraction(ProcessorKind.CPU, 16, 64, 0.0)
        floored = memory.hot_fraction(ProcessorKind.CPU, 16, 64, 0.0, measured=0.9)
        assert analytic < 0.9
        assert floored == 0.9

    def test_measured_never_lowers_analytic(self):
        memory = MemorySystem(APU_A10_7850K)
        analytic = memory.hot_fraction(ProcessorKind.CPU, 16, 64, 1.2)
        assert memory.hot_fraction(ProcessorKind.CPU, 16, 64, 1.2, measured=0.0) == analytic

    def test_measured_capped_at_one(self):
        memory = MemorySystem(APU_A10_7850K)
        assert memory.hot_fraction(ProcessorKind.CPU, 16, 64, 0.99, measured=1.5) == 1.0

    def test_dido_system_feeds_measured_hit_rate(self):
        """The caches start gated off; Zipf traffic opens the gate and the
        measured window hit rate reaches the profile the cost model sees."""
        system = DidoSystem(
            memory_bytes=16 << 20,
            expected_objects=8192,
            engine="vector",
            dedup=True,
            hot_cache=True,
        )
        assert all(not c.active for c in system._hot_caches)
        stream = QueryStream(standard_workload("K16-G95-S"), num_keys=2048, seed=5)
        for _ in range(10):
            system.process(stream.next_batch(1024))
        assert system._hot_caches[0].active
        assert system._last_measured is not None
        assert system._last_measured > 0.0


# --------------------------------------------- random interleavings (PBT)


OPS = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "delete"]),
        st.integers(min_value=0, max_value=7),
        st.binary(min_size=0, max_size=12),
    ),
    min_size=1,
    max_size=120,
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=OPS, batch_size=st.integers(min_value=1, max_value=17))
def test_random_interleavings_byte_identical_across_backends(ops, batch_size):
    """GET/SET/DELETE interleavings over a small key universe produce
    byte-identical responses on every backend with dedup and the hot cache
    enabled — the acceptance property of the skew-aware hot path."""
    queries = []
    for op, key_idx, value in ops:
        key = b"key-%d" % key_idx
        if op == "get":
            queries.append(Query(QueryType.GET, key))
        elif op == "set":
            queries.append(Query(QueryType.SET, key, value))
        else:
            queries.append(Query(QueryType.DELETE, key))
    batches = [
        queries[i : i + batch_size] for i in range(0, len(queries), batch_size)
    ]
    expected = run_batches(ReferenceEngine(), fresh_store(cache=False), batches)
    for name, factory, shards in ALL_HOT_ENGINES:
        got = run_batches(factory(), fresh_store(shards=shards), batches)
        assert got == expected, f"{name} diverged from reference"
