"""Tests for the chained-hash index backend and its interchangeability."""

import pytest

from repro.errors import ConfigurationError
from repro.kv.chaining import ChainedHashTable
from repro.kv.hashtable import CuckooHashTable
from repro.kv.store import KVStore


class TestChainedBasics:
    def test_insert_search(self):
        table = ChainedHashTable(64)
        table.insert(b"alpha", 7)
        candidates, touched = table.search(b"alpha")
        assert 7 in candidates
        assert touched >= 1

    def test_search_missing(self):
        table = ChainedHashTable(64)
        assert table.search(b"ghost")[0] == []

    def test_delete(self):
        table = ChainedHashTable(64)
        table.insert(b"k", 1)
        assert table.delete(b"k")
        assert table.search(b"k")[0] == []
        assert not table.delete(b"k")

    def test_delete_by_location(self):
        table = ChainedHashTable(64)
        table.insert(b"k", 1)
        table.insert(b"k", 2)
        assert table.delete(b"k", location=1)
        assert table.search(b"k")[0] == [2]

    def test_no_capacity_limit(self):
        """Chains absorb arbitrarily many entries (unlike cuckoo)."""
        table = ChainedHashTable(16)
        for i in range(2000):
            table.insert(f"key-{i}".encode(), i)
        assert len(table) == 2000

    def test_len_tracks(self):
        table = ChainedHashTable(64)
        for i in range(10):
            table.insert(f"k{i}".encode(), i)
        table.delete(b"k0")
        assert len(table) == 9

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            ChainedHashTable(0)
        with pytest.raises(ConfigurationError):
            ChainedHashTable(64).insert(b"k", -1)


class TestProbeGrowth:
    def test_search_cost_grows_with_load(self):
        """The GPU-unfriendliness the paper's cuckoo choice avoids: chained
        probe counts grow with load factor."""
        table = ChainedHashTable(64)
        light_probes = []
        for i in range(64):
            table.insert(f"k{i}".encode(), i)
        for i in range(64):
            light_probes.append(table.search(f"k{i}".encode())[1])
        for i in range(64, 1024):
            table.insert(f"k{i}".encode(), i)
        heavy_probes = [table.search(f"k{i}".encode())[1] for i in range(1024)]
        assert sum(heavy_probes) / len(heavy_probes) > sum(light_probes) / len(light_probes)

    def test_cuckoo_probes_bounded_at_same_load(self):
        """Cuckoo search touches at most num_hashes buckets regardless."""
        cuckoo = CuckooHashTable(num_buckets=256, num_hashes=2)
        for i in range(700):
            cuckoo.insert(f"k{i}".encode(), i)
        for i in range(700):
            _, probes = cuckoo.search(f"k{i}".encode())
            assert probes <= 2

    def test_expected_search_buckets_tracks_load(self):
        table = ChainedHashTable(64)
        before = table.expected_search_buckets()
        for i in range(640):
            table.insert(f"k{i}".encode(), i)
        assert table.expected_search_buckets() > before


class TestStoreInterchangeability:
    @pytest.mark.parametrize("index_factory", [
        lambda: CuckooHashTable(num_buckets=2048),
        lambda: ChainedHashTable(num_buckets=2048),
    ])
    def test_store_semantics_identical(self, index_factory):
        store = KVStore(8 << 20, 4096, index=index_factory())
        for i in range(300):
            store.set(f"key-{i}".encode(), f"value-{i}".encode())
        for i in range(300):
            assert store.get(f"key-{i}".encode()) == f"value-{i}".encode()
        assert store.delete(b"key-000") is False  # different key format
        assert store.delete(b"key-0")
        assert store.get(b"key-0") is None

    def test_functional_pipeline_with_chained_index(self):
        from repro.kv.protocol import Query, QueryType, ResponseStatus
        from repro.pipeline.functional import FunctionalPipeline
        from repro.pipeline.megakv import megakv_coupled_config

        store = KVStore(8 << 20, 4096, index=ChainedHashTable(2048))
        pipeline = FunctionalPipeline(store)
        config = megakv_coupled_config()
        r1 = pipeline.process_batch(
            config,
            [Query(QueryType.SET, b"k", b"v"), Query(QueryType.GET, b"k")],
        )
        assert [r.status for r in r1.responses] == [
            ResponseStatus.STORED,
            ResponseStatus.OK,
        ]
        r2 = pipeline.process_batch(config, [Query(QueryType.DELETE, b"k")])
        assert r2.responses[0].status is ResponseStatus.DELETED
