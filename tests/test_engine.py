"""Unit tests for the engine layer: plan compiler, batch plane, backends."""

import pytest

from repro.core.config_search import enumerate_configs
from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import IndexOp, Task
from repro.engine import (
    BatchPlane,
    ReferenceEngine,
    SerialEngine,
    StealingEngine,
    compile_stage_plan,
    resolve_engine,
)
from repro.engine.plan import BOUNDARY_TASKS, INDEX_OP_PRIORITY, PhaseKind
from repro.engine.plane import indices_between
from repro.errors import ConfigurationError, SimulationError
from repro.kv.protocol import Query, QueryType
from repro.kv.store import KVStore
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import QueryStream, standard_workload


def all_canonical_configs():
    configs = list(enumerate_configs(4))
    stealing = [
        PipelineConfig.assemble(
            c.gpu_stage.tasks, total_cpu_cores=4, work_stealing=True
        )
        for c in configs
        if c.gpu_stage is not None and not c.work_stealing
    ]
    return configs + stealing


def workload_batches(label="K16-G50-S", batches=3, size=400, seed=11):
    stream = QueryStream(standard_workload(label), num_keys=600, seed=seed)
    return [stream.next_batch(size) for _ in range(batches)]


# ------------------------------------------------------------------ the plan


class TestStagePlan:
    def test_compile_is_memoised(self):
        config = megakv_coupled_config()
        assert compile_stage_plan(config) is compile_stage_plan(config)

    def test_every_task_appears_exactly_once_as_a_phase_owner(self):
        """Each of the eight tasks owns at least one phase, and non-IN
        tasks own exactly one."""
        for config in all_canonical_configs():
            plan = compile_stage_plan(config)
            owners = [p.task for p in plan.phases if p.kind is not PhaseKind.INDEX_OP]
            assert sorted(owners, key=lambda t: t.value) == sorted(
                set(owners), key=lambda t: t.value
            )
            assert set(owners) == set(Task) - {Task.IN} or set(owners) == set(Task)

    def test_boundary_phases_are_rv_pp_sd(self):
        for config in all_canonical_configs():
            plan = compile_stage_plan(config)
            boundary = {p.task for p in plan.phases if p.kind is PhaseKind.BOUNDARY}
            assert boundary == set(BOUNDARY_TASKS)
            assert not any(
                p.task in BOUNDARY_TASKS for p in plan.batch_phases()
            )

    def test_index_ops_ordered_by_priority_within_each_stage(self):
        """Within a stage: Deletes, then Inserts, then Searches (batch
        read-your-write)."""
        for config in all_canonical_configs():
            plan = compile_stage_plan(config)
            for stage_index in range(len(config.stages)):
                ops = [
                    p.op
                    for p in plan.stage_phases(stage_index)
                    if p.kind is PhaseKind.INDEX_OP
                ]
                priorities = [INDEX_OP_PRIORITY[op] for op in ops]
                assert priorities == sorted(priorities)

    def test_search_never_compiled_without_in(self):
        for config in all_canonical_configs():
            plan = compile_stage_plan(config)
            for stage_index, stage in enumerate(config.stages):
                for phase in plan.stage_phases(stage_index):
                    if phase.op is IndexOp.SEARCH:
                        assert Task.IN in stage.tasks

    def test_reassigned_ops_attributed_to_mm(self):
        config = PipelineConfig.assemble(
            (Task.IN,), total_cpu_cores=4, insert_on_cpu=True, delete_on_cpu=True
        )
        plan = compile_stage_plan(config)
        cpu_ops = [
            p
            for p in plan.phases
            if p.kind is PhaseKind.INDEX_OP and Task.IN not in config.stages[p.stage_index].tasks
        ]
        assert {p.op for p in cpu_ops} == {IndexOp.INSERT, IndexOp.DELETE}
        assert all(p.task is Task.MM for p in cpu_ops)

    def test_phase_order_follows_stage_order(self):
        for config in all_canonical_configs():
            plan = compile_stage_plan(config)
            stage_seq = [p.stage_index for p in plan.phases]
            assert stage_seq == sorted(stage_seq)

    def test_labels(self):
        plan = compile_stage_plan(megakv_coupled_config())
        labels = [p.label for p in plan.phases]
        assert "IN/search" in labels or any(l.startswith("IN/") for l in labels)
        assert "MM" in labels


# ----------------------------------------------------------------- the plane


class TestBatchPlane:
    def test_index_subsets_partition_the_batch(self):
        queries = [
            Query(QueryType.SET, b"a", b"1"),
            Query(QueryType.GET, b"a"),
            Query(QueryType.DELETE, b"a"),
            Query(QueryType.GET, b"b"),
        ]
        plane = BatchPlane(queries)
        assert plane.size == 4
        assert plane.get_indices == [1, 3]
        assert plane.set_indices == [0]
        assert plane.delete_indices == [2]
        assert plane.search_indices == [1, 2, 3]  # GET and DELETE
        assert plane.mutation_indices == [0, 2]  # SET and DELETE
        assert list(plane.all_indices) == [0, 1, 2, 3]

    def test_take_responses_raises_when_incomplete(self):
        plane = BatchPlane([Query(QueryType.GET, b"a")])
        with pytest.raises(SimulationError):
            plane.take_responses()

    def test_take_responses_error_names_missing_indices(self):
        """The failure message points at the exact queries a pass skipped."""
        from repro.kv.protocol import Response, ResponseStatus

        plane = BatchPlane(
            [
                Query(QueryType.GET, b"a"),
                Query(QueryType.SET, b"b", b"1"),
                Query(QueryType.DELETE, b"c"),
            ]
        )
        plane.responses[1] = Response(ResponseStatus.STORED)
        with pytest.raises(SimulationError) as excinfo:
            plane.take_responses()
        message = str(excinfo.value)
        assert "2 of 3" in message
        assert "0:GET" in message
        assert "2:DELETE" in message
        assert "1:SET" not in message

    def test_take_responses_error_truncates_long_index_lists(self):
        plane = BatchPlane([Query(QueryType.GET, b"k%d" % i) for i in range(20)])
        with pytest.raises(SimulationError) as excinfo:
            plane.take_responses()
        message = str(excinfo.value)
        assert "20 of 20" in message
        assert "..." in message  # only the first few indices are spelled out
        assert "19:GET" not in message

    def test_indices_between_list_and_range(self):
        assert indices_between([1, 4, 6, 9], 4, 9) == [4, 6]
        assert indices_between([1, 4, 6, 9], 0, 100) == [1, 4, 6, 9]
        assert indices_between(range(10), 3, 7) == range(3, 7)
        assert list(indices_between(range(5), 4, 100)) == [4]


# ------------------------------------------------------------------ bulk ops


class TestBulkStoreOps:
    """Each bulk primitive is exactly N applications of its scalar form."""

    def populated_store(self):
        store = KVStore(memory_bytes=8 << 20, expected_objects=4096)
        for i in range(200):
            store.set(f"key-{i}".encode(), f"value-{i}".encode())
        return store

    def test_multi_index_search_matches_scalar(self):
        store = self.populated_store()
        keys = [f"key-{i}".encode() for i in range(0, 250, 3)]
        bulk = store.multi_index_search(keys)
        scalar_store = self.populated_store()
        assert bulk == [scalar_store.index_search(k) for k in keys]
        # stats aggregated identically
        assert store.index.stats.searches == scalar_store.index.stats.searches
        assert (
            store.index.stats.search_bucket_reads
            == scalar_store.index.stats.search_bucket_reads
        )

    def test_multi_key_compare_matches_scalar(self):
        store = self.populated_store()
        keys = [f"key-{i}".encode() for i in range(0, 40)]
        candidates = [store.index_search(k) for k in keys]
        bulk = store.multi_key_compare(keys, candidates)
        assert bulk == [store.key_compare(k, c) for k, c in zip(keys, candidates)]

    def test_multi_read_value_handles_misses(self):
        store = self.populated_store()
        key = b"key-7"
        location = store.key_compare(key, store.index_search(key))
        values = store.multi_read_value([location, None])
        assert values == [b"value-7", None]

    def test_multi_index_insert_then_search(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        entries = [(f"n{i}".encode(), i) for i in range(20)]
        store.multi_index_insert(entries)
        for key, location in entries:
            assert location in store.index_search(key)

    def test_multi_index_delete_removes_entries(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        entries = [(f"n{i}".encode(), i) for i in range(20)]
        store.multi_index_insert(entries)
        removed = store.multi_index_delete(entries)
        assert removed == 20
        assert all(store.index_search(k) == [] for k, _ in entries)


class TestProbeCache:
    def test_probe_matches_fresh_hashing(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        index = store.index
        for key in (b"a", b"hot-key", b"x" * 40):
            assert index.probe_cached(key) == index.probe(key)
            # second lookup is served from the cache, same spec object
            assert index.probe_cached(key) is index.probe_cached(key)

    def test_cache_bounded(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        index = store.index
        index._probe_cache_cap = 8
        for i in range(30):
            index.probe_cached(f"k{i}".encode())
        assert len(index._probe_cache) <= 8

    def test_cache_evicts_least_recently_used(self):
        """Hot keys survive churn: a re-touched key outlives colder ones."""
        store = KVStore(memory_bytes=1 << 20, expected_objects=512)
        index = store.index
        index._probe_cache_cap = 4
        for i in range(4):
            index.probe_cached(f"k{i}".encode())
        index.probe_cached(b"k0")  # refresh the oldest entry
        index.probe_cached(b"k-new")  # forces one eviction
        assert b"k0" in index._probe_cache  # refreshed, kept
        assert b"k1" not in index._probe_cache  # now the LRU, evicted


# ------------------------------------------------------------------ backends


class TestEngineEquivalence:
    """Every legal config: columnar backends == preserved per-query path."""

    def run_all(self, engine, config, batches):
        store = KVStore(memory_bytes=8 << 20, expected_objects=4096)
        pipeline = FunctionalPipeline(store, engine=engine)
        frames = []
        for batch in batches:
            result = pipeline.process_batch(config, batch)
            frames.append(b"".join(f.payload for f in result.frames))
        return frames, store

    @pytest.mark.parametrize("label", ["K16-G50-S", "K16-G95-U"])
    def test_serial_and_stealing_match_reference(self, label):
        batches = workload_batches(label=label)
        for config in all_canonical_configs():
            ref_frames, ref_store = self.run_all("reference", config, batches)
            col_frames, col_store = self.run_all(None, config, batches)
            assert col_frames == ref_frames, config.label
            assert col_store.stats == ref_store.stats, config.label
            assert col_store.index.stats.searches == ref_store.index.stats.searches

    def test_pinned_engines_match_auto(self):
        config = megakv_coupled_config()
        batches = workload_batches()
        auto_frames, _ = self.run_all(None, config, batches)
        for name in ("serial", "stealing"):
            frames, _ = self.run_all(name, config, batches)
            assert frames == auto_frames, name


class TestEngineSelection:
    def test_auto_picks_stealing_for_stealing_config(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=256)
        pipeline = FunctionalPipeline(store)
        stealing_config = PipelineConfig.assemble(
            (Task.IN, Task.KC, Task.RD), total_cpu_cores=4, work_stealing=True
        )
        assert isinstance(pipeline._engine_for(stealing_config), StealingEngine)
        assert type(pipeline._engine_for(megakv_coupled_config())) is SerialEngine

    def test_stealing_engine_records_claims(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=256)
        pipeline = FunctionalPipeline(store)
        config = PipelineConfig.assemble(
            (Task.IN, Task.KC, Task.RD), total_cpu_cores=4, work_stealing=True
        )
        result = pipeline.process_batch(
            config, [Query(QueryType.SET, b"k", b"v"), Query(QueryType.GET, b"k")]
        )
        assert sum(result.steal_claims.values()) > 0

    def test_serial_engine_reports_no_claims(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=256)
        pipeline = FunctionalPipeline(store, engine="serial")
        result = pipeline.process_batch(
            megakv_coupled_config(), [Query(QueryType.GET, b"missing")]
        )
        assert result.steal_claims == {}


class TestResolveEngine:
    def test_auto_and_none_resolve_to_none(self):
        assert resolve_engine(None) is None
        assert resolve_engine("auto") is None

    def test_names_resolve_to_backends(self):
        assert isinstance(resolve_engine("serial"), SerialEngine)
        assert isinstance(resolve_engine("stealing"), StealingEngine)
        assert isinstance(resolve_engine("reference"), ReferenceEngine)

    def test_engine_objects_pass_through(self):
        engine = SerialEngine()
        assert resolve_engine(engine) is engine

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("warp-drive")
        with pytest.raises(ConfigurationError):
            resolve_engine(object())
