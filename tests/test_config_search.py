"""Unit tests for configuration enumeration and search."""

import pytest

from repro.core.config_search import (
    ConfigurationSearch,
    best_config_for,
    enumerate_configs,
)
from repro.core.cost_model import CostModel
from repro.core.tasks import IndexOp, Task
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.megakv import megakv_coupled_config

from conftest import profile_for


class TestEnumeration:
    def test_all_configs_legal(self):
        for config in enumerate_configs(4):
            covered = tuple(t for s in config.stages for t in s.tasks)
            assert len(covered) == 8

    def test_space_size(self):
        configs = enumerate_configs(4)
        # 1 CPU-only + 3 GPU segments x 3 core splits x 4 index policies.
        assert len(configs) == 1 + 3 * 3 * 4

    def test_contains_megakv_partitioning(self):
        target = megakv_coupled_config().stages
        labels = {tuple(s.tasks for s in c.stages) for c in enumerate_configs(4)}
        assert tuple(s.tasks for s in target) in labels

    def test_contains_paper_pipeline_2(self):
        """Figure 8's pipeline 2: [RV,PP,MM] -> [IN,KC,RD]GPU -> [WR,SD]."""
        shapes = {tuple(s.tasks for s in c.stages) for c in enumerate_configs(4)}
        expected = (
            (Task.RV, Task.PP, Task.MM),
            (Task.IN, Task.KC, Task.RD),
            (Task.WR, Task.SD),
        )
        assert expected in shapes

    def test_work_stealing_flag_propagates(self):
        assert all(c.work_stealing for c in enumerate_configs(4, work_stealing=True))
        assert not any(c.work_stealing for c in enumerate_configs(4, work_stealing=False))

    def test_cpu_only_excludable(self):
        configs = enumerate_configs(4, include_cpu_only=False)
        assert all(c.gpu_stage is not None for c in configs)

    def test_fixed_pipeline_index_policies(self):
        fixed = megakv_coupled_config()
        policies = enumerate_configs(4, fixed_pipeline=fixed)
        assert len(policies) == 4
        placements = {
            (
                c.stage_of_index_op(IndexOp.INSERT).processor,
                c.stage_of_index_op(IndexOp.DELETE).processor,
            )
            for c in policies
        }
        assert len(placements) == 4

    def test_fixed_pipeline_preserves_partitioning(self):
        fixed = megakv_coupled_config()
        for config in enumerate_configs(4, fixed_pipeline=fixed):
            assert tuple(s.tasks for s in config.stages) == tuple(
                s.tasks for s in fixed.stages
            )


class TestSearch:
    @pytest.fixture(scope="class")
    def search(self):
        return ConfigurationSearch(CostModel(APU_A10_7850K))

    def test_rank_sorted_descending(self, search):
        ranked = search.rank(profile_for("K16-G95-S"))
        throughputs = [r.throughput_mops for r in ranked]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_best_is_first(self, search):
        profile = profile_for("K8-G95-U")
        assert (
            search.best(profile).throughput_mops
            == search.rank(profile)[0].throughput_mops
        )

    def test_best_beats_megakv_partitioning(self, search):
        """The chosen plan is at least as good as the static baseline."""
        profile = profile_for("K8-G95-U")
        best = search.best(profile)
        megakv_est = search.analyzer.estimate(
            megakv_coupled_config().with_work_stealing(True), profile
        )
        assert best.throughput_mops >= megakv_est.throughput_mops

    def test_best_differs_across_workloads(self, search):
        """Dynamic adaptation exists: not all workloads share one plan."""
        labels = ("K8-G100-U", "K8-G50-U", "K128-G95-S", "K128-G50-S")
        plans = {search.best(profile_for(l)).config.label for l in labels}
        assert len(plans) >= 2

    def test_restricted_configs_respected(self, search):
        fixed = megakv_coupled_config()
        policies = enumerate_configs(4, work_stealing=False, fixed_pipeline=fixed)
        best = search.best(profile_for("K16-G95-S"), configs=policies)
        assert tuple(s.tasks for s in best.config.stages) == tuple(
            s.tasks for s in fixed.stages
        )

    def test_best_config_for_helper(self):
        config = best_config_for(APU_A10_7850K, profile_for("K16-G95-S"))
        assert config.num_stages in (1, 3)


class TestPlanShapes:
    """Qualitative planning claims from the paper's Section V-C."""

    @pytest.fixture(scope="class")
    def search(self):
        return ConfigurationSearch(CostModel(APU_A10_7850K))

    def test_small_kv_get_heavy_offloads_more(self, search):
        """Read-intensive small-KV workloads put more than just IN on the
        GPU (paper: [IN, KC, RD]GPU for K8/K16 at 95-100 % GET)."""
        offloaded = 0
        for label in ("K8-G100-U", "K8-G95-U", "K16-G100-U", "K16-G95-U"):
            config = search.best(profile_for(label)).config
            gpu_stage = config.gpu_stage
            if gpu_stage is not None and len(gpu_stage.tasks) > 1:
                offloaded += 1
        assert offloaded >= 2

    def test_write_heavy_keeps_insert_delete_near_mm(self, search):
        """For 95 % GET the paper moves Insert/Delete to the CPU."""
        moved = 0
        for label in ("K8-G95-S", "K16-G95-S", "K32-G95-S", "K128-G95-S"):
            config = search.best(profile_for(label)).config
            if config.insert_on_cpu or config.delete_on_cpu:
                moved += 1
        assert moved >= 2

    def test_gpu_always_used(self, search):
        """On this hardware a pure-CPU pipeline never wins."""
        for label in ("K8-G95-U", "K32-G50-S", "K128-G100-S"):
            assert search.best(profile_for(label)).config.gpu_stage is not None
