"""Unit tests for the PCIe transfer model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.pcie import PCIeLink
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV


class TestCoupled:
    def test_transfers_free(self):
        link = PCIeLink(APU_A10_7850K)
        assert link.coupled
        assert link.transfer_ns(1 << 20) == 0.0
        assert link.round_trip_ns(1 << 20, 1 << 20) == 0.0


class TestDiscrete:
    @pytest.fixture
    def link(self):
        return PCIeLink(DISCRETE_MEGAKV)

    def test_latency_floor(self, link):
        tiny = link.transfer_ns(1)
        assert tiny >= DISCRETE_MEGAKV.pcie_latency_us * 1000.0

    def test_bandwidth_term(self, link):
        small = link.transfer_ns(1 << 10)
        large = link.transfer_ns(1 << 24)
        expected_delta = ((1 << 24) - (1 << 10)) / DISCRETE_MEGAKV.pcie_bandwidth_gbs
        assert large - small == pytest.approx(expected_delta, rel=1e-6)

    def test_zero_bytes_free(self, link):
        assert link.transfer_ns(0) == 0.0

    def test_round_trip_sums(self, link):
        assert link.round_trip_ns(1000, 2000) == pytest.approx(
            link.transfer_ns(1000) + link.transfer_ns(2000)
        )

    def test_negative_payload_rejected(self, link):
        with pytest.raises(ConfigurationError):
            link.transfer_ns(-1)
