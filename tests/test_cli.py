"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "K16-G95-S"])
        assert args.workload == "K16-G95-S"
        assert args.top == 8
        assert args.latency_us == 1000.0

    def test_measure_config_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["measure", "K8-G95-U", "--config", "nope"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "K16-G95-S" in out
        assert out.count("K8-") == 6

    def test_plan(self, capsys):
        assert main(["plan", "K16-G95-S", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out
        assert "GPU" in out

    def test_plan_bad_workload(self, capsys):
        assert main(["plan", "K9-G95-S"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_measure_dido(self, capsys):
        assert main(["measure", "K8-G95-U"]) == 0
        out = capsys.readouterr().out
        assert "throughput (MOPS)" in out
        assert "DIDO" in out

    def test_measure_megakv(self, capsys):
        assert main(["measure", "K8-G95-U", "--config", "megakv"]) == 0
        out = capsys.readouterr().out
        assert "Mega-KV" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "fig04", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Figure 6" in out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err


class TestTelemetryCommand:
    @pytest.fixture(autouse=True)
    def _disable_after(self):
        yield
        from repro.telemetry import configure

        configure(enabled=False)

    def test_summary(self, capsys):
        assert main(["telemetry", "--batches", "1", "--batch-size", "256"]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "replans" in out

    def test_jsonl_export(self, tmp_path):
        from repro.telemetry import read_jsonl

        path = str(tmp_path / "trace.jsonl")
        code = main(
            ["telemetry", "--export", "jsonl", "--out", path,
             "--batches", "2", "--batch-size", "256"]
        )
        assert code == 0
        metrics, events = read_jsonl(path)
        assert any(e.kind == "replan" for e in events)
        tasks = {e.fields["task"] for e in events if e.name == "pipeline_stage"}
        assert tasks == {"RV", "PP", "MM", "IN", "KC", "RD", "WR", "SD"}
        assert "repro_pipeline_queries_total" in metrics

    def test_prom_export_parses(self, capsys):
        from repro.telemetry import parse_prometheus

        assert main(["telemetry", "--export", "prom",
                     "--batches", "1", "--batch-size", "256"]) == 0
        out = capsys.readouterr().out
        families = parse_prometheus(out)
        assert "repro_pipeline_batches_total" in families

    def test_measure_telemetry_out(self, tmp_path, capsys):
        from repro.telemetry import read_jsonl

        path = str(tmp_path / "measure.jsonl")
        assert main(["measure", "K8-G95-U", "--telemetry-out", path]) == 0
        metrics, events = read_jsonl(path)
        assert "repro_executor_measurements_total" in metrics
        assert any(e.kind == "span" for e in events)
