"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan", "K16-G95-S"])
        assert args.workload == "K16-G95-S"
        assert args.top == 8
        assert args.latency_us == 1000.0

    def test_measure_config_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["measure", "K8-G95-U", "--config", "nope"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "K16-G95-S" in out
        assert out.count("K8-") == 6

    def test_plan(self, capsys):
        assert main(["plan", "K16-G95-S", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out
        assert "GPU" in out

    def test_plan_bad_workload(self, capsys):
        assert main(["plan", "K9-G95-S"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_measure_dido(self, capsys):
        assert main(["measure", "K8-G95-U"]) == 0
        out = capsys.readouterr().out
        assert "throughput (MOPS)" in out
        assert "DIDO" in out

    def test_measure_megakv(self, capsys):
        assert main(["measure", "K8-G95-U", "--config", "megakv"]) == 0
        out = capsys.readouterr().out
        assert "Mega-KV" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "fig04", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Figure 6" in out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err
