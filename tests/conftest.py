"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.cost_model import CostModel
from repro.core.profiler import WorkloadProfile
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV
from repro.kv.store import KVStore
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import QueryStream, standard_workload


@pytest.fixture(scope="session")
def apu():
    return APU_A10_7850K


@pytest.fixture(scope="session")
def discrete():
    return DISCRETE_MEGAKV


@pytest.fixture(scope="session")
def executor(apu):
    """Detailed-fidelity executor (shared: it is stateless besides caches)."""
    return PipelineExecutor(apu)


@pytest.fixture(scope="session")
def cost_model(apu):
    return CostModel(apu)


@pytest.fixture
def small_store():
    """A store small enough to hit eviction quickly in tests."""
    return KVStore(memory_bytes=4 * 1024 * 1024, expected_objects=4096)


@pytest.fixture
def megakv_config():
    return megakv_coupled_config()


@pytest.fixture
def k16_stream():
    """Deterministic K16-G95-S query stream over a small key space."""
    return QueryStream(standard_workload("K16-G95-S"), num_keys=2000, seed=11)


def profile_for(label: str) -> WorkloadProfile:
    """Helper used across test modules (import from conftest)."""
    return WorkloadProfile.from_spec(standard_workload(label))
