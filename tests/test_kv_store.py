"""Unit tests for the assembled KV store (index + heap)."""

import pytest

from repro.kv.store import KVStore


@pytest.fixture
def store():
    return KVStore(memory_bytes=8 << 20, expected_objects=8192)


class TestBasicOperations:
    def test_set_then_get(self, store):
        store.set(b"user:1", b"alice")
        assert store.get(b"user:1") == b"alice"

    def test_get_missing(self, store):
        assert store.get(b"ghost") is None

    def test_overwrite(self, store):
        store.set(b"k", b"v1")
        outcome = store.set(b"k", b"v2")
        assert outcome.replaced is not None
        assert outcome.replaced.value == b"v1"
        assert store.get(b"k") == b"v2"

    def test_overwrite_keeps_single_entry(self, store):
        store.set(b"k", b"v1")
        store.set(b"k", b"v2")
        store.set(b"k", b"v3")
        assert store.get(b"k") == b"v3"
        assert len(store) == 1

    def test_delete(self, store):
        store.set(b"k", b"v")
        assert store.delete(b"k")
        assert store.get(b"k") is None

    def test_delete_missing(self, store):
        assert not store.delete(b"nope")

    def test_len(self, store):
        for i in range(20):
            store.set(f"k{i}".encode(), b"v")
        assert len(store) == 20

    def test_binary_safe_values(self, store):
        value = bytes(range(256))
        store.set(b"bin", value)
        assert store.get(b"bin") == value


class TestPrimitives:
    def test_index_search_then_key_compare(self, store):
        store.set(b"target", b"val")
        candidates = store.index_search(b"target")
        location = store.key_compare(b"target", candidates)
        assert location is not None
        assert store.read_value(location) == b"val"

    def test_key_compare_rejects_false_candidates(self, store):
        store.set(b"real", b"v")
        # A bogus candidate list: locations that hold a different key.
        candidates = store.index_search(b"real")
        assert store.key_compare(b"other-key", candidates) is None
        assert store.stats.signature_false_positives >= 1

    def test_read_value_records_access(self, store):
        store.set(b"k", b"v")
        loc = store.key_compare(b"k", store.index_search(b"k"))
        store.read_value(loc, epoch=3)
        obj = store.heap.get(loc, touch=False)
        assert obj.sample_epoch == 3
        assert obj.access_count >= 1

    def test_allocate_reports_locations_for_deletes(self, store):
        store.set(b"k", b"v1")
        outcome = store.allocate(b"k", b"v2")
        assert outcome.replaced_location is not None
        assert outcome.index_deletes == 1


class TestEvictionIntegration:
    def test_set_on_full_store_evicts_and_cleans_index(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=70000, heap="slab")
        evictions = 0
        n = 0
        while evictions == 0 and n < 80000:
            outcome = store.set(f"key-{n:06d}".encode(), b"x" * 8)
            if outcome.evicted is not None:
                evictions += 1
                evicted_key = outcome.evicted.key
            n += 1
        assert evictions == 1
        # The evicted key is gone from both heap and index.
        assert store.get(evicted_key) is None

    def test_steady_state_insert_delete_pairing(self):
        """At steady state each SET produces one Insert and one Delete
        (the paper's Figure 6 premise)."""
        store = KVStore(memory_bytes=1 << 20, expected_objects=70000, heap="slab")
        # Fill until the first eviction.
        n = 0
        while True:
            outcome = store.set(f"key-{n:06d}".encode(), b"x" * 8)
            n += 1
            if outcome.evicted is not None:
                break
        inserts_before = store.index.stats.inserts
        deletes_before = store.index.stats.deletes
        for i in range(100):
            store.set(f"new-{i:06d}".encode(), b"x" * 8)
        assert store.index.stats.inserts - inserts_before == 100
        assert store.index.stats.deletes - deletes_before == 100


class TestStats:
    def test_hit_rate(self, store):
        store.set(b"k", b"v")
        store.get(b"k")
        store.get(b"missing")
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_counters(self, store):
        store.set(b"a", b"1")
        store.get(b"a")
        store.delete(b"a")
        assert store.stats.sets == 1
        assert store.stats.gets == 1
        assert store.stats.deletes == 1
        assert store.stats.delete_hits == 1


class TestPopulate:
    def test_populate_round_trip(self, store):
        items = [(f"k{i}".encode(), f"value-{i}".encode()) for i in range(50)]
        assert store.populate(items) == 50
        for key, value in items:
            assert store.get(key) == value

    def test_populate_stops_at_capacity(self):
        store = KVStore(memory_bytes=1 << 20, expected_objects=64)
        items = [(f"key-{i:08d}".encode(), b"x" * 8) for i in range(10000)]
        stored = store.populate(items)
        assert stored < 10000  # cuckoo index capacity bounds the load
