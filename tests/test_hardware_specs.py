"""Unit tests for platform and processor specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.specs import (
    APU_A10_7850K,
    DISCRETE_MEGAKV,
    PlatformSpec,
    ProcessorKind,
    ProcessorSpec,
    platform_by_name,
)


class TestProcessorSpec:
    def test_apu_cpu_shape(self):
        cpu = APU_A10_7850K.cpu
        assert cpu.kind is ProcessorKind.CPU
        assert cpu.cores == 4
        assert cpu.clock_ghz == pytest.approx(3.7)

    def test_apu_gpu_shape(self):
        gpu = APU_A10_7850K.gpu
        assert gpu.kind is ProcessorKind.GPU
        assert gpu.cores == 8
        assert gpu.lanes_per_core == 64
        assert gpu.total_lanes == 512

    def test_cycle_ns(self):
        assert APU_A10_7850K.cpu.cycle_ns == pytest.approx(1 / 3.7)

    def test_instruction_time(self):
        cpu = APU_A10_7850K.cpu
        assert cpu.instruction_time_ns(cpu.ipc) == pytest.approx(cpu.cycle_ns)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec(
                name="bad", kind=ProcessorKind.CPU, cores=0, lanes_per_core=1,
                clock_ghz=1.0, ipc=1.0, mem_latency_ns=1, cache_latency_ns=1,
                cache_line_bytes=64, cache_size_bytes=1024,
            )

    def test_gpu_requires_saturation_batch(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec(
                name="bad", kind=ProcessorKind.GPU, cores=1, lanes_per_core=64,
                clock_ghz=1.0, ipc=1.0, mem_latency_ns=1, cache_latency_ns=1,
                cache_line_bytes=64, cache_size_bytes=1024,
            )


class TestPlatformSpec:
    def test_apu_is_coupled(self):
        assert APU_A10_7850K.coupled

    def test_discrete_has_pcie(self):
        assert not DISCRETE_MEGAKV.coupled
        assert DISCRETE_MEGAKV.pcie_bandwidth_gbs > 0

    def test_shared_memory_matches_paper(self):
        assert APU_A10_7850K.shared_memory_bytes == 1908 * 1024 * 1024

    def test_price_ratio_matches_paper(self):
        """The paper: discrete processors cost ~25x the APU."""
        ratio = DISCRETE_MEGAKV.price_usd / APU_A10_7850K.price_usd
        assert ratio == pytest.approx(25.0)

    def test_tdp_matches_paper(self):
        assert APU_A10_7850K.tdp_watts == pytest.approx(95.0)
        assert DISCRETE_MEGAKV.tdp_watts == pytest.approx(2 * 95 + 2 * 250)

    def test_processor_lookup(self):
        assert APU_A10_7850K.processor(ProcessorKind.CPU) is APU_A10_7850K.cpu
        assert APU_A10_7850K.processor(ProcessorKind.GPU) is APU_A10_7850K.gpu

    def test_cpu_gpu_swapped_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformSpec(
                name="bad",
                cpu=APU_A10_7850K.gpu,
                gpu=APU_A10_7850K.cpu,
                coupled=True,
                memory_bandwidth_gbs=20.0,
                shared_memory_bytes=1 << 30,
                price_usd=100.0,
                tdp_watts=95.0,
            )


class TestPlatformByName:
    def test_lookup(self):
        assert platform_by_name("apu") is APU_A10_7850K
        assert platform_by_name("DISCRETE") is DISCRETE_MEGAKV

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            platform_by_name("laptop")
