"""The columnar wire plane vs the legacy dataclass codec.

Every test here is an identity check: whatever the legacy per-object
codec (:mod:`repro.kv.protocol`, :func:`repro.net.packets._pack`,
:func:`repro.server._chunk_responses`) produces, the columnar plane
(:mod:`repro.net.wire`) must produce byte for byte — including the exact
:class:`~repro.errors.ProtocolError` messages on malformed input, and
with NumPy absent (the scalar fallback).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.net.wire as wire
from repro.errors import ProtocolError
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_queries,
    encode_queries,
    encode_responses,
)
from repro.net.packets import ETHERNET_MTU, frames_for_responses
from repro.net.wire import (
    QueryColumns,
    chunk_response_payloads,
    cut_frame_bounds,
    decode_payload,
    decode_window,
    encode_response_window,
    frames_for_response_columns,
)
from repro.server import MAX_RESPONSE_PAYLOAD, _chunk_responses

keys = st.binary(min_size=1, max_size=64)
#: Values reach past the MTU so oversized queries/responses are covered.
values = st.binary(min_size=0, max_size=2 * ETHERNET_MTU)


@st.composite
def query_batches(draw, max_size=40):
    """Random batches over all three opcodes, empty and oversized values."""
    raw = draw(
        st.lists(
            st.tuples(st.sampled_from(list(QueryType)), keys, values),
            max_size=max_size,
        )
    )
    return [
        Query(qtype, key, value if qtype is QueryType.SET else b"")
        for qtype, key, value in raw
    ]


responses_strategy = st.lists(
    st.tuples(st.sampled_from(list(ResponseStatus)), values), max_size=40
)


@pytest.fixture(params=["vector", "scalar"])
def wire_mode(request, monkeypatch):
    """Run the wrapped test twice: NumPy path and the no-NumPy fallback."""
    if request.param == "scalar":
        monkeypatch.setattr(wire, "np", None)
    return request.param


def columns_equal_queries(columns: QueryColumns, queries: list[Query]) -> bool:
    return (
        columns.qtypes == [q.qtype for q in queries]
        and columns.keys == [q.key for q in queries]
        and columns.values == [q.value for q in queries]
    )


# ------------------------------------------------------------------- decode


class TestDecodeIdentity:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(query_batches())
    def test_single_payload_matches_legacy(self, batch):
        payload = encode_queries(batch)
        assert columns_equal_queries(decode_payload(payload), decode_queries(payload))

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(query_batches(max_size=12), max_size=8))
    def test_window_matches_per_datagram_decode(self, batches):
        payloads = [encode_queries(batch) for batch in batches]
        segments, errors = decode_window(payloads)
        assert errors == []
        assert len(segments) == len(payloads)
        for segment, payload in zip(segments, payloads):
            assert columns_equal_queries(segment, decode_queries(payload))

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(query_batches(), st.data())
    def test_mutated_payload_same_error_or_same_result(self, batch, data):
        """Corrupt or truncate a valid payload: identical outcome both ways."""
        payload = bytearray(encode_queries(batch))
        if payload:
            action = data.draw(st.sampled_from(["truncate", "corrupt", "extend"]))
            if action == "truncate":
                cut = data.draw(st.integers(0, len(payload) - 1))
                payload = payload[:cut]
            elif action == "corrupt":
                pos = data.draw(st.integers(0, len(payload) - 1))
                payload[pos] = data.draw(st.integers(0, 255))
            else:
                payload.extend(data.draw(st.binary(min_size=1, max_size=16)))
        payload = bytes(payload)
        try:
            expected = decode_queries(payload)
        except ProtocolError as exc:
            with pytest.raises(ProtocolError) as caught:
                decode_payload(payload)
            assert str(caught.value) == str(exc)
        else:
            assert columns_equal_queries(decode_payload(payload), expected)

    def test_error_isolated_to_its_datagram(self):
        good = encode_queries([Query(QueryType.SET, b"k", b"v")])
        bad = b"\x07" + good[1:]  # unknown opcode
        segments, errors = decode_window([good, bad, good])
        assert [e.datagram for e in errors] == [1]
        assert errors[0].message == "unknown opcode 7 at offset 7"
        assert len(segments[0]) == len(segments[2]) == 1
        assert len(segments[1]) == 0

    def test_errored_datagram_drops_all_its_queries(self):
        """A datagram failing mid-way contributes nothing, like the legacy
        all-or-nothing decode."""
        two = encode_queries(
            [Query(QueryType.GET, b"first"), Query(QueryType.GET, b"second")]
        )
        truncated = two[:-3]
        segments, errors = decode_window([truncated])
        assert len(segments[0]) == 0
        assert len(errors) == 1

    @pytest.mark.parametrize(
        "payload, message",
        [
            (b"\x01\x01\x00", "truncated query header at offset 0"),
            (b"\x09\x01\x00\x00\x00\x00\x00k", "unknown opcode 9 at offset 7"),
            (b"\x01\x05\x00\x00\x00\x00\x00k", "truncated query body at offset 7"),
            (b"\x01\x00\x00\x00\x00\x00\x00", "query key must be non-empty"),
            (
                b"\x01\x01\x00\x01\x00\x00\x00kv",
                "GET query cannot carry a value",
            ),
            (
                b"\x03\x01\x00\x01\x00\x00\x00kv",
                "DELETE query cannot carry a value",
            ),
        ],
    )
    def test_exact_error_messages(self, wire_mode, payload, message):
        with pytest.raises(ProtocolError, match=f"^{message}$"):
            decode_payload(payload)
        with pytest.raises(ProtocolError, match=f"^{message}$"):
            decode_queries(payload)

    def test_scalar_window_matches_vector(self, monkeypatch):
        batches = [
            [Query(QueryType.SET, b"a", b"1"), Query(QueryType.GET, b"b")],
            [],
            [Query(QueryType.DELETE, b"c")],
        ]
        payloads = [encode_queries(batch) for batch in batches] + [b"\xffjunk"]
        vector = decode_window(payloads)
        monkeypatch.setattr(wire, "np", None)
        scalar = decode_window(payloads)
        assert [
            (s.qtypes, s.keys, s.values) for s in vector[0]
        ] == [(s.qtypes, s.keys, s.values) for s in scalar[0]]
        assert [(e.datagram, e.message) for e in vector[1]] == [
            (e.datagram, e.message) for e in scalar[1]
        ]


# ------------------------------------------------------------------- encode


def make_responses(raw) -> tuple[list[Response], list[int], list[bytes | None]]:
    responses = [Response(status, value) for status, value in raw]
    statuses = [r.status.value for r in responses]
    values_col = [r.value if r.value else None for r in responses]
    return responses, statuses, values_col


class TestEncodeIdentity:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(responses_strategy)
    def test_window_encode_matches_legacy(self, raw):
        responses, statuses, values_col = make_responses(raw)
        buffer, offsets = encode_response_window(statuses, values_col)
        assert bytes(buffer) == encode_responses(responses)
        assert list(offsets)[0] == 0
        assert int(list(offsets)[-1]) == len(buffer)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(responses_strategy)
    def test_frames_match_legacy_pack(self, raw):
        responses, statuses, values_col = make_responses(raw)
        expected = frames_for_responses(responses)
        got = frames_for_response_columns(statuses, values_col)
        assert [(f.payload, f.query_count) for f in got] == [
            (f.payload, f.query_count) for f in expected
        ]

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(responses_strategy)
    def test_precomputed_sizes_change_nothing(self, raw):
        responses, statuses, values_col = make_responses(raw)
        sizes = [r.wire_size for r in responses]
        with_sizes = encode_response_window(statuses, values_col, sizes)
        without = encode_response_window(statuses, values_col)
        assert bytes(with_sizes[0]) == bytes(without[0])
        assert list(with_sizes[1]) == list(without[1])

    def test_scalar_encode_matches_vector(self, monkeypatch):
        raw = [
            (ResponseStatus.OK, b"x" * 40),
            (ResponseStatus.NOT_FOUND, b""),
            (ResponseStatus.STORED, b""),
            (ResponseStatus.OK, b"y" * 3000),
        ]
        responses, statuses, values_col = make_responses(raw)
        vector = encode_response_window(statuses, values_col)
        monkeypatch.setattr(wire, "np", None)
        scalar = encode_response_window(statuses, values_col)
        assert bytes(vector[0]) == bytes(scalar[0]) == encode_responses(responses)
        assert list(vector[1]) == list(scalar[1])


# ----------------------------------------------------------------- chunking


class TestChunkingIdentity:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(responses_strategy)
    def test_peer_payloads_match_server_chunking(self, raw):
        responses, statuses, values_col = make_responses(raw)
        buffer, offsets = encode_response_window(statuses, values_col)
        got = chunk_response_payloads(
            buffer, offsets, [(0, len(responses))], MAX_RESPONSE_PAYLOAD
        )
        expected = [
            encode_responses(chunk) for chunk in _chunk_responses(responses)
        ]
        assert got == expected

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(responses_strategy, st.integers(1, 5))
    def test_split_ranges_equal_concatenated_span(self, raw, pieces):
        """One peer's responses split across several arrival segments chunk
        exactly like the concatenated list (the server's per-peer view)."""
        responses, statuses, values_col = make_responses(raw)
        n = len(responses)
        buffer, offsets = encode_response_window(statuses, values_col)
        bounds = sorted({0, n, *[(i * n) // pieces for i in range(1, pieces)]})
        ranges = list(zip(bounds, bounds[1:]))
        got = chunk_response_payloads(buffer, offsets, ranges, MAX_RESPONSE_PAYLOAD)
        expected = [
            encode_responses(chunk) for chunk in _chunk_responses(responses)
        ]
        assert got == expected

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(responses_strategy, st.sampled_from([64, 600, ETHERNET_MTU]))
    def test_cut_frame_bounds_match_pack_boundaries(self, raw, mtu):
        responses, statuses, values_col = make_responses(raw)
        _, offsets = encode_response_window(statuses, values_col)
        bounds = cut_frame_bounds(offsets, mtu)
        from repro.net.packets import _pack

        expected = _pack(responses, encode_responses, mtu)
        spans = [b - a for a, b in zip(bounds, bounds[1:])]
        assert spans == [f.query_count for f in expected]

    def test_oversized_response_rides_alone(self, wire_mode):
        raw = [
            (ResponseStatus.OK, b"a" * 100),
            (ResponseStatus.OK, b"b" * (2 * MAX_RESPONSE_PAYLOAD)),
            (ResponseStatus.OK, b"c" * 100),
        ]
        responses, statuses, values_col = make_responses(raw)
        buffer, offsets = encode_response_window(statuses, values_col)
        got = chunk_response_payloads(
            buffer, offsets, [(0, 3)], MAX_RESPONSE_PAYLOAD
        )
        expected = [encode_responses(c) for c in _chunk_responses(responses)]
        assert got == expected
        assert len(got) == 3


# ------------------------------------------------------------ QueryColumns


class TestQueryColumns:
    def test_round_trip_through_queries(self):
        queries = [
            Query(QueryType.SET, b"k1", b"v1"),
            Query(QueryType.GET, b"k2"),
            Query(QueryType.DELETE, b"k3"),
        ]
        columns = QueryColumns.from_queries(queries)
        assert columns.to_queries() == queries
        assert len(columns) == 3

    def test_slicing_keeps_numpy_columns(self):
        payload = encode_queries(
            [Query(QueryType.SET, b"k%d" % i, b"v") for i in range(6)]
        )
        columns = decode_payload(payload)
        part = columns[2:5]
        assert len(part) == 3
        assert part.keys == [b"k2", b"k3", b"k4"]
        if columns.opcodes is not None:
            assert list(part.opcodes) == [2, 2, 2]
            assert list(part.key_lens) == [2, 2, 2]

    def test_concat_restores_window(self, wire_mode):
        batches = [
            [Query(QueryType.SET, b"a", b"1")],
            [Query(QueryType.GET, b"b"), Query(QueryType.DELETE, b"c")],
        ]
        segments, errors = decode_window([encode_queries(b) for b in batches])
        assert not errors
        merged = QueryColumns.concat(segments)
        assert merged.to_queries() == [q for batch in batches for q in batch]

    def test_slice_indexing_only(self):
        columns = QueryColumns.from_queries([Query(QueryType.GET, b"k")])
        with pytest.raises(TypeError):
            columns[0]
