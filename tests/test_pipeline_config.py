"""Unit tests for pipeline partitioning and index-assignment configs."""

import pytest

from repro.core.pipeline_config import PipelineConfig, StageSpec, gpu_segments
from repro.core.tasks import TASK_ORDER, IndexOp, Task
from repro.errors import ConfigurationError
from repro.hardware.specs import ProcessorKind


class TestStageSpec:
    def test_valid_cpu_stage(self):
        stage = StageSpec((Task.RV, Task.PP, Task.MM), ProcessorKind.CPU, cores=2)
        assert Task.PP in stage
        assert stage.label == "[RV, PP, MM]CPU"

    def test_valid_gpu_stage(self):
        stage = StageSpec((Task.IN, Task.KC), ProcessorKind.GPU)
        assert stage.label == "[IN, KC]GPU"

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            StageSpec((), ProcessorKind.CPU, cores=1)

    def test_rejects_noncontiguous(self):
        with pytest.raises(ConfigurationError):
            StageSpec((Task.RV, Task.MM), ProcessorKind.CPU, cores=1)

    def test_rejects_cpu_only_task_on_gpu(self):
        with pytest.raises(ConfigurationError):
            StageSpec((Task.MM, Task.IN), ProcessorKind.GPU)

    def test_rejects_cpu_stage_without_cores(self):
        with pytest.raises(ConfigurationError):
            StageSpec((Task.RV,), ProcessorKind.CPU, cores=0)

    def test_rejects_gpu_stage_with_cores(self):
        with pytest.raises(ConfigurationError):
            StageSpec((Task.IN,), ProcessorKind.GPU, cores=2)


class TestAssemble:
    def test_megakv_shape(self):
        config = PipelineConfig.assemble((Task.IN,), total_cpu_cores=4, prefix_cores=2)
        assert config.num_stages == 3
        assert config.stages[0].tasks == (Task.RV, Task.PP, Task.MM)
        assert config.stages[1].tasks == (Task.IN,)
        assert config.stages[2].tasks == (Task.KC, Task.RD, Task.WR, Task.SD)
        assert config.stages[0].cores + config.stages[2].cores == 4

    def test_full_gpu_segment(self):
        config = PipelineConfig.assemble(
            (Task.IN, Task.KC, Task.RD), total_cpu_cores=4
        )
        assert config.stages[2].tasks == (Task.WR, Task.SD)

    def test_cpu_only(self):
        config = PipelineConfig.assemble((), total_cpu_cores=4)
        assert config.num_stages == 1
        assert config.gpu_stage is None
        assert set(config.stages[0].index_ops) == set(IndexOp)

    def test_index_ops_default_on_gpu(self):
        config = PipelineConfig.assemble((Task.IN,), total_cpu_cores=4)
        gpu = config.gpu_stage
        assert set(gpu.index_ops) == set(IndexOp)

    def test_insert_delete_reassignment(self):
        config = PipelineConfig.assemble(
            (Task.IN,), total_cpu_cores=4, insert_on_cpu=True, delete_on_cpu=True
        )
        assert config.gpu_stage.index_ops == (IndexOp.SEARCH,)
        prefix_ops = set(config.stages[0].index_ops)
        assert prefix_ops == {IndexOp.INSERT, IndexOp.DELETE}

    def test_stage_of_index_op(self):
        config = PipelineConfig.assemble(
            (Task.IN,), total_cpu_cores=4, insert_on_cpu=True
        )
        assert config.stage_of_index_op(IndexOp.SEARCH).processor is ProcessorKind.GPU
        assert config.stage_of_index_op(IndexOp.INSERT).processor is ProcessorKind.CPU
        assert config.stage_of_index_op(IndexOp.DELETE).processor is ProcessorKind.GPU

    def test_reassignment_without_gpu_search_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble((), total_cpu_cores=4, insert_on_cpu=True)

    def test_noncontiguous_gpu_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble((Task.IN, Task.RD), total_cpu_cores=4)

    def test_cpu_only_task_in_gpu_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble((Task.MM, Task.IN), total_cpu_cores=4)

    def test_prefix_cores_bounds(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble((Task.IN,), total_cpu_cores=4, prefix_cores=4)
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble((Task.IN,), total_cpu_cores=4, prefix_cores=0)

    def test_single_core_cpu_rejected_for_three_stages(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.assemble((Task.IN,), total_cpu_cores=1)

    def test_stage_of(self):
        config = PipelineConfig.assemble((Task.IN,), total_cpu_cores=4)
        assert config.stage_of(Task.RV) is config.stages[0]
        assert config.stage_of(Task.KC) is config.stages[2]


class TestConfigInvariants:
    def test_tasks_cover_order_exactly(self):
        for segment in gpu_segments():
            config = PipelineConfig.assemble(segment, total_cpu_cores=4)
            covered = tuple(t for s in config.stages for t in s.tasks)
            assert covered == TASK_ORDER

    def test_direct_construction_validates_coverage(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(
                stages=(
                    StageSpec((Task.RV, Task.PP), ProcessorKind.CPU, cores=4),
                )
            )

    def test_first_last_cpu(self):
        stages = (
            StageSpec(TASK_ORDER[:3], ProcessorKind.CPU, cores=2),
            StageSpec((Task.IN,), ProcessorKind.GPU),
            StageSpec(TASK_ORDER[4:], ProcessorKind.CPU, cores=2),
        )
        config = PipelineConfig(stages=stages)
        assert config.stages[0].processor is ProcessorKind.CPU

    def test_with_work_stealing(self):
        config = PipelineConfig.assemble((Task.IN,), total_cpu_cores=4)
        off = config.with_work_stealing(False)
        assert not off.work_stealing
        assert off.stages == config.stages

    def test_label_mentions_reassignment(self):
        config = PipelineConfig.assemble(
            (Task.IN,), total_cpu_cores=4, insert_on_cpu=True, delete_on_cpu=True
        )
        assert "Insert@CPU" in config.label
        assert "Delete@CPU" in config.label


class TestGpuSegments:
    def test_segments_start_at_in(self):
        segments = gpu_segments()
        assert () in segments
        for segment in segments:
            if segment:
                assert segment[0] is Task.IN

    def test_expected_segments(self):
        names = {tuple(t.name for t in s) for s in gpu_segments()}
        assert names == {(), ("IN",), ("IN", "KC"), ("IN", "KC", "RD")}
