"""Calibration report: Fig 4/5/6 analogues for Mega-KV (Coupled) plus DIDO speedups."""
from repro import *
from repro.core.profiler import WorkloadProfile
from repro.core.config_search import ConfigurationSearch
from repro.core.cost_model import CostModel
from repro.workloads.ycsb import standard_workload

from repro.pipeline.megakv import megakv_executor, measure_megakv
mkex = megakv_executor(APU_A10_7850K)   # Mega-KV (Coupled): port overhead
ex = PipelineExecutor(APU_A10_7850K)    # DIDO: native implementation
mk = megakv_coupled_config()

print("== Fig 4/5: Mega-KV (Coupled) stage times (us) & GPU util, G95-S ==")
for name in ("K8", "K16", "K32", "K128"):
    prof = WorkloadProfile.from_spec(standard_workload(f"{name}-G95-S"))
    m = mkex.measure(mk, prof)
    times = [round(t/1000,1) for t in m.estimate.stage_times_ns]
    print(f"{name:5s} batch={m.batch_size:6d} NP={times[0]:7.1f} IN={times[1]:7.1f} RSV={times[2]:7.1f} "
          f"gpu={m.gpu_utilization:.2f} cpu={m.cpu_utilization:.2f} thr={m.throughput_mops:6.2f} MOPS")

print()
print("== Fig 6: GPU index-op time shares (K8-G95-S, Mega-KV) ==")
prof = WorkloadProfile.from_spec(standard_workload("K8-G95-S"))
m = mkex.measure(mk, prof)
ops = m.estimate.index_op_times_ns
tot = sum(ops.values())
for op, t in ops.items():
    print(f"  {op.value:7s} {t/1000:8.1f} us  share={t/tot:.2%}")

print()
print("== DIDO vs Mega-KV (Coupled) speedups ==")
cm_search = ConfigurationSearch(CostModel(APU_A10_7850K))
for label in ("K8-G95-U","K8-G95-S","K8-G100-U","K8-G50-U","K16-G95-S","K32-G95-S","K128-G95-S","K128-G50-S"):
    prof = WorkloadProfile.from_spec(standard_workload(label))
    base = mkex.measure(mk, prof)
    best = cm_search.best(prof)
    dido = ex.measure(best.config, prof)
    print(f"{label:11s} mega={base.throughput_mops:7.2f} dido={dido.throughput_mops:7.2f} "
          f"speedup={dido.throughput_mops/base.throughput_mops:5.2f}  pipeline={best.config.label}")

print()
print("== Technique ablations (paper Figs 13-15 shape) ==")
from repro.core.config_search import enumerate_configs
mk_steal = mk.with_work_stealing(True)
for label in ("K8-G95-U","K16-G95-S","K32-G95-S","K128-G95-S","K8-G50-U","K128-G50-S"):
    prof = WorkloadProfile.from_spec(standard_workload(label))
    base = ex.measure(mk, prof).throughput_mops
    # Fig 13: flexible index assignment only (fixed Mega-KV partitioning, no steal)
    flex_cfgs = enumerate_configs(4, work_stealing=False, fixed_pipeline=mk)
    flex = max(ex.measure(c, prof).throughput_mops for c in flex_cfgs)
    # Fig 15: work stealing only
    steal = ex.measure(mk_steal, prof).throughput_mops
    print(f"{label:11s} base={base:7.2f} flexIdx={flex/base:5.2f}x steal={steal/base:5.2f}x")
