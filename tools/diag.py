"""Stage-time diagnostics for candidate configs on selected workloads."""
import sys
from repro import *
from repro.core.profiler import WorkloadProfile
from repro.core.tasks import Task
from repro.pipeline.megakv import megakv_executor

ex = PipelineExecutor(APU_A10_7850K)
mkex = megakv_executor(APU_A10_7850K)

def show(tag, ex_, cfg, prof):
    m = ex_.measure(cfg, prof)
    ts = " ".join(f"{t/1000:6.1f}" for t in m.estimate.stage_times_ns)
    st = m.estimate.steal
    steal = f" steal->{st.new_tmax_ns/1000:6.1f}us" if st else ""
    print(f"  {tag:34s} N={m.batch_size:6d} [{ts}]us thr={m.throughput_mops:6.2f}{steal}  {cfg.label}")

for label in sys.argv[1:] or ["K8-G95-S","K8-G95-U","K128-G95-S"]:
    prof = WorkloadProfile.from_spec(standard_workload(label))
    print(label)
    show("megakv 2/2", mkex, megakv_coupled_config(), prof)
    for pc in (1,2):
        cfg = PipelineConfig.assemble((Task.IN,), total_cpu_cores=4, prefix_cores=pc,
                                      insert_on_cpu=True, delete_on_cpu=True)
        show(f"[IN]G+ID@CPU pc={pc}", ex, cfg, prof)
        cfg = PipelineConfig.assemble((Task.IN,Task.KC,Task.RD), total_cpu_cores=4, prefix_cores=pc,
                                      insert_on_cpu=True, delete_on_cpu=True)
        show(f"[IN,KC,RD]G+ID@CPU pc={pc}", ex, cfg, prof)
    from repro.core.config_search import ConfigurationSearch
    from repro.core.cost_model import CostModel
    best = ConfigurationSearch(CostModel(APU_A10_7850K)).best(prof)
    show("DIDO choice", ex, best.config, prof)
