"""Functional batch execution: every pipeline config computes real results.

The timing simulator answers "how fast"; this module answers "is it still
correct".  A :class:`FunctionalPipeline` takes a
:class:`~repro.pipeline.partition.PipelineConfig` and pushes a batch of
queries through the *actual* store — RV/PP parse real frames, MM really
allocates and evicts, IN really mutates the cuckoo table, KC really compares
keys, RD/WR really produce response bytes — stage by stage in the configured
order.  Because the pipeline information is carried with the batch (the
paper embeds it per batch), two consecutive batches may run under different
configurations and still produce correct results; the test suite asserts
that every legal configuration produces byte-identical responses.

Batch semantics match GPU batch processing: within one batch, each task is
applied to every query before the next task runs (so all MM allocations
happen before all index Searches, etc.), exactly as in Mega-KV's staged
kernels.

When work stealing is enabled, the GPU-eligible span of the bottleneck-ish
stage is executed by two logical executors ("gpu" owner claiming sets from
the head, "cpu" helper from the tail) through the
:class:`~repro.core.work_stealing.TagArray`, demonstrating the exactly-once
claim discipline functionally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.tasks import IndexOp, Task
from repro.core.work_stealing import TagArray
from repro.errors import SimulationError
from repro.telemetry import get_telemetry, stage_span, steal_event
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_queries,
)
from repro.kv.store import KVStore
from repro.net.packets import Frame, frames_for_responses
from repro.core.pipeline_config import PipelineConfig
from repro.hardware.specs import ProcessorKind


@dataclass
class _QueryContext:
    """Per-query scratch state threaded through the tasks."""

    query: Query
    candidates: list[int] = field(default_factory=list)
    location: int | None = None
    value: bytes | None = None
    response: Response | None = None
    # SET bookkeeping produced by MM, consumed by the Insert/Delete ops.
    # Pending deletes carry the stale entry's location so a Delete cannot
    # remove a freshly inserted entry for the same key.
    pending_insert: tuple[bytes, int] | None = None
    pending_deletes: list[tuple[bytes, int | None]] = field(default_factory=list)


@dataclass
class BatchResult:
    """Outcome of one functional batch."""

    responses: list[Response]
    frames: list[Frame]
    config_label: str
    steal_claims: dict[str, int] = field(default_factory=dict)

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.responses if r.status is not ResponseStatus.ERROR)


class FunctionalPipeline:
    """Executes batches against a :class:`~repro.kv.store.KVStore`.

    Parameters
    ----------
    store:
        The store to operate on (shared across batches and reconfigurations,
        as on the real shared-memory APU).
    epoch_source:
        Callable returning the profiler's current sampling epoch, used to
        stamp object access counters; defaults to a constant 0.
    """

    def __init__(self, store: KVStore, epoch_source=None):
        self.store = store
        self._epoch_source = epoch_source or (lambda: 0)
        self._batch_inserts: dict[bytes, _QueryContext] = {}
        self._batch_counter = 0
        self._pp_hint_us = 0.0

    # ------------------------------------------------------------ execution

    def process_frames(self, config: PipelineConfig, frames: list[Frame]) -> BatchResult:
        """RV entry point: parse queries out of frames, then process."""
        t0 = time.perf_counter()
        queries: list[Query] = []
        for frame in frames:
            queries.extend(decode_queries(frame.payload))
        # Parsing frame payloads is the PP task's real work; remember its
        # cost so the batch's PP span reports it (harmless when disabled).
        self._pp_hint_us = (time.perf_counter() - t0) * 1e6
        return self.process_batch(config, queries)

    def process_batch(self, config: PipelineConfig, queries: list[Query]) -> BatchResult:
        """Run one batch through every stage of ``config`` in order."""
        telemetry = get_telemetry()
        collect = telemetry.enabled
        pp_us, self._pp_hint_us = self._pp_hint_us, 0.0
        task_times: dict[Task, float] = {}
        t0 = time.perf_counter() if collect else 0.0
        contexts = [_QueryContext(q) for q in queries]
        if collect:
            # Batch intake (building per-query contexts) is RV's footprint
            # on this plane; PP's is whatever frame parsing cost upstream.
            task_times[Task.RV] = (time.perf_counter() - t0) * 1e6
            task_times[Task.PP] = pp_us
        steal_claims: dict[str, int] = {}
        # Batch-local dedup of pending index Inserts: when one key is SET
        # several times in a batch, only the last version's Insert reaches
        # the index (earlier versions were never inserted, so they need no
        # Delete either).  Without this, a hot Zipf key could stack enough
        # identical signatures in one batch to overflow its cuckoo buckets.
        self._batch_inserts: dict[bytes, _QueryContext] = {}
        for stage in config.stages:
            use_stealing = (
                config.work_stealing
                and stage.processor is ProcessorKind.GPU
                and len(contexts) > 0
            )
            if use_stealing:
                claims = self._run_stage_with_stealing(stage, contexts, task_times if collect else None)
                for owner, count in claims.items():
                    steal_claims[owner] = steal_claims.get(owner, 0) + count
            else:
                self._run_stage(stage, contexts, range(len(contexts)), task_times if collect else None)
        responses = [ctx.response for ctx in contexts]
        if any(r is None for r in responses):
            raise SimulationError("a query completed the pipeline without a response")
        t_send = time.perf_counter() if collect else 0.0
        frames = frames_for_responses(responses)
        self._batch_counter += 1
        if collect:
            task_times[Task.SD] = (time.perf_counter() - t_send) * 1e6
            self._emit_batch(telemetry, config, task_times, steal_claims, len(queries))
        return BatchResult(
            responses=responses,
            frames=frames,
            config_label=config.label,
            steal_claims=steal_claims,
        )

    def _emit_batch(
        self,
        telemetry,
        config: PipelineConfig,
        task_times: dict[Task, float],
        steal_claims: dict[str, int],
        num_queries: int,
    ) -> None:
        """Append this batch's spans, steal summary, and counters."""
        batch = self._batch_counter
        for stage in config.stages:
            for task in stage.tasks:
                duration = task_times.get(task, 0.0)
                telemetry.events.append(
                    stage_span(
                        stage=stage.label,
                        task=task.name,
                        processor=stage.processor.value,
                        duration_us=duration,
                        batch=batch,
                    )
                )
                telemetry.registry.histogram(
                    "repro_task_time_us", help="Wall-clock task time per batch"
                ).observe(duration, task=task.name)
        if steal_claims:
            gpu_stage = config.gpu_stage
            telemetry.events.append(
                steal_event(
                    stage=gpu_stage.label if gpu_stage else "<none>",
                    claims=steal_claims,
                    batch=batch,
                )
            )
        telemetry.registry.counter(
            "repro_pipeline_batches_total", help="Functional batches executed"
        ).inc()
        telemetry.registry.counter(
            "repro_pipeline_queries_total", help="Queries through the functional pipeline"
        ).inc(num_queries)

    # --------------------------------------------------------------- stages

    #: Execution order of index operations within a stage: stale-entry
    #: Deletes first, then Inserts, then Searches — so a GET in the same
    #: batch as its SET observes the new entry (batch read-your-write).
    _OP_PRIORITY = {IndexOp.DELETE: 0, IndexOp.INSERT: 1, IndexOp.SEARCH: 2}

    def _stage_phases(self, stage) -> list:
        """The stage's work as ordered ``(task, phase)`` whole-batch passes.

        Each phase is a callable over query indices, tagged with the task it
        belongs to so per-task spans can be attributed.  Batch semantics: a
        phase is applied to every query (across all steal chunks) before the
        next phase starts, exactly like Mega-KV's staged kernels.
        """
        op_passes = {
            IndexOp.SEARCH: self._op_search,
            IndexOp.INSERT: self._op_insert,
            IndexOp.DELETE: self._op_delete,
        }
        phases: list = []
        for task in stage.tasks:
            if task in (Task.RV, Task.PP, Task.SD):
                continue  # handled at batch entry/exit; timing-only here
            if task is Task.MM:
                phases.append((task, self._task_mm))
                # Insert/Delete reassigned to this CPU stage run right
                # after their producer (MM); Search never lives here
                # without the IN task.
                if Task.IN not in stage.tasks:
                    for op in sorted(stage.index_ops, key=self._OP_PRIORITY.__getitem__):
                        if op is not IndexOp.SEARCH:
                            phases.append((task, op_passes[op]))
            elif task is Task.IN:
                for op in sorted(stage.index_ops, key=self._OP_PRIORITY.__getitem__):
                    phases.append((task, op_passes[op]))
            elif task is Task.KC:
                phases.append((task, self._task_kc))
            elif task is Task.RD:
                phases.append((task, self._task_rd))
            elif task is Task.WR:
                phases.append((task, self._task_wr))
        return phases

    @staticmethod
    def _credit(task_times: dict[Task, float] | None, task: Task, t0: float) -> None:
        """Add the elapsed time since ``t0`` to ``task``'s running total."""
        if task_times is not None:
            elapsed_us = (time.perf_counter() - t0) * 1e6
            task_times[task] = task_times.get(task, 0.0) + elapsed_us

    def _run_stage(
        self,
        stage,
        contexts: list[_QueryContext],
        indices,
        task_times: dict[Task, float] | None = None,
    ) -> None:
        """Execute a stage's phases over the selected query indices."""
        for task, phase in self._stage_phases(stage):
            t0 = time.perf_counter() if task_times is not None else 0.0
            for i in indices:
                phase(contexts[i])
            self._credit(task_times, task, t0)

    def _run_stage_with_stealing(
        self,
        stage,
        contexts,
        task_times: dict[Task, float] | None = None,
    ) -> dict[str, int]:
        """Split each phase's queries between owner and helper via tags.

        Chunking happens *within* a phase: every claim set of one phase is
        processed before the next phase starts, so stealing cannot reorder
        passes and results are identical to the unstolen execution.
        """
        claims = {"gpu": 0, "cpu": 0}
        for task, phase in self._stage_phases(stage):
            t0 = time.perf_counter() if task_times is not None else 0.0
            tags = TagArray(len(contexts))
            # Deterministic interleave: the owner takes two sets for each
            # one the helper steals (a stand-in for the runtime race;
            # correctness does not depend on the split).
            turn = 0
            while True:
                if turn % 3 == 2:
                    claimed = tags.claim_next("cpu", reverse=True)
                    owner = "cpu"
                else:
                    claimed = tags.claim_next("gpu")
                    owner = "gpu"
                if claimed is None:
                    break
                claims[owner] += 1
                for i in claimed:
                    phase(contexts[i])
                turn += 1
            self._credit(task_times, task, t0)
        return claims

    # ---------------------------------------------------------------- tasks

    def _task_mm(self, ctx: _QueryContext) -> None:
        if ctx.query.qtype is not QueryType.SET:
            return
        outcome = self.store.allocate(ctx.query.key, ctx.query.value)
        ctx.location = outcome.location
        ctx.pending_insert = (ctx.query.key, outcome.location)
        if outcome.replaced is not None:
            self._displaced(ctx, ctx.query.key, outcome.replaced_location)
        if outcome.evicted is not None:
            self._displaced(ctx, outcome.evicted.key, outcome.evicted_location)
        self._batch_inserts[ctx.query.key] = ctx

    def _displaced(self, ctx: _QueryContext, key: bytes, location: int | None) -> None:
        """Record index cleanup for a displaced object.

        If the displaced version was itself SET earlier in this batch, its
        Insert has not executed yet — cancel it instead of queueing a
        Delete for an entry that will never exist.
        """
        earlier = self._batch_inserts.pop(key, None)
        if earlier is not None and earlier.pending_insert is not None:
            earlier.pending_insert = None
        else:
            ctx.pending_deletes.append((key, location))

    def _op_search(self, ctx: _QueryContext) -> None:
        if ctx.query.qtype is QueryType.GET:
            ctx.candidates = self.store.index_search(ctx.query.key)
        elif ctx.query.qtype is QueryType.DELETE:
            ctx.candidates = self.store.index_search(ctx.query.key)

    def _op_insert(self, ctx: _QueryContext) -> None:
        if ctx.pending_insert is None:
            return
        key, location = ctx.pending_insert
        self.store.index_insert(key, location)
        ctx.pending_insert = None

    def _op_delete(self, ctx: _QueryContext) -> None:
        if ctx.query.qtype is QueryType.DELETE:
            # Cancel any not-yet-executed Insert for this key from earlier
            # in the batch (its entry must never appear).
            earlier = self._batch_inserts.pop(ctx.query.key, None)
            if earlier is not None:
                earlier.pending_insert = None
            removed = self.store.delete(ctx.query.key)
            ctx.response = Response(
                ResponseStatus.DELETED if removed else ResponseStatus.NOT_FOUND
            )
            return
        for key, location in ctx.pending_deletes:
            self.store.index_delete(key, location)
        ctx.pending_deletes.clear()

    def _task_kc(self, ctx: _QueryContext) -> None:
        if ctx.query.qtype is not QueryType.GET:
            return
        ctx.location = self.store.key_compare(ctx.query.key, ctx.candidates)

    def _task_rd(self, ctx: _QueryContext) -> None:
        if ctx.query.qtype is not QueryType.GET or ctx.location is None:
            return
        ctx.value = self.store.read_value(ctx.location, epoch=self._epoch_source())

    def _task_wr(self, ctx: _QueryContext) -> None:
        if ctx.response is not None:
            return  # DELETE already answered
        if ctx.query.qtype is QueryType.GET:
            if ctx.value is None:
                ctx.response = Response(ResponseStatus.NOT_FOUND)
            else:
                ctx.response = Response(ResponseStatus.OK, ctx.value)
        elif ctx.query.qtype is QueryType.SET:
            ctx.response = Response(ResponseStatus.STORED)
        else:
            ctx.response = Response(ResponseStatus.NOT_FOUND)
