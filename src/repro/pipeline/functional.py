"""Functional batch execution: every pipeline config computes real results.

The timing simulator answers "how fast"; this module answers "is it still
correct".  A :class:`FunctionalPipeline` takes a
:class:`~repro.pipeline.partition.PipelineConfig` and pushes a batch of
queries through the *actual* store — RV/PP parse real frames, MM really
allocates and evicts, IN really mutates the cuckoo table, KC really compares
keys, RD/WR really produce response bytes — stage by stage in the configured
order.  Because the pipeline information is carried with the batch (the
paper embeds it per batch), two consecutive batches may run under different
configurations and still produce correct results; the test suite asserts
that every legal configuration produces byte-identical responses.

Since the engine refactor this class is a thin adapter: stage semantics are
compiled once by :func:`~repro.engine.plan.compile_stage_plan` (the same
plan the analytical cost model consumes), batch state lives in a columnar
:class:`~repro.engine.plane.BatchPlane`, and execution is delegated to an
engine backend — :class:`~repro.engine.backends.StealingEngine` when the
config wants work stealing on a GPU stage,
:class:`~repro.engine.backends.SerialEngine` otherwise, or whatever the
caller pinned via the ``engine`` parameter.  The pipeline itself only does
the batch boundaries: frame parsing (PP), batch intake (RV), response
framing (SD), and telemetry emission.
"""

from __future__ import annotations

import time

from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import Task
from repro.engine import (
    BatchPlane,
    SerialEngine,
    StealingEngine,
    compile_stage_plan,
    resolve_engine,
)
from repro.kv.protocol import Query, Response, ResponseStatus, decode_queries
from repro.kv.store import KVStore
from repro.net.packets import Frame, frames_for_responses
from repro.net.wire import frames_for_response_columns
from repro.telemetry import get_telemetry, stage_span, steal_event

_ERROR_CODE = ResponseStatus.ERROR.value


class BatchResult:
    """Outcome of one functional batch.

    ``frames`` (the SD task's MTU-packed output for the simulated NIC
    path) is materialised lazily: the UDP server sends datagrams straight
    from the response columns and never reads it, so per-batch frame
    packing would be pure overhead there.  First access builds the frames
    — through the columnar wire framer when the engine produced the
    status/size columns, else through the legacy per-Response packing —
    and caches them.
    """

    __slots__ = (
        "responses",
        "config_label",
        "steal_claims",
        "response_sizes",
        "response_statuses",
        "response_values",
        "_frames",
    )

    def __init__(
        self,
        responses: list[Response],
        config_label: str,
        steal_claims: dict[str, int] | None = None,
        frames: list[Frame] | None = None,
        response_sizes: list[int] | None = None,
        response_statuses: list[int] | None = None,
        response_values: list[bytes | None] | None = None,
    ):
        self.responses = responses
        self.config_label = config_label
        self.steal_claims = steal_claims if steal_claims is not None else {}
        #: Wire size per response when the engine computed the column
        #: (vector/sharded backends); None otherwise.
        self.response_sizes = response_sizes
        #: Raw wire status codes per response (same backends); None
        #: otherwise.
        self.response_statuses = response_statuses
        #: Per-response value bytes (None for value-less responses) —
        #: the plane's read-value column, present with the status column.
        self.response_values = response_values
        self._frames = frames

    @property
    def frames(self) -> list[Frame]:
        if self._frames is None:
            self._frames = self._build_frames()
        return self._frames

    def _build_frames(self) -> list[Frame]:
        if self.response_statuses is not None:
            return frames_for_response_columns(
                self.response_statuses, self.response_values, self.response_sizes
            )
        return frames_for_responses(self.responses)

    @property
    def ok_count(self) -> int:
        if self.response_statuses is not None:
            return sum(1 for s in self.response_statuses if s != _ERROR_CODE)
        return sum(1 for r in self.responses if r.status is not ResponseStatus.ERROR)


class PendingBatch:
    """A batch submitted to a pipelined engine but not yet merged.

    Produced by :meth:`FunctionalPipeline.submit_batch`, finished by
    :meth:`FunctionalPipeline.collect_batch`.  When the engine (or store)
    cannot pipeline, the batch ran synchronously at submit time and
    ``result`` is already populated — collect just returns it.
    """

    __slots__ = ("ticket", "plane", "config", "engine", "num_queries", "result")

    def __init__(
        self,
        *,
        ticket=None,
        plane=None,
        config=None,
        engine=None,
        num_queries: int = 0,
        result: BatchResult | None = None,
    ):
        self.ticket = ticket
        self.plane = plane
        self.config = config
        self.engine = engine
        self.num_queries = num_queries
        self.result = result


class FunctionalPipeline:
    """Executes batches against a :class:`~repro.kv.store.KVStore`.

    Parameters
    ----------
    store:
        The store to operate on (shared across batches and reconfigurations,
        as on the real shared-memory APU).
    epoch_source:
        Callable returning the profiler's current sampling epoch, used to
        stamp object access counters; defaults to a constant 0.
    engine:
        Execution backend: ``None``/"auto" picks per batch (stealing when
        the config enables it on a GPU stage, serial otherwise); "serial",
        "stealing", "reference", "vector" or "sharded" pins a backend; an
        object with a ``run`` method is used as-is.  "sharded" expects the
        store to be a :class:`~repro.kv.sharding.ShardedKVStore` (it falls
        back to its inner engine on a plain store).
    dedup:
        Collapse each batch's duplicate GET runs to one probe per key
        between write barriers (see :mod:`repro.engine.hotpath`).
    hot_cache:
        Let engines serve GETs from the store's attached
        :class:`~repro.kv.hotcache.HotKeyCache`; inert unless a cache has
        been attached and gated active.
    """

    def __init__(
        self,
        store: KVStore,
        epoch_source=None,
        engine=None,
        *,
        dedup: bool = False,
        hot_cache: bool = True,
    ):
        self.store = store
        self._epoch_source = epoch_source or (lambda: 0)
        self._engine = resolve_engine(engine, dedup=dedup, hot_cache=hot_cache)
        self._serial = SerialEngine(dedup=dedup, hot_cache=hot_cache)
        self._stealing = StealingEngine(dedup=dedup, hot_cache=hot_cache)
        self._batch_counter = 0
        self._pp_hint_us = 0.0

    # ------------------------------------------------------------ execution

    def process_frames(self, config: PipelineConfig, frames: list[Frame]) -> BatchResult:
        """RV entry point: parse queries out of frames, then process."""
        t0 = time.perf_counter()
        queries: list[Query] = []
        for frame in frames:
            queries.extend(decode_queries(frame.payload))
        # Parsing frame payloads is the PP task's real work; remember its
        # cost so the batch's PP span reports it (harmless when disabled).
        self._pp_hint_us = (time.perf_counter() - t0) * 1e6
        return self.process_batch(config, queries)

    def _engine_for(self, config: PipelineConfig):
        """The backend for one batch: pinned engine, else by config."""
        if self._engine is not None:
            return self._engine
        if config.work_stealing and config.gpu_stage is not None:
            return self._stealing
        return self._serial

    def process_batch(self, config: PipelineConfig, queries) -> BatchResult:
        """Run one batch through every stage of ``config`` in order.

        ``queries`` is a ``list[Query]`` or a columnar
        :class:`~repro.net.wire.QueryColumns` batch from the wire
        decoder; both produce identical results.
        """
        telemetry = get_telemetry()
        collect = telemetry.enabled
        pp_us, self._pp_hint_us = self._pp_hint_us, 0.0
        plan = compile_stage_plan(config)
        engine = self._engine_for(config)
        task_times: dict[Task, float] | None = {} if collect else None
        t0 = time.perf_counter() if collect else 0.0
        plane = BatchPlane(queries)
        if collect:
            # Batch intake (building the columnar plane) is RV's footprint
            # on this plane; PP's is whatever frame parsing cost upstream.
            task_times[Task.RV] = (time.perf_counter() - t0) * 1e6
            task_times[Task.PP] = pp_us
        steal_claims = engine.run(
            self.store,
            plan,
            plane,
            epoch=self._epoch_source(),
            task_times=task_times,
        )
        responses = plane.take_responses()
        # Post-batch barrier: the log arena compacts only between batches
        # (never mid-batch, so live values are never moved under a running
        # engine).  The gate is one cheap property read; slab-heap stores
        # report False forever.
        store = self.store
        if getattr(store, "needs_maintenance", False):
            store.maintenance()
        self._batch_counter += 1
        result = BatchResult(
            responses=responses,
            config_label=config.label,
            steal_claims=steal_claims,
            response_sizes=plane.response_sizes,
            response_statuses=plane.response_statuses,
            response_values=plane.read_values
            if plane.response_statuses is not None
            else None,
        )
        if collect:
            # Frame eagerly under telemetry so the SD span stays a real
            # measurement of response framing; otherwise frames build
            # lazily on first access (the UDP server never needs them).
            t_send = time.perf_counter()
            result.frames  # noqa: B018 - builds and caches the frames
            task_times[Task.SD] = (time.perf_counter() - t_send) * 1e6
            self._emit_batch(
                telemetry, config, engine, task_times, steal_claims, len(queries), plane
            )
        return result

    # --------------------------------------------------- pipelined windows

    @property
    def supports_pipelining(self) -> bool:
        """Whether submit/collect can overlap windows on this store."""
        return getattr(self.store, "is_procshard", False) and hasattr(
            self._engine, "submit"
        )

    def submit_batch(self, config: PipelineConfig, queries) -> PendingBatch:
        """Hand one window to the engine without waiting for its merge.

        The returned :class:`PendingBatch` must be finished with
        :meth:`collect_batch` (in submission order — the engine enforces
        FIFO anyway).  Falls back to a synchronous :meth:`process_batch`
        when the engine or store cannot pipeline, so callers can use the
        submit/collect pair unconditionally.
        """
        engine = self._engine_for(config)
        submit = getattr(engine, "submit", None)
        if submit is None or not getattr(self.store, "is_procshard", False):
            return PendingBatch(
                result=self.process_batch(config, queries),
                num_queries=len(queries),
            )
        plan = compile_stage_plan(config)
        plane = BatchPlane(queries)
        ticket = submit(self.store, plan, plane, epoch=self._epoch_source())
        return PendingBatch(
            ticket=ticket,
            plane=plane,
            config=config,
            engine=engine,
            num_queries=len(queries),
        )

    def collect_batch(self, pending: PendingBatch) -> BatchResult:
        """Merge a submitted window into a :class:`BatchResult`."""
        if pending.result is not None:
            return pending.result
        steal_claims = pending.engine.collect(pending.ticket)
        plane = pending.plane
        responses = plane.take_responses()
        store = self.store
        if getattr(store, "needs_maintenance", False):
            store.maintenance()
        self._batch_counter += 1
        result = BatchResult(
            responses=responses,
            config_label=pending.config.label,
            steal_claims=steal_claims,
            response_sizes=plane.response_sizes,
            response_statuses=plane.response_statuses,
            response_values=plane.read_values
            if plane.response_statuses is not None
            else None,
        )
        pending.result = result
        telemetry = get_telemetry()
        if telemetry.enabled:
            # No per-task spans for a split window: the engine's per-stage
            # ring timers (encode/send/wait/decode/scatter) carry the
            # breakdown.  Batch/query counters stay honest.
            telemetry.registry.counter(
                "repro_pipeline_batches_total", help="Functional batches executed"
            ).inc()
            telemetry.registry.counter(
                "repro_pipeline_queries_total",
                help="Queries through the functional pipeline",
            ).inc(pending.num_queries)
            telemetry.registry.counter(
                "repro_engine_batches_total",
                help="Functional batches executed, by engine backend",
            ).inc(engine=pending.engine.name)
            self._emit_hotpath(telemetry, plane, pending.num_queries)
        return result

    def _emit_batch(
        self,
        telemetry,
        config: PipelineConfig,
        engine,
        task_times: dict[Task, float],
        steal_claims: dict[str, int],
        num_queries: int,
        plane: BatchPlane | None = None,
    ) -> None:
        """Append this batch's spans, steal summary, and counters."""
        batch = self._batch_counter
        for stage in config.stages:
            for task in stage.tasks:
                duration = task_times.get(task, 0.0)
                telemetry.events.append(
                    stage_span(
                        stage=stage.label,
                        task=task.name,
                        processor=stage.processor.value,
                        duration_us=duration,
                        batch=batch,
                    )
                )
                telemetry.registry.histogram(
                    "repro_task_time_us", help="Wall-clock task time per batch"
                ).observe(duration, task=task.name)
        if steal_claims:
            gpu_stage = config.gpu_stage
            telemetry.events.append(
                steal_event(
                    stage=gpu_stage.label if gpu_stage else "<none>",
                    claims=steal_claims,
                    batch=batch,
                )
            )
        telemetry.registry.counter(
            "repro_pipeline_batches_total", help="Functional batches executed"
        ).inc()
        telemetry.registry.counter(
            "repro_pipeline_queries_total", help="Queries through the functional pipeline"
        ).inc(num_queries)
        telemetry.registry.counter(
            "repro_engine_batches_total",
            help="Functional batches executed, by engine backend",
        ).inc(engine=engine.name)
        if plane is not None:
            self._emit_hotpath(telemetry, plane, num_queries)

    @staticmethod
    def _emit_hotpath(telemetry, plane: BatchPlane, num_queries: int) -> None:
        """Dedup/hot-cache effectiveness gauges for one batch's plane."""
        hotpath = plane.hotpath
        if hotpath is not None:
            telemetry.registry.gauge(
                "repro_batch_dedup_ratio",
                help="Fraction of this batch's queries answered as duplicates",
            ).set(hotpath.dup_count / max(1, num_queries))
            traffic = hotpath.cache_hits + hotpath.cache_misses
            if hotpath.cache_hits:
                telemetry.registry.counter(
                    "repro_hotkey_cache_hits_total",
                    help="GETs served from the hot-key cache",
                ).inc(hotpath.cache_hits)
            if hotpath.cache_misses:
                telemetry.registry.counter(
                    "repro_hotkey_cache_misses_total",
                    help="Hot-cache lookups that fell through to the index",
                ).inc(hotpath.cache_misses)
            if traffic:
                telemetry.registry.gauge(
                    "repro_hotkey_cache_hit_rate",
                    help="Hot-key cache hit rate over this batch's lookups",
                ).set(hotpath.cache_hits / traffic)
