"""The detailed pipeline simulator — this reproduction's "measured system".

Runs the shared :class:`~repro.core.cost_model.PipelineAnalyzer` at
``DETAILED_FIDELITY``: per-kernel launch overheads, inflated cuckoo probe
counts, an interference fixed point, wavefront-quantized batches, and
chunk-quantized work stealing with synchronisation costs.  Everything the
planner's :class:`~repro.core.cost_model.CostModel` idealises away is
present here, so comparing the two reproduces the paper's Figure 9 error
analysis, and DIDO's adaptation loop is validated against a target it does
not perfectly know — as on real hardware.

:class:`PipelineExecutor` also provides the time-stepped simulation used by
the dynamic-workload experiments (Figures 20-21): batches flow through the
pipeline with real queueing delay, so a configuration switch takes effect
only after in-flight batches drain, reproducing the ~1 ms adaptation lag
the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import (
    DETAILED_FIDELITY,
    FidelityOptions,
    PipelineAnalyzer,
    PipelineEstimate,
)
from repro.core.profiler import WorkloadProfile
from repro.core.tasks import CalibrationConstants, DEFAULT_CALIBRATION, IndexOp
from repro.errors import SimulationError
from repro.hardware.specs import PlatformSpec
from repro.core.pipeline_config import PipelineConfig
from repro.telemetry import get_telemetry, stage_span


@dataclass(frozen=True)
class StageMeasurement:
    """Measured execution profile of one stage (reporting convenience)."""

    label: str
    time_us: float


@dataclass(frozen=True)
class PipelineMeasurement:
    """A measured steady-state evaluation (same content as an estimate, but
    produced at detailed fidelity; kept as a distinct type so call sites
    document which side of the model/measurement divide they are on)."""

    estimate: PipelineEstimate

    @property
    def throughput_mops(self) -> float:
        return self.estimate.throughput_mops

    @property
    def batch_size(self) -> int:
        return self.estimate.batch_size

    @property
    def tmax_us(self) -> float:
        return self.estimate.tmax_ns / 1000.0

    @property
    def cpu_utilization(self) -> float:
        return self.estimate.cpu_utilization

    @property
    def gpu_utilization(self) -> float:
        return self.estimate.gpu_utilization

    @property
    def index_op_times_us(self) -> dict[IndexOp, float]:
        return {op: t / 1000.0 for op, t in self.estimate.index_op_times_ns.items()}

    def stages(self) -> list[StageMeasurement]:
        return [
            StageMeasurement(stage.label, t / 1000.0)
            for stage, t in zip(self.estimate.config.stages, self.estimate.stage_times_ns)
        ]


@dataclass
class TimelinePoint:
    """One sample of the time-stepped simulation (Figure 20's plot points)."""

    time_ns: float
    throughput_mops: float
    config_label: str


class PipelineExecutor(PipelineAnalyzer):
    """Detailed-fidelity analyzer plus time-stepped simulation helpers."""

    def __init__(
        self,
        platform: PlatformSpec,
        constants: CalibrationConstants = DEFAULT_CALIBRATION,
        fidelity: FidelityOptions = DETAILED_FIDELITY,
    ):
        super().__init__(platform, fidelity, constants)
        self._measurements = 0

    def measure(
        self,
        config: PipelineConfig,
        profile: WorkloadProfile,
        latency_budget_ns: float = 1_000_000.0,
    ) -> PipelineMeasurement:
        """Steady-state measurement of one configuration on one workload."""
        measurement = PipelineMeasurement(self.estimate(config, profile, latency_budget_ns))
        telemetry = get_telemetry()
        if telemetry.enabled:
            self._emit_measurement(telemetry, measurement)
        return measurement

    def _emit_measurement(self, telemetry, measurement: PipelineMeasurement) -> None:
        """Record one steady-state measurement: per-stage spans with the
        stage's simulated time attributed to each of its tasks, plus batch
        counters and a period histogram."""
        self._measurements += 1
        index = self._measurements
        for spec, stage in zip(
            measurement.estimate.config.stages, measurement.stages()
        ):
            for task in spec.tasks:
                telemetry.events.append(
                    stage_span(
                        stage=stage.label,
                        task=task.name,
                        processor=spec.processor.value,
                        duration_us=stage.time_us,
                        batch=index,
                    )
                )
            telemetry.registry.histogram(
                "repro_stage_time_us", help="Simulated per-stage time per batch"
            ).observe(stage.time_us, stage=stage.label)
        telemetry.registry.counter(
            "repro_executor_measurements_total", help="Steady-state measurements taken"
        ).inc()
        telemetry.registry.counter(
            "repro_executor_batch_queries_total",
            help="Queries covered by measured batches",
        ).inc(measurement.batch_size)
        telemetry.registry.histogram(
            "repro_batch_period_us", help="Simulated pipeline period per batch"
        ).observe(measurement.tmax_us)

    # -------------------------------------------------------- time stepping

    def run_timeline(
        self,
        schedule,
        duration_ns: float,
        latency_budget_ns: float = 1_000_000.0,
        sample_every_ns: float = 300_000.0,
    ) -> list[TimelinePoint]:
        """Simulate batch-by-batch execution under a dynamic schedule.

        ``schedule`` is a callable ``(time_ns) -> (config, profile)``
        returning the pipeline configuration *in effect* and the workload
        profile of the traffic arriving at that instant.  Because the
        configuration is applied per batch (the paper embeds pipeline info
        in each batch), a schedule that changes its answer mid-run models
        the adaptation lag: the batch assembled at time ``t`` runs under the
        configuration chosen at time ``t`` even if a better one is selected
        while it is in flight.

        Returns throughput samples averaged over ``sample_every_ns`` bins.
        """
        if duration_ns <= 0:
            raise SimulationError("duration must be positive")
        samples: list[TimelinePoint] = []
        now = 0.0
        bin_start = 0.0
        bin_queries = 0.0
        bin_config_label = ""
        while now < duration_ns:
            config, profile = schedule(now)
            estimate = self.estimate(config, profile, latency_budget_ns)
            period = max(estimate.tmax_ns, 1.0)
            bin_config_label = config.label
            end = now + period
            # Spread this batch's queries across sample bins it overlaps.
            cursor = now
            while cursor < end:
                bin_end = bin_start + sample_every_ns
                take_until = min(end, bin_end)
                share = (take_until - cursor) / period * estimate.batch_size
                bin_queries += share
                cursor = take_until
                if cursor >= bin_end:
                    samples.append(
                        TimelinePoint(
                            time_ns=bin_start,
                            throughput_mops=bin_queries / sample_every_ns * 1000.0,
                            config_label=bin_config_label,
                        )
                    )
                    bin_start = bin_end
                    bin_queries = 0.0
            now = end
        if bin_queries > 0:
            samples.append(
                TimelinePoint(
                    time_ns=bin_start,
                    throughput_mops=bin_queries / sample_every_ns * 1000.0,
                    config_label=bin_config_label,
                )
            )
        return samples
