"""Pipeline engine: stage/config representation, timing simulator, baselines.

* :mod:`repro.pipeline.partition` — :class:`StageSpec` / :class:`PipelineConfig`,
  the representation of a pipeline partitioning scheme plus index-operation
  assignment (paper Figure 8's notation);
* :mod:`repro.pipeline.executor` — the detailed timing simulator that plays
  the role of the paper's measured system (periodic scheduling, batch
  sizing, interference fixed point, chunked work stealing);
* :mod:`repro.pipeline.functional` — functional batch execution through the
  real KV store (a thin adapter over the :mod:`repro.engine` backends),
  used to verify that every pipeline configuration computes identical
  results;
* :mod:`repro.pipeline.megakv` — the static Mega-KV baseline (coupled and
  discrete).
"""

from repro.pipeline.executor import PipelineExecutor, PipelineMeasurement, StageMeasurement
from repro.pipeline.functional import BatchResult, FunctionalPipeline
from repro.pipeline.megakv import (
    MEGAKV_PIPELINE,
    megakv_coupled_config,
    megakv_discrete_config,
)
from repro.pipeline.partition import PipelineConfig, StageSpec, format_pipeline

__all__ = [
    "BatchResult",
    "FunctionalPipeline",
    "MEGAKV_PIPELINE",
    "PipelineConfig",
    "PipelineExecutor",
    "PipelineMeasurement",
    "StageMeasurement",
    "StageSpec",
    "format_pipeline",
    "megakv_coupled_config",
    "megakv_discrete_config",
]
