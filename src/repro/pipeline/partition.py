"""Pipeline partitioning schemes — public re-export.

The implementation lives in :mod:`repro.core.pipeline_config` (the cost
model depends on these types, and keeping them inside ``repro.core`` avoids
a package-level import cycle between ``repro.core`` and ``repro.pipeline``).
This module preserves the natural import path for pipeline users.
"""

from repro.core.pipeline_config import (
    PipelineConfig,
    StageSpec,
    format_pipeline,
    gpu_segments,
)

__all__ = ["PipelineConfig", "StageSpec", "format_pipeline", "gpu_segments"]
