"""MemcachedGPU-style baseline: the paper's other static design (Figure 2).

MemcachedGPU (Hetherington et al., SoCC 2015) differs from Mega-KV in two
ways the paper highlights:

* it uses **GPUDirect** to DMA packets straight into GPU memory, so network
  processing (packet parsing) happens *on the GPU* together with the index
  lookups — a two-stage pipeline
  ``[Network Processing + Index Operation]GPU -> [Read & Send Value]CPU``;
* like Mega-KV it is static: the split never changes with the workload.

Our :class:`~repro.core.pipeline_config.PipelineConfig` deliberately pins
PP to the CPU (DIDO never offloads it), so this baseline is modelled
directly from the task primitives instead of a ``PipelineConfig``.  Packet
reception is DMA (free for the processors); the GPU runs PP plus all three
index operations; the CPU keeps MM (allocator state stays host-side, as in
the real system where SETs take a CPU path) and the whole read/send stage.

Used by the design-space benchmark to reproduce the paper's Figure 2
framing: on a *coupled* device, neither static split is right for all
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import MIN_BATCH, _ASSEMBLY_FRACTION
from repro.core.profiler import WorkloadProfile
from repro.core.tasks import (
    DEFAULT_CALIBRATION,
    CalibrationConstants,
    IndexOp,
    StageContext,
    Task,
    TaskModel,
)
from repro.errors import ConfigurationError
from repro.hardware.memory import MemorySystem
from repro.hardware.pcie import PCIeLink
from repro.hardware.processor import cpu_task_time_ns, gpu_task_time_ns
from repro.hardware.specs import PlatformSpec, ProcessorKind

#: Bytes of packet payload DMAed to the GPU per query (GPUDirect).
_PCIE_PACKET_OVERHEAD = 1.1  # descriptor/doorbell amplification

#: MemcachedGPU keeps stock memcached's CPU-side code (item/LRU/slab
#: maintenance, libevent plumbing) rather than Mega-KV's lean pipeline;
#: its host stage carries that implementation weight.
_MEMCACHED_CPU_OVERHEAD = 1.5

#: Parsing a text-ish protocol on SIMT hardware is branch-divergent; the
#: per-query instruction cost lands well above the CPU figure.
_GPU_PARSE_DIVERGENCE = 6.0


@dataclass(frozen=True)
class MemcachedGPUMeasurement:
    """Two-stage measurement mirroring :class:`PipelineMeasurement` fields."""

    batch_size: int
    gpu_stage_us: float
    cpu_stage_us: float
    throughput_mops: float
    gpu_utilization: float
    cpu_utilization: float

    @property
    def tmax_us(self) -> float:
        return max(self.gpu_stage_us, self.cpu_stage_us)


class MemcachedGPUModel:
    """Analytic model of the two-stage MemcachedGPU design on a platform."""

    def __init__(
        self,
        platform: PlatformSpec,
        constants: CalibrationConstants = DEFAULT_CALIBRATION,
    ):
        self.platform = platform
        self.task_model = TaskModel(constants)
        self.memory = MemorySystem(platform)
        self.pcie = PCIeLink(platform)

    # ---------------------------------------------------------- stage times

    def _gpu_stage_ns(self, profile: WorkloadProfile, batch: int) -> float:
        """GPU: packet processing + Search/Insert/Delete kernels."""
        gpu = self.platform.gpu
        context = StageContext(cache_line_bytes=gpu.cache_line_bytes)
        pp = self.task_model.demand(
            Task.PP,
            batch,
            key_size=profile.avg_key_size,
            value_size=profile.avg_value_size,
            get_ratio=profile.get_ratio,
            context=context,
        )
        total = gpu_task_time_ns(
            gpu, batch, pp.instructions * _GPU_PARSE_DIVERGENCE, pp.pattern
        )
        gets = int(batch * profile.get_ratio)
        sets = int(batch * profile.set_ratio)
        counts = {IndexOp.SEARCH: gets, IndexOp.INSERT: sets, IndexOp.DELETE: sets}
        for op, count in counts.items():
            if count <= 0:
                continue
            demand = self.task_model.index_demand(
                op, count, search_buckets=1.77, insert_buckets=profile.insert_buckets
            )
            total += gpu_task_time_ns(
                gpu, count, demand.instructions, demand.pattern, atomic=demand.atomic
            )
        # GPUDirect DMA of the raw packets (discrete platforms only).
        payload = batch * (
            profile.avg_key_size + profile.set_ratio * profile.avg_value_size + 7
        ) * _PCIE_PACKET_OVERHEAD
        total += self.pcie.round_trip_ns(payload, batch * 8.0)
        return total

    def _cpu_stage_ns(self, profile: WorkloadProfile, batch: int) -> float:
        """CPU: MM plus the whole read/send stage, on all cores."""
        cpu = self.platform.cpu
        hot = self.memory.hot_fraction(
            ProcessorKind.CPU,
            int(profile.avg_key_size),
            int(profile.avg_value_size),
            profile.zipf_skew,
        )
        context = StageContext(
            cache_line_bytes=cpu.cache_line_bytes,
            with_kc=True,
            with_rd=True,
            hot_fraction=hot,
        )
        total = 0.0
        for task in (Task.MM, Task.KC, Task.RD, Task.WR, Task.SD):
            demand = self.task_model.demand(
                task,
                batch,
                key_size=profile.avg_key_size,
                value_size=profile.avg_value_size,
                get_ratio=profile.get_ratio,
                context=context,
            )
            count = int(round(demand.count))
            if count <= 0:
                continue
            total += cpu_task_time_ns(
                cpu, count, demand.instructions, demand.pattern, cores=cpu.cores
            )
        return total * _MEMCACHED_CPU_OVERHEAD

    # -------------------------------------------------------------- measure

    def measure(
        self, profile: WorkloadProfile, latency_budget_ns: float = 1_000_000.0
    ) -> MemcachedGPUMeasurement:
        """Steady-state measurement under the same periodic scheduling rule
        the other systems use (two stages share the latency budget)."""
        if latency_budget_ns <= 0:
            raise ConfigurationError("latency budget must be positive")
        interval = latency_budget_ns / (2 + _ASSEMBLY_FRACTION)

        def tmax(batch: int) -> float:
            return max(self._gpu_stage_ns(profile, batch), self._cpu_stage_ns(profile, batch))

        lo = MIN_BATCH
        if tmax(lo) > interval:
            batch = lo
        else:
            hi = lo
            while tmax(hi * 2) <= interval and hi < 4_000_000:
                hi *= 2
            hi *= 2
            while hi - lo > MIN_BATCH:
                mid = (lo + hi) // 2
                if tmax(mid) <= interval:
                    lo = mid
                else:
                    hi = mid
            batch = (lo // MIN_BATCH) * MIN_BATCH
        gpu_ns = self._gpu_stage_ns(profile, batch)
        cpu_ns = self._cpu_stage_ns(profile, batch)
        period = max(gpu_ns, cpu_ns)
        return MemcachedGPUMeasurement(
            batch_size=batch,
            gpu_stage_us=gpu_ns / 1000.0,
            cpu_stage_us=cpu_ns / 1000.0,
            throughput_mops=batch / period * 1000.0,
            gpu_utilization=min(1.0, gpu_ns / period),
            cpu_utilization=min(1.0, cpu_ns / period),
        )


def measure_memcachedgpu(
    platform: PlatformSpec,
    profile: WorkloadProfile,
    latency_budget_ns: float = 1_000_000.0,
) -> MemcachedGPUMeasurement:
    """Convenience wrapper."""
    return MemcachedGPUModel(platform).measure(profile, latency_budget_ns)
