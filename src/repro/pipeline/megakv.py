"""The Mega-KV baseline: a static pipeline, coupled and discrete variants.

Mega-KV's fixed pipeline (paper Figure 3 and Section V-C) is

    [RV, PP, MM]CPU -> [IN]GPU -> [KC, RD, WR, SD]CPU

with every index operation on the GPU, no index-operation reassignment, no
dynamic repartitioning, and no work stealing.  The coupled variant runs it
on the APU (sharing memory, no PCIe); the discrete variant runs the same
pipeline on the dual-Xeon / dual-GTX780 platform where every GPU kernel
pays PCIe transfers — evaluated for Figures 16-18.
"""

from __future__ import annotations

from repro.core.profiler import WorkloadProfile
from repro.core.tasks import Task
from repro.hardware.specs import DISCRETE_MEGAKV, PlatformSpec
from repro.pipeline.executor import PipelineExecutor, PipelineMeasurement
from repro.core.pipeline_config import PipelineConfig

#: Display name of the baseline pipeline, paper notation.
MEGAKV_PIPELINE = "[RV, PP, MM]CPU -> [IN]GPU -> [KC, RD, WR, SD]CPU"

#: CPU-side overhead of the Mega-KV OpenCL port relative to DIDO's native
#: implementation (paper Section II-C ports CUDA Mega-KV to OpenCL 2.0 to
#: run it on the APU).  Applied to Mega-KV (Coupled) measurements only; the
#: GPU kernels are the same cuckoo code in both systems.
MEGAKV_PORT_OVERHEAD = 1.35


def megakv_coupled_config(total_cpu_cores: int = 4) -> PipelineConfig:
    """Mega-KV (Coupled): the static pipeline on the APU.

    Receiver and sender thread groups split the CPU cores evenly, as in the
    original multi-pipeline design.
    """
    return PipelineConfig.assemble(
        gpu_tasks=(Task.IN,),
        total_cpu_cores=total_cpu_cores,
        prefix_cores=total_cpu_cores // 2,
        insert_on_cpu=False,
        delete_on_cpu=False,
        work_stealing=False,
    )


def megakv_discrete_config(total_cpu_cores: int = 16) -> PipelineConfig:
    """Mega-KV (Discrete): the same static pipeline on the Xeon/GTX platform."""
    return PipelineConfig.assemble(
        gpu_tasks=(Task.IN,),
        total_cpu_cores=total_cpu_cores,
        prefix_cores=total_cpu_cores // 2,
        insert_on_cpu=False,
        delete_on_cpu=False,
        work_stealing=False,
    )


def megakv_executor(platform: PlatformSpec) -> PipelineExecutor:
    """Executor configured for measuring Mega-KV on ``platform``.

    The coupled variant carries the OpenCL-port CPU overhead; the discrete
    variant is the original native CUDA implementation, no overhead.
    """
    from repro.core.tasks import DEFAULT_CALIBRATION

    if platform.coupled:
        constants = DEFAULT_CALIBRATION.with_cpu_overhead(MEGAKV_PORT_OVERHEAD)
    else:
        constants = DEFAULT_CALIBRATION
    return PipelineExecutor(platform, constants=constants)


def measure_megakv(
    platform: PlatformSpec,
    profile: WorkloadProfile,
    latency_budget_ns: float = 1_000_000.0,
) -> PipelineMeasurement:
    """Measure Mega-KV on ``platform`` (selects the matching static config)."""
    executor = megakv_executor(platform)
    if platform.coupled:
        config = megakv_coupled_config(platform.cpu.cores)
    else:
        config = megakv_discrete_config(platform.cpu.cores)
    return executor.measure(config, profile, latency_budget_ns)


def measure_megakv_discrete(
    profile: WorkloadProfile, latency_budget_ns: float = 1_000_000.0
) -> PipelineMeasurement:
    """Convenience wrapper for the discrete testbed (Figures 16-18)."""
    return measure_megakv(DISCRETE_MEGAKV, profile, latency_budget_ns)
