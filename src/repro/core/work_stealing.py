"""Chunked work stealing via a tag array (paper Section III-B3).

Queries in a batch are claimed in wavefront-sized sets of 64: tag ``i``
covers queries ``64*i .. 64*(i+1)-1`` and is flipped with an atomic
compare-exchange by whichever processor grabs that set.  Stealing whole
sets amortises the synchronisation cost; 64 matches the APU wavefront so a
GPU wavefront maps exactly onto one set.

:class:`TagArray` is the functional implementation used by the functional
pipeline (its claim discipline is what guarantees each query is processed
exactly once even when two executors race).  :func:`plan_steal` is the
analytic helper implementing the paper's Equation 3, used by tests to
cross-check the analyzer's stealing arithmetic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry import get_telemetry

#: Queries per claimable set — the APU wavefront width.
WAVEFRONT = 64


class TagArray:
    """Claim tags over a batch of queries, one tag per 64-query set.

    The real system uses atomic compare-exchange on a shared array; here a
    lock guards each claim, giving the same exactly-once semantics for the
    thread-based functional pipeline and for single-threaded use.
    """

    def __init__(self, batch_size: int, chunk: int = WAVEFRONT):
        if batch_size <= 0 or chunk <= 0:
            raise ConfigurationError("batch_size and chunk must be positive")
        self._chunk = chunk
        self._num_tags = -(-batch_size // chunk)  # ceil division
        self._batch_size = batch_size
        self._claimed = [False] * self._num_tags
        self._owner = [""] * self._num_tags
        self._lock = threading.Lock()

    @property
    def num_tags(self) -> int:
        return self._num_tags

    @property
    def chunk(self) -> int:
        return self._chunk

    def claim_next(self, owner: str, *, reverse: bool = False) -> range | None:
        """Atomically claim the next unclaimed set; None when exhausted.

        The owner processor scans forward while a stealing helper scans from
        the tail (``reverse=True``), so the two meet in the middle with
        minimal contention — the FIFO-vs-steal split of the paper.
        Returns the query index range covered by the claimed set.
        """
        with self._lock:
            indices = range(self._num_tags - 1, -1, -1) if reverse else range(self._num_tags)
            for tag in indices:
                if not self._claimed[tag]:
                    self._claimed[tag] = True
                    self._owner[tag] = owner
                    start = tag * self._chunk
                    end = min(start + self._chunk, self._batch_size)
                    telemetry = get_telemetry()
                    if telemetry.enabled:
                        telemetry.registry.counter(
                            "repro_steal_claims_total",
                            help="Tag sets claimed, by claiming executor",
                        ).inc(owner=owner, stolen=str(reverse).lower())
                    return range(start, end)
        return None

    def all_claimed(self) -> bool:
        with self._lock:
            return all(self._claimed)

    def claims_by(self, owner: str) -> int:
        """Number of sets claimed by ``owner`` (test/metrics aid)."""
        with self._lock:
            return sum(1 for o in self._owner if o == owner)

    def coverage(self) -> int:
        """Total queries covered by claimed sets."""
        with self._lock:
            covered = 0
            for tag, claimed in enumerate(self._claimed):
                if claimed:
                    start = tag * self._chunk
                    covered += min(self._chunk, self._batch_size - start)
            return covered


@dataclass(frozen=True)
class StealOutcome:
    """Result of the Equation-3 estimate: finish time and stolen share."""

    finish_ns: float
    stolen_fraction: float


def plan_steal(t_owner_work: float, t_helper_own: float, t_helper_work: float) -> StealOutcome:
    """Paper Equation 3: finish time when a helper steals from the bottleneck.

    ``t_owner_work`` — bottleneck stage's solo time (``T^GPU_A``);
    ``t_helper_own`` — the helper's own stage time (``T^CPU_B``);
    ``t_helper_work`` — helper's hypothetical time for the whole stolen task
    set (``T^CPU_A``).

    Returns the combined finish time
    ``T = T_B + T^CPU_A (T^GPU_A - T_B) / (T^CPU_A + T^GPU_A)``
    and the fraction of the bottleneck's work the helper absorbed.  When the
    helper would not finish its own work first, no stealing happens.
    """
    if min(t_owner_work, t_helper_own, t_helper_work) < 0:
        raise ConfigurationError("times must be non-negative")
    if t_helper_own >= t_owner_work or t_helper_work <= 0:
        return StealOutcome(finish_ns=t_owner_work, stolen_fraction=0.0)
    finish = t_helper_own + t_helper_work * (t_owner_work - t_helper_own) / (
        t_helper_work + t_owner_work
    )
    stolen = (t_owner_work - finish) / t_owner_work
    return StealOutcome(finish_ns=finish, stolen_fraction=max(0.0, stolen))
