"""Lightweight workload profiler (paper Section III-A and IV-B).

The profiler maintains "only a few counters" per batch — GET/SET counts and
key/value byte totals — plus the sampling-based Zipf-skew estimator: each
key-value object carries an access counter and a sampling-epoch timestamp
(see :class:`repro.kv.objects.KVObject`), and at the end of a window the
observed frequency distribution of the *sampled* keys yields a skew
estimate.  Re-planning triggers when any profiled characteristic moves by
more than 10 % relative to the profile the current pipeline was planned for
(``ProfileDelta.substantial``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.kv.protocol import Query, QueryType
from repro.telemetry import get_telemetry

#: The paper's re-plan threshold: "the upper limit for the alteration of
#: workload counters is set to 10%".
CHANGE_THRESHOLD = 0.10


@dataclass(frozen=True)
class WorkloadProfile:
    """A profiled workload: the inputs the cost model needs.

    ``insert_buckets`` is the runtime-measured average buckets written per
    index Insert (cuckoo amortised cost; paper Section IV-B), carried here
    because the profiler is the component that observes the running system.

    ``measured_hot_fraction`` is the observed hot-key cache hit rate over
    the last window (None when no cache is attached or it saw no traffic);
    the memory model uses it as a floor under its analytic Zipf-derived
    hot fraction, so cache-effectiveness feedback reaches the cost model.
    """

    get_ratio: float
    avg_key_size: float
    avg_value_size: float
    zipf_skew: float
    batch_queries: int = 0
    insert_buckets: float = 2.0
    measured_hot_fraction: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_ratio <= 1.0:
            raise WorkloadError("get_ratio must be within [0, 1]")
        if self.avg_key_size <= 0 or self.avg_value_size < 0:
            raise WorkloadError("sizes must be positive")

    @property
    def set_ratio(self) -> float:
        return 1.0 - self.get_ratio

    @classmethod
    def from_spec(cls, spec, insert_buckets: float = 2.0) -> "WorkloadProfile":
        """Profile equivalent of a :class:`~repro.workloads.ycsb.WorkloadSpec`.

        Used by benchmarks that evaluate the steady state of a known
        workload without running the profiler first.
        """
        return cls(
            get_ratio=spec.get_ratio,
            avg_key_size=float(spec.dataset.key_size),
            avg_value_size=float(spec.dataset.value_size),
            zipf_skew=spec.zipf_skew,
            insert_buckets=insert_buckets,
        )


@dataclass(frozen=True)
class ProfileDelta:
    """Relative change between two profiles, per profiled counter."""

    get_ratio: float
    key_size: float
    value_size: float
    skew: float

    @property
    def max_change(self) -> float:
        return max(self.get_ratio, self.key_size, self.value_size, self.skew)

    @property
    def substantial(self) -> bool:
        """True when any counter moved by more than the 10 % threshold."""
        return self.max_change > CHANGE_THRESHOLD


def _relative_change(new: float, old: float, floor: float = 1e-6) -> float:
    return abs(new - old) / max(abs(old), floor)


def profile_delta(new: WorkloadProfile, old: WorkloadProfile) -> ProfileDelta:
    """Component-wise relative change (skew compared on a 0-1 scale)."""
    return ProfileDelta(
        get_ratio=_relative_change(new.get_ratio, old.get_ratio, floor=0.05),
        key_size=_relative_change(new.avg_key_size, old.avg_key_size),
        value_size=_relative_change(new.avg_value_size, old.avg_value_size, floor=1.0),
        skew=abs(new.zipf_skew - old.zipf_skew) / 1.0,
    )


def sample_skewness(frequencies: np.ndarray) -> float:
    """Joanes & Gill (1998) adjusted sample skewness ``G1`` of frequencies.

    This is the statistic the paper's estimator computes over the sampled
    key frequencies; :func:`estimate_zipf_skew` maps it (together with the
    rank-frequency slope) to a Zipf exponent.
    """
    n = frequencies.size
    if n < 3:
        return 0.0
    mean = float(frequencies.mean())
    deviations = frequencies - mean
    m2 = float(np.mean(deviations**2))
    if m2 <= 0:
        return 0.0
    m3 = float(np.mean(deviations**3))
    g1 = m3 / m2**1.5
    return g1 * math.sqrt(n * (n - 1)) / (n - 2)


def estimate_zipf_skew(frequencies: np.ndarray, min_samples: int = 32) -> float:
    """Estimate the Zipf exponent from sampled access frequencies.

    Sorts the sampled per-key frequencies in descending order and fits the
    log-log rank-frequency slope by least squares; a uniform workload gives
    frequencies that are flat in rank, hence a slope (and estimate) near 0.
    Returns 0.0 when there are too few samples or no variation.
    """
    freqs = np.asarray(frequencies, dtype=np.float64)
    freqs = freqs[freqs > 0]
    if freqs.size < min_samples:
        return 0.0
    ordered = np.sort(freqs)[::-1]
    if ordered[0] == ordered[-1]:
        return 0.0
    ranks = np.arange(1, ordered.size + 1, dtype=np.float64)
    log_rank = np.log(ranks)
    log_freq = np.log(ordered)
    slope, _ = np.polyfit(log_rank, log_freq, 1)
    return float(max(0.0, -slope))


class WorkloadProfiler:
    """Accumulates per-batch counters and produces :class:`WorkloadProfile`.

    Usage: call :meth:`observe_batch` with each batch of parsed queries and
    per-object access frequencies sampled during the window (supplied by the
    store via the objects' counters), then :meth:`snapshot` to close the
    window.
    """

    def __init__(self) -> None:
        self.epoch = 0
        self._reset_window()
        self._last_insert_buckets = 2.0

    def _reset_window(self) -> None:
        self._gets = 0
        self._sets = 0
        self._key_bytes = 0
        self._value_bytes = 0
        self._value_events = 0
        self._frequencies: list[int] = []

    # ------------------------------------------------------------ observing

    def observe_batch(self, queries) -> None:
        """Fold one batch's queries into the current window.

        Accepts a ``list[Query]`` or a columnar
        :class:`~repro.net.wire.QueryColumns` batch.  When the wire
        decoder's NumPy length columns are attached, the whole batch
        folds with three array reductions instead of a per-query loop.
        """
        opcodes = getattr(queries, "opcodes", None)
        if opcodes is not None:
            gets = int((opcodes == 1).sum())
            non_gets = len(queries) - gets
            self._gets += gets
            self._sets += non_gets
            self._key_bytes += int(queries.key_lens.sum())
            # Non-SET queries carry no value (wire-validated), so the
            # column total is exactly the SET payload bytes.
            self._value_bytes += int(queries.value_lens.sum())
            self._value_events += non_gets
            return
        qtypes = getattr(queries, "qtypes", None)
        if qtypes is not None:
            get_type = QueryType.GET
            for qtype, key, value in zip(qtypes, queries.keys, queries.values):
                self._key_bytes += len(key)
                if qtype is get_type:
                    self._gets += 1
                else:
                    self._sets += 1
                    self._value_bytes += len(value)
                    self._value_events += 1
            return
        for query in queries:
            self._key_bytes += len(query.key)
            if query.qtype is QueryType.GET:
                self._gets += 1
            else:
                self._sets += 1
                self._value_bytes += len(query.value)
                self._value_events += 1

    def observe_value_size(self, size: int) -> None:
        """Record the size of a value served by a GET (SET sizes come from
        the queries themselves; GET sizes are only known after RD)."""
        self._value_bytes += size
        self._value_events += 1

    def observe_frequency(self, in_window_count: int) -> None:
        """Record one sampled object's in-window access count (the paper's
        counter+timestamp mechanism reports these as objects are touched)."""
        self._frequencies.append(in_window_count)

    def observe_insert_buckets(self, average: float) -> None:
        """Record the measured average buckets per Insert from the index."""
        if average > 0:
            self._last_insert_buckets = average

    # ------------------------------------------------------------- snapshot

    @property
    def window_queries(self) -> int:
        return self._gets + self._sets

    def snapshot(self) -> WorkloadProfile:
        """Close the window: return its profile and start a new epoch."""
        total = self.window_queries
        if total == 0:
            raise WorkloadError("cannot profile an empty window")
        get_ratio = self._gets / total
        avg_key = self._key_bytes / total
        # Value size: average over SET payloads and served GET values.
        avg_value = self._value_bytes / max(1, self._value_events)
        skew = estimate_zipf_skew(np.asarray(self._frequencies, dtype=np.float64))
        profile = WorkloadProfile(
            get_ratio=get_ratio,
            avg_key_size=avg_key,
            avg_value_size=max(1.0, avg_value),
            zipf_skew=skew,
            batch_queries=total,
            insert_buckets=self._last_insert_buckets,
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            gauges = {
                "repro_profile_get_ratio": (profile.get_ratio, "GET share of the last window"),
                "repro_profile_zipf_skew": (profile.zipf_skew, "Estimated Zipf exponent"),
                "repro_profile_key_bytes": (profile.avg_key_size, "Average key size (bytes)"),
                "repro_profile_value_bytes": (profile.avg_value_size, "Average value size (bytes)"),
                "repro_profile_window_queries": (float(total), "Queries in the last window"),
            }
            for name, (value, help_text) in gauges.items():
                telemetry.registry.gauge(name, help=help_text).set(value)
        self.epoch += 1
        self._reset_window()
        return profile
