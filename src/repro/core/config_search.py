"""Exhaustive enumeration and search of the pipeline configuration space.

"In DIDO, we search the entire configuration space to obtain the optimal
configuration plan.  Since we only have a limited number of pipeline
partitioning schemes for the eight fine-grained tasks and a limited number
of index operation assignment policies, the cost model estimates the system
throughput for all the configurations and chooses the one with the highest
throughput." (paper Section IV-B)

The space enumerated here:

* every contiguous GPU segment over the GPU-eligible tasks (IN, KC, RD),
  including the empty segment (CPU-only pipeline);
* for GPU segments containing IN: all four Insert/Delete placement policies;
* for three-stage pipelines: every split of the CPU cores between the
  prefix and suffix stages.

With the APU's four cores this is a few dozen configurations — small enough
to evaluate exhaustively per re-plan, exactly as the paper reports ("the
runtime overhead of this cost estimation is very small").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.cost_model import CostModel, PipelineAnalyzer, PipelineEstimate
from repro.core.profiler import WorkloadProfile
from repro.core.tasks import Task
from repro.hardware.specs import PlatformSpec
from repro.core.pipeline_config import PipelineConfig, gpu_segments


def enumerate_configs(
    total_cpu_cores: int,
    *,
    work_stealing: bool = True,
    include_cpu_only: bool = True,
    fixed_pipeline: PipelineConfig | None = None,
) -> list[PipelineConfig]:
    """All legal configurations for a CPU with ``total_cpu_cores`` cores.

    ``fixed_pipeline`` restricts the search to index-operation assignment
    only (used by the Figure 13 ablation, which pins Mega-KV's partitioning
    and varies just the Insert/Delete placement).
    """
    if fixed_pipeline is not None:
        return _index_policies_for(fixed_pipeline, work_stealing)
    configs: list[PipelineConfig] = []
    for segment in gpu_segments():
        if not segment:
            if include_cpu_only:
                configs.append(
                    PipelineConfig.assemble(
                        (),
                        total_cpu_cores=total_cpu_cores,
                        work_stealing=work_stealing,
                    )
                )
            continue
        search_on_gpu = Task.IN in segment
        policies = (
            [(False, False), (True, False), (False, True), (True, True)]
            if search_on_gpu
            else [(False, False)]
        )
        for prefix_cores in range(1, total_cpu_cores):
            for insert_cpu, delete_cpu in policies:
                configs.append(
                    PipelineConfig.assemble(
                        segment,
                        total_cpu_cores=total_cpu_cores,
                        prefix_cores=prefix_cores,
                        insert_on_cpu=insert_cpu,
                        delete_on_cpu=delete_cpu,
                        work_stealing=work_stealing,
                    )
                )
    return configs


def _index_policies_for(
    pipeline: PipelineConfig, work_stealing: bool
) -> list[PipelineConfig]:
    """The four Insert/Delete placements over a fixed partitioning."""
    gpu_stage = pipeline.gpu_stage
    if gpu_stage is None or Task.IN not in gpu_stage.tasks:
        return [pipeline.with_work_stealing(work_stealing)]
    total = sum(s.cores for s in pipeline.stages)
    prefix_cores = pipeline.stages[0].cores
    out = []
    for insert_cpu in (False, True):
        for delete_cpu in (False, True):
            out.append(
                PipelineConfig.assemble(
                    gpu_stage.tasks,
                    total_cpu_cores=total,
                    prefix_cores=prefix_cores,
                    insert_on_cpu=insert_cpu,
                    delete_on_cpu=delete_cpu,
                    work_stealing=work_stealing,
                )
            )
    return out


@dataclass(frozen=True)
class RankedConfig:
    """A configuration with its estimated throughput."""

    config: PipelineConfig
    estimate: PipelineEstimate

    @property
    def throughput_mops(self) -> float:
        return self.estimate.throughput_mops


class ConfigurationSearch:
    """Evaluates the configuration space under a given analyzer.

    Instantiated with the planner's :class:`CostModel` inside DIDO; the
    benchmarks also instantiate it with the detailed executor to find the
    *true* optimum for the Figure 10 comparison.
    """

    def __init__(self, analyzer: PipelineAnalyzer):
        self.analyzer = analyzer

    @property
    def platform(self) -> PlatformSpec:
        return self.analyzer.platform

    def rank(
        self,
        profile: WorkloadProfile,
        latency_budget_ns: float = 1_000_000.0,
        *,
        work_stealing: bool = True,
        configs: Iterable[PipelineConfig] | None = None,
    ) -> list[RankedConfig]:
        """All configurations ranked by estimated throughput (best first)."""
        if configs is None:
            configs = enumerate_configs(
                self.platform.cpu.cores, work_stealing=work_stealing
            )
        ranked = [
            RankedConfig(config, self.analyzer.estimate(config, profile, latency_budget_ns))
            for config in configs
        ]
        ranked.sort(key=lambda r: r.throughput_mops, reverse=True)
        return ranked

    def best(
        self,
        profile: WorkloadProfile,
        latency_budget_ns: float = 1_000_000.0,
        *,
        work_stealing: bool = True,
        configs: Iterable[PipelineConfig] | None = None,
    ) -> RankedConfig:
        """The highest-throughput configuration for ``profile``."""
        ranked = self.rank(
            profile,
            latency_budget_ns,
            work_stealing=work_stealing,
            configs=configs,
        )
        return ranked[0]


def best_config_for(
    platform: PlatformSpec,
    profile: WorkloadProfile,
    latency_budget_ns: float = 1_000_000.0,
) -> PipelineConfig:
    """One-call helper: the cost-model-optimal configuration for a workload."""
    search = ConfigurationSearch(CostModel(platform))
    return search.best(profile, latency_budget_ns).config
