"""Pipeline partitioning schemes and index-operation assignment policies.

(Exposed publicly as :mod:`repro.pipeline.partition`; defined inside
``repro.core`` so the cost model can depend on these types without a
package-level import cycle.)

A :class:`PipelineConfig` captures one point of DIDO's configuration space
(Section III): a contiguous partition of the eight tasks into stages mapped
to processors, which index operations run where, how CPU cores are split
between CPU stages, and whether work stealing is enabled.

Structural constraints (and where they come from):

* stages are contiguous slices of the canonical task order — queries flow
  forward through the pipeline;
* the first and last stages run on the CPU (RV/SD talk to the NIC), and
  only IN/KC/RD are GPU-eligible, so a pipeline is
  ``CPU prefix -> optional GPU segment -> CPU suffix`` (this spans every
  pipeline the paper exhibits, including Mega-KV's and both of Figure 8's);
* Insert and Delete may be reassigned to the CPU prefix stage (which hosts
  MM, their producer) when Search runs on the GPU — the paper's flexible
  index-operation assignment;
* CPU cores are split between the prefix and suffix stages; a CPU-only
  pipeline is a single stage owning every core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tasks import (
    CPU_ONLY_TASKS,
    GPU_ELIGIBLE_TASKS,
    TASK_ORDER,
    IndexOp,
    Task,
    contiguous_in_order,
)
from repro.errors import ConfigurationError
from repro.hardware.specs import ProcessorKind


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: an ordered task set bound to a processor.

    ``cores`` is meaningful for CPU stages only (the GPU is always used
    whole).  ``index_ops`` lists which index operations this stage executes
    (only stages containing IN, or the CPU prefix when Insert/Delete are
    pulled back, have any).
    """

    tasks: tuple[Task, ...]
    processor: ProcessorKind
    cores: int = 0
    index_ops: tuple[IndexOp, ...] = ()

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConfigurationError("a stage must contain at least one task")
        if not contiguous_in_order(self.tasks):
            raise ConfigurationError(f"stage tasks {self.tasks} are not contiguous in order")
        if self.processor is ProcessorKind.GPU:
            illegal = set(self.tasks) & CPU_ONLY_TASKS
            if illegal:
                raise ConfigurationError(f"tasks {illegal} cannot run on the GPU")
            if self.cores:
                raise ConfigurationError("GPU stages do not take a core allocation")
        elif self.cores <= 0:
            raise ConfigurationError("a CPU stage needs at least one core")

    def __contains__(self, task: Task) -> bool:
        return task in self.tasks

    @property
    def label(self) -> str:
        """Paper-style rendering, e.g. ``[IN, KC, RD]GPU``."""
        names = ", ".join(t.name for t in self.tasks)
        return f"[{names}]{self.processor.value.upper()}"


@dataclass(frozen=True)
class PipelineConfig:
    """A complete pipeline configuration (partitioning + index assignment).

    Build via :meth:`assemble` which enforces all structural constraints and
    derives per-stage index-operation placement.
    """

    stages: tuple[StageSpec, ...]
    insert_on_cpu: bool = False
    delete_on_cpu: bool = False
    work_stealing: bool = True

    def __post_init__(self) -> None:
        tasks = tuple(t for stage in self.stages for t in stage.tasks)
        if tasks != TASK_ORDER:
            raise ConfigurationError(
                f"stages must cover all eight tasks exactly once in order, got {tasks}"
            )
        if self.stages[0].processor is not ProcessorKind.CPU:
            raise ConfigurationError("the first stage (RV) must run on the CPU")
        if self.stages[-1].processor is not ProcessorKind.CPU:
            raise ConfigurationError("the last stage (SD) must run on the CPU")
        gpu_stages = [s for s in self.stages if s.processor is ProcessorKind.GPU]
        if len(gpu_stages) > 1:
            raise ConfigurationError("at most one GPU stage (a single GPU device)")

    # ------------------------------------------------------------- assembly

    @classmethod
    def assemble(
        cls,
        gpu_tasks: tuple[Task, ...] = (),
        *,
        total_cpu_cores: int,
        prefix_cores: int | None = None,
        insert_on_cpu: bool = False,
        delete_on_cpu: bool = False,
        work_stealing: bool = True,
    ) -> "PipelineConfig":
        """Build a config from its degrees of freedom.

        ``gpu_tasks`` is the contiguous GPU segment (empty for CPU-only).
        ``prefix_cores`` allocates CPU cores to the prefix stage, remainder
        to the suffix; defaults to an even split.
        """
        if total_cpu_cores <= 0:
            raise ConfigurationError("total_cpu_cores must be positive")
        if not gpu_tasks:
            if insert_on_cpu or delete_on_cpu:
                raise ConfigurationError(
                    "index reassignment is meaningless without a GPU stage"
                )
            stage = StageSpec(
                TASK_ORDER,
                ProcessorKind.CPU,
                cores=total_cpu_cores,
                index_ops=tuple(IndexOp),
            )
            return cls(stages=(stage,), work_stealing=work_stealing)

        if not contiguous_in_order(gpu_tasks):
            raise ConfigurationError(f"GPU segment {gpu_tasks} must be contiguous")
        if not set(gpu_tasks) <= GPU_ELIGIBLE_TASKS:
            raise ConfigurationError(f"GPU segment {gpu_tasks} contains CPU-only tasks")
        first, last = gpu_tasks[0].value, gpu_tasks[-1].value
        prefix_tasks = TASK_ORDER[:first]
        suffix_tasks = TASK_ORDER[last + 1 :]
        if total_cpu_cores < 2:
            raise ConfigurationError("two CPU stages need at least two cores")
        if prefix_cores is None:
            prefix_cores = total_cpu_cores // 2
        if not 1 <= prefix_cores <= total_cpu_cores - 1:
            raise ConfigurationError(
                f"prefix_cores={prefix_cores} must leave >=1 core for the suffix"
            )

        search_on_gpu = Task.IN in gpu_tasks
        if (insert_on_cpu or delete_on_cpu) and not search_on_gpu:
            raise ConfigurationError(
                "Insert/Delete reassignment applies only when IN runs on the GPU"
            )
        prefix_ops: list[IndexOp] = []
        gpu_ops: list[IndexOp] = []
        if search_on_gpu:
            gpu_ops.append(IndexOp.SEARCH)
            (prefix_ops if insert_on_cpu else gpu_ops).append(IndexOp.INSERT)
            (prefix_ops if delete_on_cpu else gpu_ops).append(IndexOp.DELETE)
        else:
            # IN stayed in the CPU prefix (e.g. GPU segment = [KC, RD]).
            prefix_ops.extend(IndexOp)

        stages = (
            StageSpec(
                prefix_tasks,
                ProcessorKind.CPU,
                cores=prefix_cores,
                index_ops=tuple(prefix_ops),
            ),
            StageSpec(gpu_tasks, ProcessorKind.GPU, index_ops=tuple(gpu_ops)),
            StageSpec(
                suffix_tasks,
                ProcessorKind.CPU,
                cores=total_cpu_cores - prefix_cores,
                index_ops=(),
            ),
        )
        return cls(
            stages=stages,
            insert_on_cpu=insert_on_cpu,
            delete_on_cpu=delete_on_cpu,
            work_stealing=work_stealing,
        )

    # -------------------------------------------------------------- queries

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def gpu_stage(self) -> StageSpec | None:
        for stage in self.stages:
            if stage.processor is ProcessorKind.GPU:
                return stage
        return None

    def stage_of(self, task: Task) -> StageSpec:
        for stage in self.stages:
            if task in stage:
                return stage
        raise ConfigurationError(f"task {task} not in pipeline")  # pragma: no cover

    def stage_of_index_op(self, op: IndexOp) -> StageSpec:
        """The stage executing index operation ``op``."""
        for stage in self.stages:
            if op in stage.index_ops:
                return stage
        raise ConfigurationError(f"index op {op} not placed")  # pragma: no cover

    def with_work_stealing(self, enabled: bool) -> "PipelineConfig":
        """Copy of this config with work stealing toggled."""
        return PipelineConfig(
            stages=self.stages,
            insert_on_cpu=self.insert_on_cpu,
            delete_on_cpu=self.delete_on_cpu,
            work_stealing=enabled,
        )

    @property
    def label(self) -> str:
        """Paper-style pipeline notation with index-op annotations."""
        parts = [stage.label for stage in self.stages]
        text = " -> ".join(parts)
        notes = []
        if self.insert_on_cpu:
            notes.append("Insert@CPU")
        if self.delete_on_cpu:
            notes.append("Delete@CPU")
        if notes:
            text += " (" + ", ".join(notes) + ")"
        return text


def format_pipeline(config: PipelineConfig) -> str:
    """Free-function alias for :attr:`PipelineConfig.label`."""
    return config.label


def gpu_segments() -> tuple[tuple[Task, ...], ...]:
    """All legal contiguous GPU segments, including the empty one.

    Derived from :data:`GPU_ELIGIBLE_TASKS` (IN, KC, RD).  Every GPU
    segment starts at IN — the paper's pipelines (Figure 8, Section V-C)
    always offload the index together with any downstream tasks, because
    IN's output (candidate locations) is what the GPU stage consumes.
    """
    eligible = sorted(GPU_ELIGIBLE_TASKS, key=lambda t: t.value)
    segments: list[tuple[Task, ...]] = [()]
    for end in range(1, len(eligible) + 1):
        segment = tuple(eligible[:end])
        if contiguous_in_order(segment):
            segments.append(segment)
    return tuple(segments)
