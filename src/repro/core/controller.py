"""Runtime adaptation: re-plan the pipeline when the workload shifts.

Implements the paper's adaptation mechanism (Sections III-A and V-F):

* the profiler closes a window per batch and produces a profile;
* if any profiled counter changed by more than 10 % relative to the profile
  the current configuration was planned for, the cost model re-ranks the
  configuration space and the best plan is adopted;
* the new plan applies to the *next* batch — in-flight batches carry their
  own pipeline information, so a switch never corrupts processing but does
  delay the throughput recovery (the ~1 ms lag visible in Figure 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config_search import ConfigurationSearch
from repro.core.cost_model import CostModel, PipelineEstimate
from repro.core.profiler import WorkloadProfile, profile_delta
from repro.hardware.specs import PlatformSpec
from repro.core.pipeline_config import PipelineConfig


@dataclass(frozen=True)
class AdaptationEvent:
    """Record of one re-planning decision."""

    batch_index: int
    trigger_change: float
    old_label: str
    new_label: str
    estimated_mops: float

    @property
    def changed(self) -> bool:
        return self.old_label != self.new_label


class AdaptationController:
    """Owns the planning loop: profile in, pipeline configuration out.

    Parameters
    ----------
    platform:
        Hardware the cost model plans for.
    latency_budget_ns:
        The latency limit the periodical scheduler must respect.
    work_stealing:
        Whether chosen plans enable stealing (on by default, as in DIDO).
    """

    def __init__(
        self,
        platform: PlatformSpec,
        latency_budget_ns: float = 1_000_000.0,
        work_stealing: bool = True,
    ):
        self.cost_model = CostModel(platform)
        self.search = ConfigurationSearch(self.cost_model)
        self.latency_budget_ns = latency_budget_ns
        self.work_stealing = work_stealing
        self._planned_for: WorkloadProfile | None = None
        self._current: PipelineConfig | None = None
        self._current_estimate: PipelineEstimate | None = None
        self._batch_index = 0
        self.events: list[AdaptationEvent] = []

    # ------------------------------------------------------------- planning

    @property
    def current_config(self) -> PipelineConfig | None:
        return self._current

    @property
    def current_estimate(self) -> PipelineEstimate | None:
        return self._current_estimate

    def config_for(self, profile: WorkloadProfile) -> PipelineConfig:
        """The configuration to use for the batch following ``profile``.

        First call always plans; afterwards re-planning happens only on a
        substantial (>10 %) profile change, so steady workloads pay nothing.
        """
        self._batch_index += 1
        if self._current is not None and self._planned_for is not None:
            delta = profile_delta(profile, self._planned_for)
            if not delta.substantial:
                return self._current
            trigger = delta.max_change
        else:
            trigger = float("inf")
        best = self.search.best(
            profile, self.latency_budget_ns, work_stealing=self.work_stealing
        )
        old_label = self._current.label if self._current is not None else "<none>"
        self.events.append(
            AdaptationEvent(
                batch_index=self._batch_index,
                trigger_change=trigger,
                old_label=old_label,
                new_label=best.config.label,
                estimated_mops=best.estimate.throughput_mops,
            )
        )
        self._planned_for = profile
        self._current = best.config
        self._current_estimate = best.estimate
        return best.config

    def force_replan(self) -> None:
        """Invalidate the current plan (next profile will re-plan)."""
        self._planned_for = None

    @property
    def replan_count(self) -> int:
        """Number of times the search actually ran."""
        return len(self.events)
