"""Runtime adaptation: re-plan the pipeline when the workload shifts.

Implements the paper's adaptation mechanism (Sections III-A and V-F):

* the profiler closes a window per batch and produces a profile;
* if any profiled counter changed by more than 10 % relative to the profile
  the current configuration was planned for, the cost model re-ranks the
  configuration space and the best plan is adopted;
* the new plan applies to the *next* batch — in-flight batches carry their
  own pipeline information, so a switch never corrupts processing but does
  delay the throughput recovery (the ~1 ms lag visible in Figure 20).

Every decision leaves an audit trail twice over: an
:class:`AdaptationEvent` (full before/after :class:`PipelineConfig`) on the
controller itself, and — when telemetry is enabled — a ``replan``
:class:`~repro.telemetry.events.TraceEvent` in the process-wide event log,
plus an INFO log line for operators running without telemetry.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass

from repro.core.config_search import ConfigurationSearch
from repro.core.cost_model import CostModel, PipelineEstimate
from repro.core.profiler import WorkloadProfile, profile_delta
from repro.hardware.specs import PlatformSpec
from repro.core.pipeline_config import PipelineConfig
from repro.telemetry import get_telemetry, replan_event

logger = logging.getLogger("repro.core.controller")


@dataclass(frozen=True)
class AdaptationEvent:
    """Record of one re-planning decision.

    Carries the full before/after configurations (not just their labels) so
    audits can inspect stage membership, core splits, and index-operation
    placement of both plans; ``old_config`` is None on the bootstrap plan.
    """

    batch_index: int
    trigger_change: float
    old_label: str
    new_label: str
    estimated_mops: float
    old_config: PipelineConfig | None = None
    new_config: PipelineConfig | None = None

    @property
    def changed(self) -> bool:
        return self.old_label != self.new_label

    @property
    def bootstrap(self) -> bool:
        """True for the first-ever plan (no previous profile to diff)."""
        return self.old_config is None


class AdaptationController:
    """Owns the planning loop: profile in, pipeline configuration out.

    Parameters
    ----------
    platform:
        Hardware the cost model plans for.
    latency_budget_ns:
        The latency limit the periodical scheduler must respect.
    work_stealing:
        Whether chosen plans enable stealing (on by default, as in DIDO).
    """

    def __init__(
        self,
        platform: PlatformSpec,
        latency_budget_ns: float = 1_000_000.0,
        work_stealing: bool = True,
    ):
        self.cost_model = CostModel(platform)
        self.search = ConfigurationSearch(self.cost_model)
        self.latency_budget_ns = latency_budget_ns
        self.work_stealing = work_stealing
        self._planned_for: WorkloadProfile | None = None
        self._current: PipelineConfig | None = None
        self._current_estimate: PipelineEstimate | None = None
        self._batch_index = 0
        self.events: list[AdaptationEvent] = []

    # ------------------------------------------------------------- planning

    @property
    def current_config(self) -> PipelineConfig | None:
        return self._current

    @property
    def current_estimate(self) -> PipelineEstimate | None:
        return self._current_estimate

    def config_for(self, profile: WorkloadProfile) -> PipelineConfig:
        """The configuration to use for the batch following ``profile``.

        First call always plans; afterwards re-planning happens only on a
        substantial (>10 %) profile change, so steady workloads pay nothing.
        """
        self._batch_index += 1
        if self._current is not None and self._planned_for is not None:
            delta = profile_delta(profile, self._planned_for)
            if not delta.substantial:
                return self._current
            trigger = delta.max_change
        else:
            trigger = float("inf")
        best = self.search.best(
            profile, self.latency_budget_ns, work_stealing=self.work_stealing
        )
        old_config = self._current
        old_label = old_config.label if old_config is not None else "<none>"
        event = AdaptationEvent(
            batch_index=self._batch_index,
            trigger_change=trigger,
            old_label=old_label,
            new_label=best.config.label,
            estimated_mops=best.estimate.throughput_mops,
            old_config=old_config,
            new_config=best.config,
        )
        self.events.append(event)
        self._planned_for = profile
        self._current = best.config
        self._current_estimate = best.estimate
        self._record(event, best.estimate)
        return best.config

    def _record(self, event: AdaptationEvent, estimate: PipelineEstimate) -> None:
        """Mirror one decision into the log and the telemetry event stream."""
        trigger_text = (
            "bootstrap" if math.isinf(event.trigger_change)
            else f"{event.trigger_change:.0%} profile change"
        )
        logger.info(
            "replan at batch %d (%s): %s -> %s (est %.1f MOPS)",
            event.batch_index,
            trigger_text,
            event.old_label,
            event.new_label,
            event.estimated_mops,
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.events.append(
                replan_event(
                    batch_index=event.batch_index,
                    trigger_change=event.trigger_change,
                    old_config=None if event.old_config is None else event.old_label,
                    new_config=event.new_label,
                    estimated_mops=event.estimated_mops,
                    changed=event.changed,
                    estimated_tmax_us=estimate.tmax_ns / 1000.0,
                )
            )
            telemetry.registry.counter(
                "repro_replans_total", help="Adaptation decisions taken"
            ).inc(changed=str(event.changed).lower())

    def force_replan(self) -> None:
        """Invalidate the current plan (next profile will re-plan)."""
        logger.info("force_replan: next profile will re-run the search")
        self._planned_for = None

    @property
    def replan_count(self) -> int:
        """Number of times the search actually ran."""
        return len(self.events)
