"""The eight fine-grained tasks, index operations, affinity, and cost params.

Section III-A partitions query processing into eight tasks, the granularity
of DIDO's pipeline mapping:

==  ====================  =======================================
RV  receive               pull frames from the NIC RX ring
PP  packet processing     UDP/parse queries from frame payloads
MM  memory management     allocate/evict slab space for SETs
IN  index operations      Search / Insert / Delete on the index
KC  key comparison        verify full keys against candidates
RD  read value            fetch value bytes from the heap
WR  write response        build response payloads
SD  send                  push frames to the NIC TX ring
==  ====================  =======================================

RV and SD are pinned to the CPU (they talk to the NIC); MM, PP and WR also
stay on the CPU in this reproduction (the paper's DIDO never offloads them
and MM mutates global allocator state), leaving IN, KC, RD GPU-eligible —
exactly the tasks the paper's chosen pipelines move.

Index operations are themselves placeable: Insert and Delete can run on the
CPU stage that generates them (flexible index-operation assignment, Section
III-B2) instead of riding along with Search.

:class:`TaskModel` turns a workload profile into per-task instruction counts
and :class:`~repro.hardware.memory.AccessPattern` objects — the ``I_F``,
``N^M_F`` and ``N^C_F`` of the paper's Table I.  The raw constants live in
:class:`CalibrationConstants` so the calibration procedure and ablation
benchmarks can vary them in one place.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.hardware.memory import AccessPattern, object_access_pattern
from repro.net.packets import ETHERNET_MTU, FRAME_HEADER_BYTES


class Task(enum.Enum):
    """The eight fine-grained tasks, in canonical pipeline order."""

    RV = 0
    PP = 1
    MM = 2
    IN = 3
    KC = 4
    RD = 5
    WR = 6
    SD = 7

    def __lt__(self, other: "Task") -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.value < other.value


#: Canonical processing order; stages must be contiguous slices of this.
TASK_ORDER: tuple[Task, ...] = tuple(Task)

#: Tasks that must run on the CPU (NIC access / global allocator state).
CPU_ONLY_TASKS: frozenset[Task] = frozenset({Task.RV, Task.PP, Task.MM, Task.WR, Task.SD})

#: Tasks the GPU may execute (the ones the paper's pipelines move).
GPU_ELIGIBLE_TASKS: frozenset[Task] = frozenset({Task.IN, Task.KC, Task.RD})

#: Task affinity pairs (predecessor, successor): placing both in one stage
#: lets the successor find its data in cache (Section III-B1).  KC pulls
#: objects in for RD; RD leaves the value in cache for WR.
AFFINITY_PAIRS: tuple[tuple[Task, Task], ...] = ((Task.KC, Task.RD), (Task.RD, Task.WR))


class IndexOp(enum.Enum):
    """The three index operations, independently placeable (Section III-B2)."""

    SEARCH = "search"
    INSERT = "insert"
    DELETE = "delete"


#: Per-object header bytes the KC task reads besides the key itself.
OBJECT_HEADER_BYTES = 16


@dataclass(frozen=True)
class CalibrationConstants:
    """Raw per-task cost constants (instructions and access counts per query).

    These are the calibration surface of the reproduction: they were tuned
    once so the Mega-KV baseline reproduces the stage-time and utilisation
    shapes of the paper's Figures 4-6, then frozen.  ``*_instr`` values are
    instruction counts; ``*_mem`` / ``*_cache`` are random-DRAM and L2
    access counts (per query unless stated otherwise).
    """

    # RV/SD: mostly per-frame driver work, amortised over queries per frame.
    rv_instr_per_query: float = 8.0
    rv_instr_per_frame: float = 250.0
    rv_mem_per_frame: float = 1.0
    sd_instr_per_query: float = 8.0
    sd_instr_per_frame: float = 250.0
    sd_mem_per_frame: float = 1.0

    # PP: parse header + hash the key.
    pp_instr_base: float = 14.0
    pp_instr_per_key_byte: float = 0.1
    pp_mem_per_query: float = 0.02  # frame payload mostly prefetched

    # MM (per SET): slab alloc + LRU + eviction bookkeeping + value copy.
    mm_instr_base: float = 320.0
    mm_mem_per_set: float = 4.5
    mm_cache_per_set: float = 3.0

    # Index operations (per op).
    search_instr: float = 70.0
    insert_instr: float = 140.0
    delete_instr: float = 100.0
    index_cache_per_op: float = 0.5

    # KC: compare full key (object header + key bytes).
    kc_instr_base: float = 40.0
    kc_instr_per_key_byte: float = 0.125

    # RD: read the value.
    rd_instr_base: float = 30.0
    rd_instr_per_value_byte: float = 0.0625

    # WR: build the response.
    wr_instr_base: float = 50.0
    wr_instr_per_resp_byte: float = 0.0625

    # Wire format: query/response header bytes (see repro.kv.protocol).
    query_header_bytes: int = 7
    response_header_bytes: int = 5

    def with_cpu_overhead(self, factor: float) -> "CalibrationConstants":
        """Scale the CPU-side task costs by ``factor``.

        Used to model the Mega-KV OpenCL *port* (paper Section II-C): its
        CPU-side code paths carry porting overhead that DIDO's native
        implementation does not, which is how the paper's Figure 4 (RSV at
        the 300 us cap in Mega-KV) and Figure 13 (large gains from merely
        reassigning index operations inside DIDO's leaner implementation)
        are simultaneously consistent.
        """
        if factor <= 0:
            raise ConfigurationError("overhead factor must be positive")
        updates = {}
        for name in (
            "rv_instr_per_query",
            "rv_instr_per_frame",
            "rv_mem_per_frame",
            "sd_instr_per_query",
            "sd_instr_per_frame",
            "sd_mem_per_frame",
            "pp_instr_base",
            "pp_instr_per_key_byte",
            "pp_mem_per_query",
            "mm_instr_base",
            "mm_mem_per_set",
            "mm_cache_per_set",
            "kc_instr_base",
            "kc_instr_per_key_byte",
            "rd_instr_base",
            "rd_instr_per_value_byte",
            "wr_instr_base",
            "wr_instr_per_resp_byte",
        ):
            updates[name] = getattr(self, name) * factor
        return replace(self, **updates)

    def scaled(self, factor: float) -> "CalibrationConstants":
        """All instruction constants scaled by ``factor`` (sensitivity tests)."""
        updates = {
            name: getattr(self, name) * factor
            for name in (
                "rv_instr_per_query",
                "rv_instr_per_frame",
                "sd_instr_per_query",
                "sd_instr_per_frame",
                "pp_instr_base",
                "mm_instr_base",
                "search_instr",
                "insert_instr",
                "delete_instr",
                "kc_instr_base",
                "rd_instr_base",
                "wr_instr_base",
            )
        }
        return replace(self, **updates)


DEFAULT_CALIBRATION = CalibrationConstants()


@dataclass(frozen=True)
class TaskDemand:
    """Cost of one task for a batch: executions, per-execution cost terms.

    ``count`` is how many executions the batch triggers (e.g. MM runs once
    per SET, not per query).  ``instructions`` and ``pattern`` are per
    execution.  ``atomic`` marks compare-exchange-heavy work (GPU penalty).
    ``op`` identifies which index operation an IN demand covers (None for
    whole-task demands), so stage-time accounting never relies on list
    positions to pair demands with operations.
    """

    task: Task
    count: float
    instructions: float
    pattern: AccessPattern
    atomic: bool = False
    op: IndexOp | None = None

    @property
    def total_memory_accesses(self) -> float:
        """Random accesses for the whole batch (feeds the interference model)."""
        return self.count * self.pattern.memory_accesses


@dataclass(frozen=True)
class StageContext:
    """Placement facts that change a task's memory pattern.

    Attributes
    ----------
    cache_line_bytes:
        Line size of the processor executing the task.
    with_kc:
        KC runs in the same stage (RD's affinity: object already cached).
    with_rd:
        RD runs in the same stage as WR (value already cached).
    rd_feeds_buffer:
        RD and WR are in *different* stages, so RD must additionally write
        objects into a sequential staging buffer and WR reads that buffer
        sequentially (the random->sequential conversion of Section III-A).
    hot_fraction:
        Fraction of object accesses served by this processor's cache under
        the current key popularity (the cost model's ``P``).
    """

    cache_line_bytes: int
    with_kc: bool = False
    with_rd: bool = False
    rd_feeds_buffer: bool = False
    hot_fraction: float = 0.0


class TaskModel:
    """Computes per-task demands (``I_F``, ``N^M_F``, ``N^C_F``) for a batch.

    Parameters
    ----------
    constants:
        Calibration constants; defaults to the frozen calibrated set.
    """

    def __init__(self, constants: CalibrationConstants = DEFAULT_CALIBRATION):
        self.constants = constants

    # ----------------------------------------------------------- wire sizing

    def queries_per_frame(self, key_size: float, value_size: float, get_ratio: float) -> float:
        """Average queries packed into one MTU frame (paper batches maximally)."""
        c = self.constants
        avg_query = c.query_header_bytes + key_size + (1.0 - get_ratio) * value_size
        return max(1.0, ETHERNET_MTU / avg_query)

    def responses_per_frame(self, value_size: float, get_ratio: float) -> float:
        """Average responses per outgoing frame (GET responses carry values)."""
        c = self.constants
        avg_resp = c.response_header_bytes + get_ratio * value_size
        return max(1.0, ETHERNET_MTU / avg_resp)

    def response_bytes(self, value_size: float, get_ratio: float) -> float:
        """Average response payload bytes per query."""
        return self.constants.response_header_bytes + get_ratio * value_size

    # -------------------------------------------------------------- demands

    def demand(
        self,
        task: Task,
        batch: int,
        *,
        key_size: float,
        value_size: float,
        get_ratio: float,
        context: StageContext,
    ) -> TaskDemand:
        """Demand of ``task`` over a batch of ``batch`` queries.

        The IN task is not handled here — index operations are split per
        :class:`IndexOp` via :meth:`index_demand` so they can be placed
        independently.
        """
        builder = {
            Task.RV: self._rv,
            Task.PP: self._pp,
            Task.MM: self._mm,
            Task.KC: self._kc,
            Task.RD: self._rd,
            Task.WR: self._wr,
            Task.SD: self._sd,
        }.get(task)
        if builder is None:
            raise ConfigurationError(
                "IN demands are produced per index operation; call index_demand"
            )
        return builder(batch, key_size, value_size, get_ratio, context)

    def index_demand(
        self,
        op: IndexOp,
        count: float,
        *,
        search_buckets: float,
        insert_buckets: float,
    ) -> TaskDemand:
        """Demand of ``count`` index operations of kind ``op``.

        ``search_buckets`` is the average buckets probed per Search/Delete
        (theoretically ``(sum i)/n`` for ``n`` hash functions);
        ``insert_buckets`` the measured average buckets written per Insert
        (the paper estimates this at runtime).
        """
        c = self.constants
        if op is IndexOp.SEARCH:
            pattern = AccessPattern(search_buckets, c.index_cache_per_op)
            return TaskDemand(Task.IN, count, c.search_instr, pattern, op=op)
        if op is IndexOp.DELETE:
            pattern = AccessPattern(search_buckets, c.index_cache_per_op)
            return TaskDemand(Task.IN, count, c.delete_instr, pattern, atomic=True, op=op)
        pattern = AccessPattern(insert_buckets, c.index_cache_per_op * 2)
        return TaskDemand(Task.IN, count, c.insert_instr, pattern, atomic=True, op=op)

    # ----------------------------------------------------------- individual

    def _rv(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        qpf = self.queries_per_frame(key_size, value_size, get_ratio)
        wire_per_query = (
            c.query_header_bytes
            + key_size
            + (1.0 - get_ratio) * value_size
            + FRAME_HEADER_BYTES / qpf
        )
        instr = c.rv_instr_per_query + c.rv_instr_per_frame / qpf
        pattern = AccessPattern(
            c.rv_mem_per_frame / qpf, wire_per_query / context.cache_line_bytes
        )
        return TaskDemand(Task.RV, batch, instr, pattern)

    def _pp(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        instr = c.pp_instr_base + c.pp_instr_per_key_byte * key_size
        payload = c.query_header_bytes + key_size + (1.0 - get_ratio) * value_size
        pattern = AccessPattern(c.pp_mem_per_query, payload / context.cache_line_bytes)
        return TaskDemand(Task.PP, batch, instr, pattern)

    def _mm(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        sets = batch * (1.0 - get_ratio)
        copy_lines = (key_size + value_size) / context.cache_line_bytes
        pattern = AccessPattern(c.mm_mem_per_set, c.mm_cache_per_set + copy_lines)
        instr = c.mm_instr_base + (key_size + value_size) * 0.0625
        return TaskDemand(Task.MM, sets, instr, pattern)

    def _kc(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        gets = batch * get_ratio
        instr = c.kc_instr_base + c.kc_instr_per_key_byte * key_size
        pattern = object_access_pattern(
            int(key_size) + OBJECT_HEADER_BYTES, context.cache_line_bytes
        ).with_hot_fraction(context.hot_fraction)
        return TaskDemand(Task.KC, gets, instr, pattern)

    def _rd(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        gets = batch * get_ratio
        instr = c.rd_instr_base + c.rd_instr_per_value_byte * value_size
        object_bytes = int(key_size + value_size) + OBJECT_HEADER_BYTES
        pattern = object_access_pattern(
            object_bytes, context.cache_line_bytes, already_cached=context.with_kc
        ).with_hot_fraction(context.hot_fraction)
        if context.rd_feeds_buffer:
            # Stage-separated RD also writes the value into a sequential
            # staging buffer for the downstream WR stage.
            buffer_lines = math.ceil(value_size / context.cache_line_bytes)
            pattern = pattern + AccessPattern(0.0, float(buffer_lines))
            instr += c.rd_instr_per_value_byte * value_size
        return TaskDemand(Task.RD, gets, instr, pattern)

    def _wr(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        resp_bytes = self.response_bytes(value_size, get_ratio)
        instr = c.wr_instr_base + c.wr_instr_per_resp_byte * resp_bytes
        write_lines = resp_bytes / context.cache_line_bytes
        if context.with_rd:
            # Value still in cache from RD in the same stage.
            source = AccessPattern(0.0, get_ratio * math.ceil(value_size / context.cache_line_bytes))
        else:
            # Read from the sequential staging buffer RD produced.
            source = object_access_pattern(
                int(value_size), context.cache_line_bytes, sequential=True
            ).scaled(get_ratio)
        pattern = source + AccessPattern(0.0, write_lines)
        return TaskDemand(Task.WR, batch, instr, pattern)

    def _sd(self, batch, key_size, value_size, get_ratio, context) -> TaskDemand:
        c = self.constants
        rpf = self.responses_per_frame(value_size, get_ratio)
        instr = c.sd_instr_per_query + c.sd_instr_per_frame / rpf
        resp_bytes = self.response_bytes(value_size, get_ratio)
        pattern = AccessPattern(c.sd_mem_per_frame / rpf, resp_bytes / context.cache_line_bytes)
        return TaskDemand(Task.SD, batch, instr, pattern)


def contiguous_in_order(tasks: tuple[Task, ...]) -> bool:
    """True when ``tasks`` is a contiguous ascending slice of TASK_ORDER."""
    if not tasks:
        return False
    values = [t.value for t in tasks]
    return values == list(range(values[0], values[0] + len(values)))
