"""DIDO's core: fine-grained tasks, profiling, cost model, and adaptation.

This package implements the paper's primary contribution (Sections III-IV):

* :mod:`repro.core.tasks` — the eight fine-grained tasks (RV..SD), the three
  index operations, task ordering/affinity, and the calibrated per-task
  instruction/memory parameters;
* :mod:`repro.core.profiler` — the lightweight workload profiler (GET
  ratio, average key/value size, Zipf-skew sampling estimator);
* :mod:`repro.core.cost_model` — the APU-aware cost model (Equations 1-3)
  with task affinity, key popularity, and interference terms;
* :mod:`repro.core.config_search` — exhaustive enumeration of pipeline
  partitioning schemes and index-operation assignment policies;
* :mod:`repro.core.work_stealing` — the tag-array chunked work-stealing
  protocol (64-query sets, matching the APU wavefront);
* :mod:`repro.core.controller` — the runtime adaptation loop (re-plan on
  >10 % workload-counter change, one-batch apply delay);
* :mod:`repro.core.dido` — the assembled :class:`DidoSystem` facade.
"""

from repro.core.config_search import ConfigurationSearch, enumerate_configs
from repro.core.controller import AdaptationController, AdaptationEvent
from repro.core.cost_model import CostModel, PipelineEstimate
from repro.core.dido import DidoSystem, SystemReport
from repro.core.profiler import ProfileDelta, WorkloadProfile, WorkloadProfiler
from repro.core.tasks import (
    CPU_ONLY_TASKS,
    GPU_ELIGIBLE_TASKS,
    TASK_ORDER,
    CalibrationConstants,
    IndexOp,
    Task,
    TaskModel,
)
from repro.core.work_stealing import StealOutcome, TagArray, WAVEFRONT, plan_steal

__all__ = [
    "AdaptationController",
    "AdaptationEvent",
    "CPU_ONLY_TASKS",
    "CalibrationConstants",
    "ConfigurationSearch",
    "CostModel",
    "DidoSystem",
    "GPU_ELIGIBLE_TASKS",
    "IndexOp",
    "PipelineEstimate",
    "ProfileDelta",
    "StealOutcome",
    "SystemReport",
    "TASK_ORDER",
    "TagArray",
    "Task",
    "TaskModel",
    "WAVEFRONT",
    "WorkloadProfile",
    "WorkloadProfiler",
    "enumerate_configs",
    "plan_steal",
]
