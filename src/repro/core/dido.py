"""The assembled DIDO system (paper Figure 7).

:class:`DidoSystem` wires every component together: the simulated NIC feeds
frames to the functional pipeline, the workload profiler watches each batch,
the cost-model-guided controller re-plans the pipeline on substantial
workload change, and the detailed executor measures what the chosen
configuration achieves on the modelled APU.

Two usage styles:

* **functional** — :meth:`process` / :meth:`process_frames` push real
  queries through the real store under the currently planned pipeline and
  return real responses (what the correctness tests and examples use);
* **analytical** — :meth:`measure_steady_state` evaluates the planned
  configuration's throughput/utilisation on the hardware model (what the
  benchmark harness uses to regenerate the paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.controller import AdaptationController
from repro.core.profiler import WorkloadProfile, WorkloadProfiler
from repro.errors import ConfigurationError, WorkloadError
from repro.hardware.specs import APU_A10_7850K, PlatformSpec
from repro.kv.protocol import Query, decode_queries
from repro.kv.sharding import ShardedKVStore
from repro.kv.store import KVStore
from repro.net.nic import SimulatedNIC
from repro.net.packets import Frame, frames_for_queries
from repro.pipeline.executor import PipelineExecutor, PipelineMeasurement
from repro.pipeline.functional import BatchResult, FunctionalPipeline
from repro.core.pipeline_config import PipelineConfig


@dataclass
class SystemReport:
    """Summary of a :class:`DidoSystem` run."""

    batches: int
    queries: int
    replans: int
    current_pipeline: str
    estimated_mops: float

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (
            f"batches={self.batches} queries={self.queries} "
            f"replans={self.replans} pipeline={self.current_pipeline} "
            f"est={self.estimated_mops:.1f} MOPS"
        )


class DidoSystem:
    """An in-memory key-value store with dynamic pipeline execution.

    Parameters
    ----------
    platform:
        Hardware model (defaults to the paper's A10-7850K APU).
    memory_bytes:
        Slab budget for objects; defaults to the platform's shareable region.
    expected_objects:
        Index sizing hint.
    latency_budget_ns:
        The periodical scheduler's latency limit (paper: 1,000 us).
    work_stealing:
        Enable work stealing in planned configurations.
    engine:
        Functional execution backend ("auto"/None, "serial", "stealing",
        "reference", "vector", "sharded", or a backend instance);
        forwarded to :class:`~repro.pipeline.functional.FunctionalPipeline`.
    shards:
        Hash-partition the store across this many independent
        :class:`~repro.kv.store.KVStore` shards (a
        :class:`~repro.kv.sharding.ShardedKVStore`).  With ``shards > 1``
        an unset/auto ``engine`` resolves to "sharded" — the only backend
        that executes across partitions.
    dedup:
        Collapse each batch's duplicate GET runs to one index probe per
        key between write barriers (the skew-aware hot path; see
        :mod:`repro.engine.hotpath`).
    hot_cache:
        Attach a versioned hot-key read cache to the store (per shard on a
        sharded store).  The cache starts inactive; each profiler window
        the estimated Zipf skew gates it on (>= 0.5) or off (< 0.2), and
        its measured hit rate feeds the cost model's hot-fraction input.
    hot_cache_keys:
        Cache capacity in keys (total across shards); default 1024.
    heap:
        Value heap kind for every store this system creates: ``"log"``
        (default — append-only arena, compacted from :meth:`maintain`) or
        ``"slab"`` (size-classed allocator with per-SET LRU eviction).
    delta_index:
        Absorb index Insert/Delete/Reassign traffic in a per-store
        :class:`~repro.kv.deltaindex.DeltaIndex` and merge it into the
        cuckoo table in bulk at write barriers and :meth:`maintain` ticks
        (per shard / per worker on partitioned stores).
    """

    def __init__(
        self,
        platform: PlatformSpec = APU_A10_7850K,
        *,
        memory_bytes: int | None = None,
        expected_objects: int = 1 << 16,
        latency_budget_ns: float = 1_000_000.0,
        work_stealing: bool = True,
        engine=None,
        shards: int = 1,
        dedup: bool = False,
        hot_cache: bool = False,
        hot_cache_keys: int | None = None,
        heap: str = "log",
        delta_index: bool = False,
    ):
        self.platform = platform
        budget = memory_bytes if memory_bytes is not None else platform.shared_memory_bytes
        self._procshard = engine == "procshard" or (
            getattr(engine, "name", None) == "procshard"
        )
        if self._procshard:
            # Process-per-shard: the store facade owns one worker process
            # per shard; dedup and the hot cache live *inside* the workers
            # (each sees its shard's full runs), so the parent attaches
            # nothing and the flags travel in the worker config.
            from repro.engine.procshard import ProcShardStore

            self.store = ProcShardStore(
                budget,
                expected_objects,
                max(shards, 1),
                dedup=dedup,
                hot_cache=hot_cache,
                hot_cache_keys=hot_cache_keys,
                # Caches start cold and inactive, exactly like the
                # in-process path; each batch header carries the skew
                # gate once the profiler has seen a window.
                hot_cache_active=False,
                heap=heap,
                delta_index=delta_index,
            )
        elif shards > 1:
            self.store = ShardedKVStore(
                budget, expected_objects, shards, heap=heap, delta_index=delta_index
            )
            if engine is None or engine == "auto":
                engine = "sharded"
            elif engine != "sharded" and not hasattr(engine, "run"):
                raise ConfigurationError(
                    f"engine {engine!r} cannot execute across {shards} shards; "
                    "use engine='sharded' (or shards=1)"
                )
        else:
            self.store = KVStore(
                budget, expected_objects, heap=heap, delta_index=delta_index
            )
        self._hot_caches = []
        if hot_cache and not self._procshard:
            if isinstance(self.store, ShardedKVStore):
                self._hot_caches = self.store.attach_hot_cache(hot_cache_keys)
            else:
                self._hot_caches = [self.store.attach_hot_cache(hot_cache_keys)]
            # Caches start cold and inactive; the per-window skew gate in
            # process() switches them on once the estimator sees real skew.
            for cache in self._hot_caches:
                cache.active = False
        self._cache_hits_seen = 0
        self._cache_total_seen = 0
        self._last_measured: float | None = None
        self.nic = SimulatedNIC()
        self.profiler = WorkloadProfiler()
        self.controller = AdaptationController(
            platform, latency_budget_ns, work_stealing=work_stealing
        )
        self.executor = PipelineExecutor(platform)
        self.pipeline = FunctionalPipeline(
            self.store,
            epoch_source=lambda: self.profiler.epoch,
            engine=engine,
            dedup=dedup,
            hot_cache=hot_cache,
        )
        self.latency_budget_ns = latency_budget_ns
        self._batches = 0
        self._queries = 0

    # ------------------------------------------------------------ functional

    def process(self, queries) -> BatchResult:
        """Process one batch of queries under the adaptive pipeline.

        ``queries`` is a ``list[Query]`` or a columnar
        :class:`~repro.net.wire.QueryColumns` batch straight off the wire
        decoder (the UDP server's hot path — no per-query objects exist
        anywhere on it).

        Profiles the batch, asks the controller for the configuration (which
        re-plans only on substantial change), executes functionally, and
        feeds observed object frequencies back into the profiler for the
        skew estimator.
        """
        config = self._plan_batch(queries)
        result = self.pipeline.process_batch(config, queries)
        self._batches += 1
        self._queries += len(queries)
        return result

    def _plan_batch(self, queries):
        """Per-batch pre-work: profile, feed caches, pick the config."""
        if not queries:
            raise WorkloadError("cannot process an empty batch")
        self.profiler.observe_batch(queries)
        self.profiler.observe_insert_buckets(self.store.index.stats.average_insert_buckets())
        profile = self.profiler.snapshot()
        self._harvest_frequencies()
        if self._procshard:
            profile = self._feed_procshard(profile)
        elif self._hot_caches:
            profile = self._feed_hot_caches(profile)
        return self.controller.config_for(profile)

    @property
    def supports_pipelining(self) -> bool:
        """Whether :meth:`process_submit` actually overlaps windows."""
        return self._procshard and self.pipeline.supports_pipelining

    def process_submit(self, queries):
        """Pipelined entry: plan and submit one window without merging.

        Returns a :class:`~repro.pipeline.functional.PendingBatch` to pass
        to :meth:`process_collect` (in submission order).  On a
        non-pipelining configuration the window runs synchronously here
        and collect just unwraps it — callers never need to special-case.
        All profiler/controller pre-work happens at submit time, reading
        only router-side cached worker counters (no ring round trips that
        would interleave with in-flight windows).
        """
        config = self._plan_batch(queries)
        return self.pipeline.submit_batch(config, queries)

    def process_collect(self, pending) -> BatchResult:
        """Finish a window submitted with :meth:`process_submit`."""
        result = self.pipeline.collect_batch(pending)
        self._batches += 1
        self._queries += pending.num_queries
        return result

    def process_frames(self, frames: list[Frame]) -> BatchResult:
        """NIC entry point: deliver frames, drain the RX ring, process."""
        self.nic.deliver(frames)
        pending = self.nic.receive()
        queries: list[Query] = []
        for frame in pending:
            queries.extend(decode_queries(frame.payload))
        result = self.process(queries)
        self.nic.send(result.frames)
        return result

    def submit(self, queries: list[Query]) -> BatchResult:
        """Client-style entry: pack queries into frames and go through the NIC."""
        return self.process_frames(frames_for_queries(queries))

    def _feed_hot_caches(self, profile: WorkloadProfile) -> WorkloadProfile:
        """Close the caches' window: gate on skew, feed the profiler, and
        attach the measured hit rate to the profile for the cost model.

        The skew estimate gates every cache together (hysteresis inside
        :meth:`~repro.kv.hotcache.HotKeyCache.gate_on_skew`); cache-served
        hit counts flow into the *next* window's frequency sample, exactly
        like :meth:`_harvest_frequencies` does for heap-served reads.  The
        measured hot fraction is the hit rate over this window's cache
        lookups (carried forward through idle windows so brief all-write
        batches don't zero the cost model's input).
        """
        hits = 0
        total = 0
        for cache in self._hot_caches:
            cache.gate_on_skew(profile.zipf_skew)
            for count in cache.drain_window_hits():
                self.profiler.observe_frequency(count)
            hits += cache.hits
            total += cache.hits + cache.misses
        window_hits = hits - self._cache_hits_seen
        window_total = total - self._cache_total_seen
        self._cache_hits_seen = hits
        self._cache_total_seen = total
        if window_total > 0:
            self._last_measured = window_hits / window_total
        if self._last_measured is None:
            return profile
        return replace(profile, measured_hot_fraction=self._last_measured)

    def _feed_procshard(self, profile: WorkloadProfile):
        """Procshard counterpart of :meth:`_feed_hot_caches`.

        The caches live inside the shard workers, so the router records
        the window's skew on the store facade (each batch header then
        carries it to the workers, whose caches run the same
        ``gate_on_skew`` hysteresis) and derives the measured hot fraction
        from the hit/miss totals the workers piggyback on batch replies —
        no extra round trips.
        """
        store = self.store
        store.note_skew(profile.zipf_skew)
        hits, misses = store.hot_cache_totals()
        total = hits + misses
        window_hits = hits - self._cache_hits_seen
        window_total = total - self._cache_total_seen
        self._cache_hits_seen = hits
        self._cache_total_seen = total
        if window_total > 0:
            self._last_measured = window_hits / window_total
        if self._last_measured is None:
            return profile
        return replace(profile, measured_hot_fraction=self._last_measured)

    def _harvest_frequencies(self, sample: int = 512) -> None:
        """Feed recently touched objects' in-window counts to the profiler.

        The real system reads counters as objects are accessed; sampling a
        bounded number per window keeps the profiler lightweight.  With a
        procshard store the harvesting already happened *inside* each
        worker (same epoch-lag rule, shipped back on the batch reply);
        here the router just drains what the workers sent.
        """
        if self._procshard:
            for count in self.store.take_frequency_samples():
                self.profiler.observe_frequency(count)
            return
        epoch = self.profiler.epoch
        harvested = 0
        for obj in self.store.heap.objects():
            if obj.sample_epoch == epoch - 1 and obj.access_count > 0:
                self.profiler.observe_frequency(obj.access_count)
                harvested += 1
                if harvested >= sample:
                    break

    # ------------------------------------------------------------- lifecycle

    def maintain(self) -> list[int]:
        """Periodic idle-tick work: heap compaction + worker health checks.

        For in-process stores this is the log arena's compaction barrier:
        the UDP server calls it every 0.5 s between windows, so dead
        space from tombstoned SET/DELETEs is reclaimed in large batches
        off the query path (``force=True`` lowers the trigger — an idle
        tick can afford the scan).  A slab-heap store makes this a no-op.

        For procshard stores it additionally respawns dead shard workers
        (compaction happens inside the workers, at their own idle ticks)
        and returns the respawned shard ids; a respawned worker starts
        empty — same durability contract as a rebooted cache node.
        """
        if self._procshard:
            return self.store.ensure_workers()
        maintenance = getattr(self.store, "maintenance", None)
        if maintenance is not None:
            maintenance(force=True)
        return []

    def close(self) -> None:
        """Release process-backed resources (worker processes + arenas)."""
        if self._procshard:
            self.store.close()

    # ------------------------------------------------------------ analytical

    def measure_steady_state(self, profile: WorkloadProfile) -> PipelineMeasurement:
        """Measured performance of the plan DIDO would choose for ``profile``."""
        config = self.controller.config_for(profile)
        return self.executor.measure(config, profile, self.latency_budget_ns)

    def plan_for(self, profile: WorkloadProfile) -> PipelineConfig:
        """The configuration the controller selects for ``profile``."""
        return self.controller.config_for(profile)

    # -------------------------------------------------------------- reporting

    def report(self) -> SystemReport:
        config = self.controller.current_config
        estimate = self.controller.current_estimate
        return SystemReport(
            batches=self._batches,
            queries=self._queries,
            replans=self.controller.replan_count,
            current_pipeline=config.label if config else "<unplanned>",
            estimated_mops=estimate.throughput_mops if estimate else 0.0,
        )
