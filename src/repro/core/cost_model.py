"""The APU-aware cost model (paper Section IV) and the shared pipeline analyzer.

The same analytical machinery — Equation 1 (per-task time from instruction
and memory counts), Equation 2 (stage time with interference factor ``mu``),
Equation 3 (work stealing), and Equation 4 (throughput ``S = N / Tmax``) —
serves two roles in this reproduction:

* :class:`CostModel` is DIDO's *internal* planner: it runs the analyzer with
  ``IDEAL_FIDELITY`` (microbenchmarked kernel overhead, calibrated-but-low
  cuckoo probe counts, a single Equation-2 interference pass, continuous
  Equation-3 stealing);
* the pipeline executor (:mod:`repro.pipeline.executor`) runs the same
  analyzer with ``DETAILED_FIDELITY`` (higher measured probe inflation, an
  interference fixed point, wavefront-quantized batches, chunk-quantized
  stealing with synchronisation costs) and plays the role of the measured
  system.

The structural gap between the two fidelity levels is what produces the
cost-model error the paper reports in Figure 9 and the occasional suboptimal
configuration choice of Figure 10 — the error is *earned*, not injected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.profiler import WorkloadProfile
from repro.core.tasks import (
    GPU_ELIGIBLE_TASKS,
    CalibrationConstants,
    DEFAULT_CALIBRATION,
    IndexOp,
    StageContext,
    Task,
    TaskDemand,
    TaskModel,
)
from repro.engine.plan import PhaseKind, compile_stage_plan
from repro.hardware.interference import InterferenceModel
from repro.hardware.memory import MemorySystem
from repro.hardware.pcie import PCIeLink
from repro.hardware.processor import cpu_task_time_ns, gpu_task_time_ns
from repro.hardware.specs import PlatformSpec, ProcessorKind
from repro.core.pipeline_config import PipelineConfig, StageSpec

#: Per-index-op PCIe job descriptor sizes for discrete GPUs (Mega-KV ships
#: compact jobs: key signature + location in, location out).
_PCIE_JOB_IN_BYTES = 16.0
_PCIE_JOB_OUT_BYTES = 8.0

#: Smallest batch the scheduler will use (one GPU wavefront).
MIN_BATCH = 64
#: Upper bound for the batch-size search.
MAX_BATCH = 8_000_000

#: Average pipeline latency is roughly (stages + batch assembly) periods;
#: with the paper's 3-stage pipeline and 1,000 us latency budget this yields
#: the 300 us per-stage interval of Figure 4.
_ASSEMBLY_FRACTION = 0.33


@dataclass(frozen=True)
class FidelityOptions:
    """Fidelity switches separating the planner from the simulator.

    Attributes
    ----------
    kernel_overhead:
        Charge the fixed GPU kernel-launch cost per index-op kernel / task
        kernel.  Both fidelities charge it (the planner microbenchmarks unit
        costs per Section IV-B); the switch exists for ablations.
    interference_iterations:
        Fixed-point iterations for the mutual CPU/GPU slowdown (planner: one
        corrective pass after the initial mu=1 estimate, i.e. Equation 2
        applied once; simulator: iterate to convergence).
    chunked_stealing:
        Quantize work stealing into wavefront-sized chunks with per-chunk
        synchronisation overhead (planner uses continuous Equation 3).
    probe_inflation:
        Multiplier on theoretical cuckoo probe counts representing measured
        effects (bucket fill, signature false positives) the planner's
        theoretical ``(sum i)/n`` misses.
    batch_quantum:
        Batch sizes are rounded down to a multiple of this (the simulator
        schedules whole wavefronts).
    steal_sync_ns:
        Synchronisation cost per stolen chunk (tag-array atomics).
    steal_chunk:
        Queries per stolen chunk (the APU wavefront width, Section III-B3).
    gpu_steal_inefficiency:
        Slowdown of the GPU when acting as the stealing *helper*: stolen
        work arrives in wavefront-sized claims, so the device runs at a
        small fraction of its big-batch rate (partial occupancy, divergent
        fronts).  A CPU helper has no such penalty.
    """

    kernel_overhead: bool
    interference_iterations: int
    chunked_stealing: bool
    probe_inflation: float = 1.0
    batch_quantum: int = 1
    steal_sync_ns: float = 450.0
    steal_chunk: int = 64
    gpu_steal_inefficiency: float = 4.0


#: What DIDO's planner assumes (paper Equations 1-3, idealised parameters).
IDEAL_FIDELITY = FidelityOptions(
    kernel_overhead=True,
    interference_iterations=2,
    chunked_stealing=False,
    probe_inflation=1.10,
    gpu_steal_inefficiency=2.2,
)

#: What the measured system exhibits.
DETAILED_FIDELITY = FidelityOptions(
    kernel_overhead=True,
    interference_iterations=4,
    chunked_stealing=True,
    probe_inflation=1.18,
    batch_quantum=MIN_BATCH,
    gpu_steal_inefficiency=2.2,
)


@dataclass
class StageTime:
    """Computed execution profile of one stage for a batch."""

    stage: StageSpec
    time_ns: float
    memory_accesses: float
    #: GPU index-op kernel times, for the Figure 6 breakdown.
    index_op_times: dict[IndexOp, float] = field(default_factory=dict)
    #: Portion of ``time_ns`` attributable to GPU-eligible tasks (stealable).
    stealable_ns: float = 0.0
    #: Time the *other* processor would need for the stealable portion.
    helper_time_ns: float = math.inf


@dataclass(frozen=True)
class StealPlan:
    """Outcome of applying work stealing to one batch."""

    applied: bool
    bottleneck_stage: int
    helper_stage: int
    stolen_fraction: float
    new_tmax_ns: float


@dataclass(frozen=True)
class PipelineEstimate:
    """Full evaluation of one pipeline configuration on one workload.

    Produced by both the planner and the simulator; ``throughput_mops`` is
    Equation 4's ``S = N / Tmax`` in million operations per second.
    """

    config: PipelineConfig
    batch_size: int
    stage_times_ns: tuple[float, ...]
    tmax_ns: float
    throughput_mops: float
    cpu_utilization: float
    gpu_utilization: float
    mu_cpu: float
    mu_gpu: float
    index_op_times_ns: dict[IndexOp, float]
    steal: StealPlan | None
    latency_ns: float

    @property
    def stage_times_us(self) -> tuple[float, ...]:
        return tuple(t / 1000.0 for t in self.stage_times_ns)


class PipelineAnalyzer:
    """Shared Equation 1-4 engine, parameterised by fidelity.

    Parameters
    ----------
    platform:
        Hardware being modelled.
    fidelity:
        :data:`IDEAL_FIDELITY` for the planner, :data:`DETAILED_FIDELITY`
        for the simulator.
    constants:
        Task calibration constants (shared between fidelities; the paper's
        instruction counting applies to both).
    """

    def __init__(
        self,
        platform: PlatformSpec,
        fidelity: FidelityOptions,
        constants: CalibrationConstants = DEFAULT_CALIBRATION,
    ):
        self.platform = platform
        self.fidelity = fidelity
        self.task_model = TaskModel(constants)
        self.memory = MemorySystem(platform)
        self.interference = InterferenceModel(platform)
        self.pcie = PCIeLink(platform)
        self._template_cache: dict = {}
        self._estimate_cache: dict = {}

    # -------------------------------------------------------------- demands

    def _stage_context(self, stage: StageSpec, profile: WorkloadProfile) -> StageContext:
        proc = self.platform.processor(stage.processor)
        hot = self.memory.hot_fraction(
            stage.processor,
            int(profile.avg_key_size),
            int(profile.avg_value_size),
            profile.zipf_skew,
            measured=profile.measured_hot_fraction,
        )
        return StageContext(
            cache_line_bytes=proc.cache_line_bytes,
            with_kc=Task.KC in stage,
            with_rd=Task.RD in stage,
            rd_feeds_buffer=Task.RD in stage and Task.WR not in stage,
            hot_fraction=hot,
        )

    def stage_demands(
        self, config: PipelineConfig, profile: WorkloadProfile, batch: int
    ) -> list[list[TaskDemand]]:
        """Per-stage task demands for a batch of ``batch`` queries.

        Per-execution costs are batch-independent, so a unit-batch template
        is cached per ``(config, profile)`` and only the counts are scaled —
        the batch-size binary search calls this once per probe.
        """
        template = self._demand_template(config, profile)
        return [
            [replace_count(demand, multiplier * batch) for demand, multiplier in stage]
            for stage in template
        ]

    def _demand_template(
        self, config: PipelineConfig, profile: WorkloadProfile
    ) -> list[list[tuple[TaskDemand, float]]]:
        """Unit-batch demands per stage, derived from the compiled StagePlan.

        The plan (shared with the functional engines) decides which phases a
        stage executes and in what order; this method only attaches costs:
        whole-task phases get :meth:`TaskModel.demand`, index-op phases get
        :meth:`TaskModel.index_demand` scaled by the fraction of queries
        that trigger the operation.
        """
        key = (config, profile)
        cached = self._template_cache.get(key)
        if cached is not None:
            return cached
        plan = compile_stage_plan(config)
        search_buckets = self._search_buckets(config)
        insert_buckets = profile.insert_buckets * self.fidelity.probe_inflation
        multipliers = {
            IndexOp.SEARCH: profile.get_ratio,
            IndexOp.INSERT: profile.set_ratio,
            IndexOp.DELETE: profile.set_ratio,
        }
        per_stage: list[list[tuple[TaskDemand, float]]] = []
        for stage_index, stage in enumerate(config.stages):
            context = self._stage_context(stage, profile)
            demands: list[tuple[TaskDemand, float]] = []
            for phase in plan.stage_phases(stage_index):
                if phase.kind is PhaseKind.INDEX_OP:
                    demand = self.task_model.index_demand(
                        phase.op,
                        1.0,
                        search_buckets=search_buckets,
                        insert_buckets=insert_buckets,
                    )
                    demands.append((demand, multipliers[phase.op]))
                else:
                    demand = self.task_model.demand(
                        phase.task,
                        1,
                        key_size=profile.avg_key_size,
                        value_size=profile.avg_value_size,
                        get_ratio=profile.get_ratio,
                        context=context,
                    )
                    demands.append((demand, demand.count))
            per_stage.append(demands)
        if len(self._template_cache) > 512:
            self._template_cache.clear()
        self._template_cache[key] = per_stage
        return per_stage

    def _search_buckets(self, config: PipelineConfig) -> float:
        """Average buckets per Search/Delete: theoretical (sum i)/n for two
        hash functions, inflated per fidelity."""
        theoretical = 1.5
        return theoretical * self.fidelity.probe_inflation

    # ---------------------------------------------------------- stage times

    def _stage_time(
        self,
        stage: StageSpec,
        demands: list[TaskDemand],
        mu_cpu: float,
        mu_gpu: float,
        batch: int,
    ) -> StageTime:
        proc = self.platform.processor(stage.processor)
        mu = mu_cpu if stage.processor is ProcessorKind.CPU else mu_gpu
        total_ns = 0.0
        accesses = 0.0
        stealable_ns = 0.0
        index_times: dict[IndexOp, float] = {}
        for demand in demands:
            count = int(round(demand.count))
            if count <= 0:
                if demand.op is not None:
                    index_times[demand.op] = 0.0
                continue
            if stage.processor is ProcessorKind.CPU:
                time_ns = cpu_task_time_ns(
                    proc,
                    count,
                    demand.instructions,
                    demand.pattern,
                    cores=stage.cores,
                    interference=mu,
                )
            else:
                time_ns = gpu_task_time_ns(
                    _without_launch(proc) if not self.fidelity.kernel_overhead else proc,
                    count,
                    demand.instructions,
                    demand.pattern,
                    interference=mu,
                    atomic=demand.atomic,
                )
                time_ns += self._pcie_time(demand, count)
            total_ns += time_ns
            accesses += demand.total_memory_accesses
            if demand.task in GPU_ELIGIBLE_TASKS or demand.task is Task.IN:
                stealable_ns += time_ns
            if demand.op is not None:
                index_times[demand.op] = time_ns
        return StageTime(
            stage=stage,
            time_ns=total_ns,
            memory_accesses=accesses,
            index_op_times=index_times,
            stealable_ns=stealable_ns,
        )

    def _pcie_time(self, demand: TaskDemand, count: int) -> float:
        """PCIe round trip for shipping one kernel's jobs (discrete only)."""
        if self.pcie.coupled:
            return 0.0
        return self.pcie.round_trip_ns(
            count * _PCIE_JOB_IN_BYTES, count * _PCIE_JOB_OUT_BYTES
        )

    def _helper_time(
        self,
        stage: StageSpec,
        demands: list[TaskDemand],
        helper: ProcessorKind,
        helper_cores: int,
        mu_cpu: float,
        mu_gpu: float,
    ) -> float:
        """Time the helper processor would need for the stage's stealable work.

        Only GPU-eligible tasks can move: a CPU helper can execute anything,
        but a GPU helper can only take IN/KC/RD work.
        """
        proc = self.platform.processor(helper)
        mu = mu_cpu if helper is ProcessorKind.CPU else mu_gpu
        total = 0.0
        any_work = False
        for demand in demands:
            stealable = demand.task in GPU_ELIGIBLE_TASKS or demand.task is Task.IN
            if not stealable:
                continue
            count = int(round(demand.count))
            if count <= 0:
                continue
            any_work = True
            if helper is ProcessorKind.CPU:
                total += cpu_task_time_ns(
                    proc, count, demand.instructions, demand.pattern,
                    cores=helper_cores, interference=mu,
                )
            else:
                total += (
                    gpu_task_time_ns(
                        _without_launch(proc) if not self.fidelity.kernel_overhead else proc,
                        count,
                        demand.instructions,
                        demand.pattern,
                        interference=mu,
                        atomic=demand.atomic,
                    )
                    * self.fidelity.gpu_steal_inefficiency
                )
        return total if any_work else math.inf

    # ---------------------------------------------------------- full batch

    def evaluate_batch(
        self, config: PipelineConfig, profile: WorkloadProfile, batch: int
    ) -> tuple[list[StageTime], float, float, StealPlan | None]:
        """Stage times, interference factors and steal plan for one batch size."""
        demands = self.stage_demands(config, profile, batch)
        mu_cpu = mu_gpu = 1.0
        stage_times: list[StageTime] = []
        for _ in range(max(1, self.fidelity.interference_iterations)):
            stage_times = [
                self._stage_time(stage, stage_demands, mu_cpu, mu_gpu, batch)
                for stage, stage_demands in zip(config.stages, demands)
            ]
            tmax = max(st.time_ns for st in stage_times)
            if tmax <= 0:
                break
            cpu_rate, gpu_rate = self._access_rates(stage_times, tmax)
            mu_cpu = self.interference.mu(ProcessorKind.CPU, cpu_rate, gpu_rate)
            mu_gpu = self.interference.mu(ProcessorKind.GPU, cpu_rate, gpu_rate)
        steal = None
        if config.work_stealing:
            steal = self._plan_steal(config, demands, stage_times, mu_cpu, mu_gpu, batch)
        return stage_times, mu_cpu, mu_gpu, steal

    def _access_rates(self, stage_times: list[StageTime], tmax: float) -> tuple[float, float]:
        """(CPU, GPU) random-access rates in accesses/second over the period."""
        cpu = sum(
            st.memory_accesses
            for st in stage_times
            if st.stage.processor is ProcessorKind.CPU
        )
        gpu = sum(
            st.memory_accesses
            for st in stage_times
            if st.stage.processor is ProcessorKind.GPU
        )
        seconds = tmax * 1e-9
        return cpu / seconds, gpu / seconds

    def _plan_steal(
        self,
        config: PipelineConfig,
        demands: list[list[TaskDemand]],
        stage_times: list[StageTime],
        mu_cpu: float,
        mu_gpu: float,
        batch: int,
    ) -> StealPlan | None:
        """Work stealing between the bottleneck stage and the most idle
        other-processor stage (Equation 3, generalised to partially
        stealable stages and optionally chunk-quantized)."""
        if len(stage_times) < 2:
            return None
        times = [st.time_ns for st in stage_times]
        bottleneck = max(range(len(times)), key=times.__getitem__)
        owner_proc = stage_times[bottleneck].stage.processor
        candidates = [
            i
            for i, st in enumerate(stage_times)
            if st.stage.processor is not owner_proc
        ]
        if not candidates:
            return None
        helper_idx = min(candidates, key=times.__getitem__)
        helper_stage = stage_times[helper_idx].stage
        helper_proc = helper_stage.processor
        t_own_total = times[bottleneck]
        t_helper_own = times[helper_idx]
        if t_helper_own >= t_own_total:
            return None
        stealable = stage_times[bottleneck].stealable_ns
        fixed = t_own_total - stealable
        if stealable <= 0:
            return None
        helper_cores = helper_stage.cores if helper_proc is ProcessorKind.CPU else 0
        t_helper_for_work = self._helper_time(
            stage_times[bottleneck].stage,
            demands[bottleneck],
            helper_proc,
            helper_cores,
            mu_cpu,
            mu_gpu,
        )
        if not math.isfinite(t_helper_for_work) or t_helper_for_work <= 0:
            return None
        # Generalised Equation 3 (reduces exactly to the paper's form when
        # the whole stage is stealable): owner processes fixed work plus a
        # (1-s) share of stealable work; helper joins after its own stage.
        t_new = (
            t_helper_own * stealable + t_helper_for_work * (fixed + stealable)
        ) / (stealable + t_helper_for_work)
        t_new = max(t_new, fixed, t_helper_own)
        if self.fidelity.chunked_stealing:
            t_new = self._quantize_steal(
                t_new, t_own_total, stealable, t_helper_for_work, batch
            )
        # Stealing cannot push the period below the other stages' times.
        others = max(
            (t for i, t in enumerate(times) if i != bottleneck), default=0.0
        )
        t_new = max(t_new, others)
        if t_new >= t_own_total:
            return None
        stolen_fraction = min(1.0, max(0.0, (t_own_total - t_new) / max(stealable, 1e-9)))
        return StealPlan(
            applied=True,
            bottleneck_stage=bottleneck,
            helper_stage=helper_idx,
            stolen_fraction=stolen_fraction,
            new_tmax_ns=t_new,
        )

    def _quantize_steal(
        self,
        t_new: float,
        t_own_total: float,
        stealable: float,
        t_helper_for_work: float,
        batch: int,
    ) -> float:
        """Degrade the continuous steal estimate for chunk effects.

        The helper claims wavefront-sized (64-query) chunks through the tag
        array; each claim pays a synchronisation cost, and on average half a
        chunk of work straggles past the continuous finish time.
        """
        stolen_time = max(0.0, t_own_total - t_new)
        if stolen_time <= 0 or batch <= 0:
            return t_new
        fraction = stolen_time / max(stealable, 1e-9)
        total_chunks = max(1.0, batch / self.fidelity.steal_chunk)
        helper_chunks = fraction * total_chunks
        # Helper's serial time per chunk (its whole-work time split evenly).
        chunk_time = t_helper_for_work / total_chunks
        overhead = helper_chunks * self.fidelity.steal_sync_ns
        straggle = 0.5 * chunk_time
        return t_new + overhead + straggle

    # ------------------------------------------------------------- sizing

    def interval_ns(self, config: PipelineConfig, latency_budget_ns: float) -> float:
        """Per-stage scheduling interval ``I`` for a latency budget."""
        return latency_budget_ns / (config.num_stages + _ASSEMBLY_FRACTION)

    def estimate(
        self,
        config: PipelineConfig,
        profile: WorkloadProfile,
        latency_budget_ns: float = 1_000_000.0,
    ) -> PipelineEstimate:
        """Evaluate a configuration: pick the batch size and compute Eq. 4.

        Finds the largest batch ``N`` whose slowest stage stays within the
        interval ``I`` (the paper's periodical scheduling), then reports
        ``S = N / Tmax``.  The analyzer is deterministic, so results are
        memoised per ``(config, profile, budget)`` — time-stepped dynamic
        simulations re-evaluate the same operating points constantly.
        """
        cache_key = (config, profile, latency_budget_ns)
        cached = self._estimate_cache.get(cache_key)
        if cached is not None:
            return cached
        interval = self.interval_ns(config, latency_budget_ns)
        batch = self._max_batch_within(config, profile, interval)
        stage_times, mu_cpu, mu_gpu, steal = self.evaluate_batch(config, profile, batch)
        times = [st.time_ns for st in stage_times]
        tmax = max(times)
        if steal is not None and steal.new_tmax_ns < tmax:
            tmax = steal.new_tmax_ns
        throughput = batch / tmax * 1000.0  # queries/ns -> MOPS
        cpu_util, gpu_util = self._utilizations(config, stage_times, tmax, steal)
        estimate = PipelineEstimate(
            config=config,
            batch_size=batch,
            stage_times_ns=tuple(times),
            tmax_ns=tmax,
            throughput_mops=throughput,
            cpu_utilization=cpu_util,
            gpu_utilization=gpu_util,
            mu_cpu=mu_cpu,
            mu_gpu=mu_gpu,
            index_op_times_ns=self._collect_index_times(stage_times),
            steal=steal,
            latency_ns=tmax * (config.num_stages + _ASSEMBLY_FRACTION),
        )
        if len(self._estimate_cache) > 4096:
            self._estimate_cache.clear()
        self._estimate_cache[cache_key] = estimate
        return estimate

    def _tmax_for_batch(
        self, config: PipelineConfig, profile: WorkloadProfile, batch: int
    ) -> float:
        stage_times, _, _, steal = self.evaluate_batch(config, profile, batch)
        tmax = max(st.time_ns for st in stage_times)
        if steal is not None and steal.new_tmax_ns < tmax:
            tmax = steal.new_tmax_ns
        return tmax

    def _max_batch_within(
        self, config: PipelineConfig, profile: WorkloadProfile, interval_ns: float
    ) -> int:
        """Largest batch whose Tmax fits in the interval (binary search)."""
        quantum = self.fidelity.batch_quantum
        lo = MIN_BATCH
        if self._tmax_for_batch(config, profile, lo) > interval_ns:
            return lo
        hi = lo
        while hi < MAX_BATCH and self._tmax_for_batch(config, profile, hi * 2) <= interval_ns:
            hi *= 2
        hi = min(hi * 2, MAX_BATCH)
        while hi - lo > max(quantum, 1):
            mid = (lo + hi) // 2
            if self._tmax_for_batch(config, profile, mid) <= interval_ns:
                lo = mid
            else:
                hi = mid
        return (lo // quantum) * quantum if quantum > 1 else lo

    def _utilizations(
        self,
        config: PipelineConfig,
        stage_times: list[StageTime],
        tmax: float,
        steal: StealPlan | None,
    ) -> tuple[float, float]:
        """(CPU, GPU) utilisation over one period of length ``tmax``."""
        total_cores = self.platform.cpu.cores
        cpu_busy_core_ns = 0.0
        gpu_busy_ns = 0.0
        for st in stage_times:
            if st.stage.processor is ProcessorKind.CPU:
                cpu_busy_core_ns += st.time_ns * st.stage.cores
            else:
                gpu_busy_ns += st.time_ns
        if steal is not None and steal.applied:
            bottleneck = stage_times[steal.bottleneck_stage]
            helper = stage_times[steal.helper_stage]
            stolen_ns = steal.stolen_fraction * bottleneck.stealable_ns
            if bottleneck.stage.processor is ProcessorKind.CPU:
                cpu_busy_core_ns -= stolen_ns * bottleneck.stage.cores
                gpu_busy_ns += tmax - helper.time_ns  # helper busy to the end
            else:
                gpu_busy_ns -= stolen_ns
                cpu_busy_core_ns += (tmax - helper.time_ns) * helper.stage.cores
        cpu_util = min(1.0, cpu_busy_core_ns / (total_cores * tmax)) if tmax > 0 else 0.0
        gpu_util = min(1.0, gpu_busy_ns / tmax) if tmax > 0 else 0.0
        return cpu_util, gpu_util

    @staticmethod
    def _collect_index_times(stage_times: list[StageTime]) -> dict[IndexOp, float]:
        out: dict[IndexOp, float] = {}
        for st in stage_times:
            out.update(st.index_op_times)
        return out


class CostModel(PipelineAnalyzer):
    """DIDO's planner: the analyzer locked to :data:`IDEAL_FIDELITY`.

    This is the component the adaptation controller queries; its estimates
    deliberately omit the second-order effects the detailed simulator
    models, reproducing the paper's measured prediction error.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        constants: CalibrationConstants = DEFAULT_CALIBRATION,
    ):
        super().__init__(platform, IDEAL_FIDELITY, constants)


def replace_count(demand: TaskDemand, count: float) -> TaskDemand:
    """Copy of a demand with a scaled execution count (template expansion)."""
    return TaskDemand(
        task=demand.task,
        count=count,
        instructions=demand.instructions,
        pattern=demand.pattern,
        atomic=demand.atomic,
        op=demand.op,
    )


def _without_launch(proc):
    """GPU spec copy with zero kernel-launch overhead (planner fidelity)."""
    from dataclasses import replace

    if proc.kernel_launch_ns == 0.0:
        return proc
    return replace(proc, kernel_launch_ns=0.0)
