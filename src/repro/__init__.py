"""repro — a full reproduction of DIDO (ICDE 2017).

DIDO is an in-memory key-value store with *dynamic pipeline execution* on
coupled CPU-GPU architectures (Zhang, Hu, He, Hua — ICDE 2017).  This
package implements the complete system in Python: the KV store substrate
(cuckoo index, slab heap, wire protocol), a calibrated analytical model of
the AMD A10-7850K APU (and the discrete Mega-KV testbed for comparison),
the eight-task pipeline engine, the workload profiler, the APU-aware cost
model, exhaustive configuration search, work stealing, and the adaptation
controller — plus the Mega-KV static-pipeline baseline and the YCSB-style
workload generators the paper evaluates with.

Quickstart::

    from repro import DidoSystem, standard_workload, QueryStream

    system = DidoSystem(memory_bytes=64 << 20, expected_objects=50_000)
    spec = standard_workload("K16-G95-S")
    stream = QueryStream(spec, num_keys=10_000, seed=7)
    result = system.process(stream.next_batch(2048))
    print(system.report())

See DESIGN.md for the module map and EXPERIMENTS.md for the paper-figure
reproduction results.
"""

from repro.analysis.latency import LatencyProfile, latency_profile
from repro.client import DidoClient
from repro.cluster.fleet import KVCluster
from repro.cluster.ring import HashRing
from repro.core.config_search import ConfigurationSearch, best_config_for, enumerate_configs
from repro.core.controller import AdaptationController
from repro.core.cost_model import CostModel, PipelineEstimate
from repro.core.dido import DidoSystem, SystemReport
from repro.core.profiler import WorkloadProfile, WorkloadProfiler
from repro.core.tasks import IndexOp, Task
from repro.engine import (
    ENGINE_NAMES,
    BatchPlane,
    ReferenceEngine,
    SerialEngine,
    StagePlan,
    StealingEngine,
    compile_stage_plan,
    resolve_engine,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    SimulationError,
    TelemetryError,
    WorkloadError,
)
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV, PlatformSpec
from repro.kv.protocol import Query, QueryType, Response, ResponseStatus
from repro.kv.store import KVStore
from repro.pipeline.executor import PipelineExecutor, PipelineMeasurement
from repro.pipeline.functional import FunctionalPipeline
from repro.pipeline.megakv import megakv_coupled_config, megakv_discrete_config
from repro.pipeline.memcachedgpu import measure_memcachedgpu
from repro.server import DidoUDPServer
from repro.pipeline.partition import PipelineConfig, StageSpec
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    Telemetry,
    TraceEvent,
    configure as configure_telemetry,
    get_telemetry,
)
from repro.workloads.trace import read_trace, replay_trace, summarize_trace, write_trace
from repro.workloads.ycsb import (
    STANDARD_WORKLOADS,
    QueryStream,
    WorkloadSpec,
    standard_workload,
)

__version__ = "1.0.0"

__all__ = [
    "APU_A10_7850K",
    "DidoClient",
    "DidoUDPServer",
    "HashRing",
    "KVCluster",
    "LatencyProfile",
    "latency_profile",
    "measure_memcachedgpu",
    "read_trace",
    "replay_trace",
    "summarize_trace",
    "write_trace",
    "AdaptationController",
    "BatchPlane",
    "CapacityError",
    "ConfigurationError",
    "ConfigurationSearch",
    "CostModel",
    "DISCRETE_MEGAKV",
    "DidoSystem",
    "ENGINE_NAMES",
    "FunctionalPipeline",
    "IndexOp",
    "KVStore",
    "ReferenceEngine",
    "SerialEngine",
    "StagePlan",
    "StealingEngine",
    "PipelineConfig",
    "PipelineEstimate",
    "PipelineExecutor",
    "PipelineMeasurement",
    "PlatformSpec",
    "ProtocolError",
    "Query",
    "QueryStream",
    "QueryType",
    "ReproError",
    "Response",
    "ResponseStatus",
    "STANDARD_WORKLOADS",
    "EventLog",
    "MetricsRegistry",
    "SimulationError",
    "StageSpec",
    "SystemReport",
    "Task",
    "Telemetry",
    "TelemetryError",
    "TraceEvent",
    "configure_telemetry",
    "get_telemetry",
    "WorkloadError",
    "WorkloadProfile",
    "WorkloadProfiler",
    "WorkloadSpec",
    "best_config_for",
    "compile_stage_plan",
    "enumerate_configs",
    "resolve_engine",
    "megakv_coupled_config",
    "megakv_discrete_config",
    "standard_workload",
]
