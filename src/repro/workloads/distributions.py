"""Key-popularity distributions: uniform and Zipf.

The paper's skewed workloads follow a Zipf distribution of skewness 0.99
(the YCSB default).  Besides sampling, the Zipf class exposes the analytic
cumulative frequency used by the cost model's hot-set factor ``P`` and the
true skewness value the profiler's estimator is tested against.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro.errors import WorkloadError

#: Rank cutoff between the exact head sum and the integral tail in the
#: hybrid harmonic-mass evaluation (and the exactly-sampled head of
#: :class:`ZipfKeys`).
_ZIPF_HEAD = 4096


@lru_cache(maxsize=4096)
def zipf_harmonic_mass(k: int, skew: float) -> float:
    """Generalised harmonic number ``H_{k, skew}`` (hybrid exact/integral).

    Exact over the top ``_ZIPF_HEAD`` ranks, Euler-integral beyond — the
    same split the sampler uses, so sampled and analytic masses agree.
    Cached because every :class:`ZipfKeys` construction and every
    :meth:`ZipfKeys.top_fraction` call needs these sums, and benchmark
    sweeps construct many distributions over the same (num_keys, skew)
    grid.
    """
    head = min(k, _ZIPF_HEAD)
    exact = float(np.sum(np.arange(1, head + 1, dtype=np.float64) ** -skew))
    if k <= head:
        return exact
    if abs(skew - 1.0) < 1e-9:
        return exact + float(np.log(k / head))
    return exact + (k ** (1 - skew) - head ** (1 - skew)) / (1 - skew)


class KeyDistribution(abc.ABC):
    """A popularity distribution over key ranks ``0 .. num_keys - 1``.

    Rank 0 is the most popular key.  Implementations must be deterministic
    given a seed so experiments are reproducible.
    """

    def __init__(self, num_keys: int, seed: int = 0):
        if num_keys <= 0:
            raise WorkloadError("num_keys must be positive")
        self.num_keys = num_keys
        self._rng = np.random.default_rng(seed)

    @property
    @abc.abstractmethod
    def skewness(self) -> float:
        """The Zipf exponent (0 for uniform)."""

    @abc.abstractmethod
    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` key ranks."""

    @abc.abstractmethod
    def top_fraction(self, top_keys: int) -> float:
        """Cumulative access probability of the ``top_keys`` most popular keys."""


class UniformKeys(KeyDistribution):
    """Every key equally likely (the paper's 'U' workloads)."""

    @property
    def skewness(self) -> float:
        return 0.0

    def sample(self, count: int) -> np.ndarray:
        return self._rng.integers(0, self.num_keys, size=count, dtype=np.int64)

    def top_fraction(self, top_keys: int) -> float:
        return min(1.0, max(0, top_keys) / self.num_keys)


class ZipfKeys(KeyDistribution):
    """Zipf-distributed popularity (the paper's 'S' workloads, skew 0.99).

    Sampling uses inverse-CDF over the exact rank probabilities for small
    key spaces and a two-part rejection-free approximation for large ones:
    the head (top ``_HEAD`` ranks) is sampled exactly, the tail via a
    continuous power-law inverse CDF — accurate to well under the profiler's
    10 % re-plan threshold.
    """

    _HEAD = _ZIPF_HEAD

    def __init__(self, num_keys: int, skew: float = 0.99, seed: int = 0):
        if skew <= 0:
            raise WorkloadError("Zipf skew must be positive; use UniformKeys for 0")
        super().__init__(num_keys, seed)
        self._skew = skew
        head = min(num_keys, self._HEAD)
        ranks = np.arange(1, head + 1, dtype=np.float64)
        head_weights = ranks**-skew
        self._head_count = head
        total = self._total_weight()
        self._head_mass = float(head_weights.sum()) / total
        self._head_cdf = np.cumsum(head_weights) / head_weights.sum()
        self._total = total

    @property
    def skewness(self) -> float:
        return self._skew

    def _total_weight(self) -> float:
        """Generalised harmonic number H_{n, skew} (cached module-level)."""
        return zipf_harmonic_mass(self.num_keys, self._skew)

    def sample(self, count: int) -> np.ndarray:
        uniforms = self._rng.random(count)
        out = np.empty(count, dtype=np.int64)
        in_head = uniforms < self._head_mass
        if in_head.any():
            u_head = uniforms[in_head] / self._head_mass
            out[in_head] = np.searchsorted(self._head_cdf, u_head, side="right")
        in_tail = ~in_head
        if in_tail.any():
            if self.num_keys <= self._head_count:
                # No tail exists; fold the residual mass back onto the head.
                out[in_tail] = self._head_count - 1
            else:
                u = (uniforms[in_tail] - self._head_mass) / max(1e-12, 1 - self._head_mass)
                out[in_tail] = self._tail_inverse_cdf(u)
        return np.clip(out, 0, self.num_keys - 1)

    def _tail_inverse_cdf(self, u: np.ndarray) -> np.ndarray:
        """Inverse CDF of the continuous power-law on [head, num_keys]."""
        a, b, s = float(self._head_count), float(self.num_keys), self._skew
        if abs(s - 1.0) < 1e-9:
            ranks = a * (b / a) ** u
        else:
            p = 1 - s
            ranks = (a**p + u * (b**p - a**p)) ** (1 / p)
        return ranks.astype(np.int64)

    def top_fraction(self, top_keys: int) -> float:
        k = min(max(0, top_keys), self.num_keys)
        if k == 0:
            return 0.0
        # k <= num_keys, so min(k, _HEAD) inside the shared mass function
        # matches the old min(k, head_count) cutoff exactly.
        return min(1.0, zipf_harmonic_mass(k, self._skew) / self._total)


def make_distribution(num_keys: int, skew: float, seed: int = 0) -> KeyDistribution:
    """Factory: ``skew == 0`` gives uniform, otherwise Zipf of that exponent."""
    if skew == 0.0:
        return UniformKeys(num_keys, seed=seed)
    return ZipfKeys(num_keys, skew=skew, seed=seed)
