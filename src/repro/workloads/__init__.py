"""Workload generators reproducing the paper's benchmark (Section V-A).

The paper's benchmark is a YCSB-style generator extended with configurable
key/value sizes: four datasets (K8/K16/K32/K128), two key distributions
(uniform, Zipf 0.99), and three GET ratios (100/95/50 %), giving the 24
standard workloads.  This package also provides Facebook-style USR/ETC
approximations (motivating diverse workloads) and alternating generators for
the dynamic-adaptation experiments (Figures 20–21).
"""

from repro.workloads.datasets import (
    DATASETS,
    K8,
    K16,
    K32,
    K128,
    Dataset,
    dataset_by_name,
)
from repro.workloads.distributions import KeyDistribution, UniformKeys, ZipfKeys
from repro.workloads.dynamic import AlternatingWorkload, WorkloadPhase
from repro.workloads.facebook import FACEBOOK_ETC, FACEBOOK_USR, FacebookWorkload
from repro.workloads.ycsb import (
    STANDARD_WORKLOADS,
    QueryStream,
    WorkloadSpec,
    standard_workload,
    workload_label,
)

__all__ = [
    "AlternatingWorkload",
    "DATASETS",
    "Dataset",
    "FACEBOOK_ETC",
    "FACEBOOK_USR",
    "FacebookWorkload",
    "K128",
    "K16",
    "K32",
    "K8",
    "KeyDistribution",
    "QueryStream",
    "STANDARD_WORKLOADS",
    "UniformKeys",
    "WorkloadPhase",
    "WorkloadSpec",
    "ZipfKeys",
    "dataset_by_name",
    "standard_workload",
    "workload_label",
]
