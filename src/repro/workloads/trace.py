"""Query-trace recording and replay.

Production IMKV studies (the Facebook analysis the paper builds its
motivation on) work from captured traces.  This module gives the library
the same facility: write any query stream to a compact binary trace file,
read it back, replay it against a system, and summarise its workload
characteristics (the same statistics the online profiler estimates).

Format: a 16-byte header (magic, version, query count) followed by the
queries in the package's wire encoding (:mod:`repro.kv.protocol`), so a
trace file is literally a concatenation of protocol messages and stays
readable by any implementation of the protocol.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ProtocolError, WorkloadError
from repro.kv.protocol import Query, QueryType, decode_queries, encode_queries

_MAGIC = b"DIDOTRC1"
_HEADER = struct.Struct("<8sQ")


def write_trace(path: str | Path, queries: Iterable[Query]) -> int:
    """Write queries to ``path``; returns the number written."""
    buffered = list(queries)
    payload = encode_queries(buffered)
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, len(buffered)))
        fh.write(payload)
    return len(buffered)


def read_trace(path: str | Path) -> list[Query]:
    """Read a whole trace back (see :func:`iter_trace` for streaming)."""
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ProtocolError(f"{path}: truncated trace header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ProtocolError(f"{path}: not a DIDO trace (magic {magic!r})")
        queries = decode_queries(fh.read())
    if len(queries) != count:
        raise ProtocolError(
            f"{path}: header promises {count} queries, found {len(queries)}"
        )
    return queries


def iter_trace(path: str | Path, batch_size: int = 4096) -> Iterator[list[Query]]:
    """Yield a trace in batches of ``batch_size`` (replay-friendly)."""
    if batch_size <= 0:
        raise WorkloadError("batch_size must be positive")
    queries = read_trace(path)
    for start in range(0, len(queries), batch_size):
        yield queries[start : start + batch_size]


@dataclass(frozen=True)
class TraceSummary:
    """Offline workload characteristics of a trace (profiler ground truth)."""

    queries: int
    get_ratio: float
    avg_key_size: float
    avg_value_size: float
    distinct_keys: int

    @property
    def set_ratio(self) -> float:
        return 1.0 - self.get_ratio


def summarize_trace(queries: list[Query]) -> TraceSummary:
    """Compute a :class:`TraceSummary` from in-memory queries."""
    if not queries:
        raise WorkloadError("cannot summarise an empty trace")
    gets = sum(1 for q in queries if q.qtype is QueryType.GET)
    key_bytes = sum(len(q.key) for q in queries)
    value_sizes = [len(q.value) for q in queries if q.qtype is QueryType.SET]
    return TraceSummary(
        queries=len(queries),
        get_ratio=gets / len(queries),
        avg_key_size=key_bytes / len(queries),
        avg_value_size=(sum(value_sizes) / len(value_sizes)) if value_sizes else 0.0,
        distinct_keys=len({q.key for q in queries}),
    )


def replay_trace(path: str | Path, system, batch_size: int = 4096) -> int:
    """Replay a trace file through a :class:`~repro.core.dido.DidoSystem`.

    Returns the number of queries processed; the system's profiler and
    controller react exactly as they would to live traffic.
    """
    total = 0
    for batch in iter_trace(path, batch_size):
        system.process(batch)
        total += len(batch)
    return total
