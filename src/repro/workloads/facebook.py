"""Facebook-style Memcached workload approximations (USR, ETC).

The paper's motivation (Section II-C1) cites the Facebook workload analysis
[Atikoglu et al., SIGMETRICS 2012]: GET ratios ranging from 18 % to 99 %,
value sizes from a couple of bytes to tens of kilobytes, and highly variable
key popularity.  These classes approximate two of the published traces so
examples and tests can exercise DIDO on "production-shaped" traffic:

* **USR** — user-account status: tiny (2 B) values, ~99 % GET;
* **ETC** — general cache tier: widely spread value sizes (modelled as a
  discrete mixture straddling 1,000 B, per the paper's description that the
  counts below and above 1 kB are comparable), ~95 % GET.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.kv.protocol import Query, QueryType
from repro.workloads.distributions import make_distribution


@dataclass(frozen=True)
class FacebookWorkload:
    """A size-mixture workload with a fixed GET ratio and Zipf popularity.

    ``value_sizes``/``value_weights`` define a discrete value-size mixture;
    keys are 16 B with an 8 B rank prefix.
    """

    name: str
    get_ratio: float
    value_sizes: tuple[int, ...]
    value_weights: tuple[float, ...]
    zipf_skew: float = 0.99
    key_size: int = 16

    def __post_init__(self) -> None:
        if len(self.value_sizes) != len(self.value_weights):
            raise WorkloadError("value_sizes and value_weights must align")
        if abs(sum(self.value_weights) - 1.0) > 1e-9:
            raise WorkloadError("value_weights must sum to 1")
        if not 0.0 <= self.get_ratio <= 1.0:
            raise WorkloadError("get_ratio must be within [0, 1]")

    @property
    def mean_value_size(self) -> float:
        return sum(s * w for s, w in zip(self.value_sizes, self.value_weights))


FACEBOOK_USR = FacebookWorkload(
    name="USR",
    get_ratio=0.99,
    value_sizes=(2,),
    value_weights=(1.0,),
)

FACEBOOK_ETC = FacebookWorkload(
    name="ETC",
    get_ratio=0.95,
    value_sizes=(64, 256, 768, 2048, 8192),
    value_weights=(0.30, 0.15, 0.15, 0.30, 0.10),
)


class FacebookQueryStream:
    """Batch generator for a :class:`FacebookWorkload`."""

    def __init__(self, workload: FacebookWorkload, num_keys: int, seed: int = 0):
        if num_keys <= 0:
            raise WorkloadError("num_keys must be positive")
        self.workload = workload
        self.num_keys = num_keys
        self._distribution = make_distribution(num_keys, workload.zipf_skew, seed=seed)
        self._rng = np.random.default_rng(seed ^ 0xFACEB)
        # Per-rank value size is fixed (an object has one size), drawn once.
        self._size_choices = np.asarray(workload.value_sizes)
        self._size_cdf = np.cumsum(workload.value_weights)

    def _value_size_for_rank(self, rank: int) -> int:
        """Deterministic per-rank size draw from the mixture."""
        u = ((rank * 2654435761) & 0xFFFFFFFF) / 2**32
        idx = int(np.searchsorted(self._size_cdf, u, side="right"))
        return int(self._size_choices[min(idx, len(self._size_choices) - 1)])

    def _key(self, rank: int) -> bytes:
        prefix = int(rank).to_bytes(8, "little")
        return prefix + b"f" * (self.workload.key_size - 8)

    def _value(self, rank: int) -> bytes:
        size = self._value_size_for_rank(rank)
        pattern = int(rank).to_bytes(8, "little")
        reps = -(-size // 8)
        return (pattern * reps)[:size]

    def next_batch(self, count: int) -> list[Query]:
        """Generate ``count`` queries following the trace's mix."""
        ranks = self._distribution.sample(count)
        is_get = self._rng.random(count) < self.workload.get_ratio
        queries: list[Query] = []
        for rank, get in zip(ranks.tolist(), is_get.tolist()):
            if get:
                queries.append(Query(QueryType.GET, self._key(rank)))
            else:
                queries.append(Query(QueryType.SET, self._key(rank), self._value(rank)))
        return queries

    def average_sizes(self, sample: int = 4096) -> tuple[float, float]:
        """(avg key size, avg value size) over a popularity-weighted sample."""
        ranks = self._distribution.sample(sample)
        sizes = [self._value_size_for_rank(r) for r in ranks.tolist()]
        return float(self.workload.key_size), float(np.mean(sizes))
