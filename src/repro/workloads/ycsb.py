"""YCSB-style workload specifications and query-stream generation.

A :class:`WorkloadSpec` names a dataset, a GET ratio, and a key
distribution, matching the paper's ``K<size>-G<getpct>-<U|S>`` notation; the
24 combinations of {K8,K16,K32,K128} x {100,95,50} x {U,S} form
``STANDARD_WORKLOADS``.  GET ratios map onto YCSB workloads C (100 %),
B (95 %) and A (50 %).

:class:`QueryStream` turns a spec into batches of :class:`~repro.kv.protocol.Query`
objects, drawing key ranks from the distribution; SETs write the rank's
deterministic value so later GETs can be verified byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.kv.protocol import Query, QueryType
from repro.workloads.datasets import DATASETS, Dataset, dataset_by_name
from repro.workloads.distributions import KeyDistribution, make_distribution

#: Zipf exponent of the paper's skewed workloads (YCSB default).
SKEWED_ZIPF = 0.99


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload: dataset x GET ratio x key distribution.

    ``get_ratio`` is a fraction in [0, 1]; non-GET queries are SETs (the
    paper's mixes contain no client-issued DELETEs — deletes arise from
    eviction).
    """

    dataset: Dataset
    get_ratio: float
    zipf_skew: float  # 0.0 = uniform, 0.99 = the paper's skewed setting

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_ratio <= 1.0:
            raise WorkloadError("get_ratio must be within [0, 1]")
        if self.zipf_skew < 0.0:
            raise WorkloadError("zipf_skew must be non-negative")

    @property
    def set_ratio(self) -> float:
        return 1.0 - self.get_ratio

    @property
    def skewed(self) -> bool:
        return self.zipf_skew > 0.0

    @property
    def label(self) -> str:
        """Paper notation, e.g. ``K32-G95-U``."""
        pct = round(self.get_ratio * 100)
        dist = "S" if self.skewed else "U"
        return f"{self.dataset.name}-G{pct}-{dist}"


def workload_label(spec: WorkloadSpec) -> str:
    """Free-function alias for :attr:`WorkloadSpec.label` (reporting helper)."""
    return spec.label


def standard_workload(label: str) -> WorkloadSpec:
    """Parse a paper-style label like ``"K16-G95-S"`` into a spec."""
    try:
        dataset_name, get_part, dist_part = label.strip().split("-")
        dataset = dataset_by_name(dataset_name)
        if not get_part.upper().startswith("G"):
            raise ValueError
        get_ratio = int(get_part[1:]) / 100.0
        skew = {"U": 0.0, "S": SKEWED_ZIPF}[dist_part.upper()]
    except (ValueError, KeyError):
        raise WorkloadError(f"malformed workload label {label!r}") from None
    return WorkloadSpec(dataset=dataset, get_ratio=get_ratio, zipf_skew=skew)


def _standard_grid() -> tuple[WorkloadSpec, ...]:
    specs = []
    for dataset in DATASETS:
        for get_pct in (100, 95, 50):
            for skew in (0.0, SKEWED_ZIPF):
                specs.append(WorkloadSpec(dataset, get_pct / 100.0, skew))
    return tuple(specs)


#: The paper's 24 evaluation workloads (Section V-A).
STANDARD_WORKLOADS: tuple[WorkloadSpec, ...] = _standard_grid()


class QueryStream:
    """Deterministic batch generator for one workload spec.

    Parameters
    ----------
    spec:
        The workload to generate.
    num_keys:
        Size of the key space (usually the store's object capacity).
    seed:
        RNG seed; identical seeds yield identical streams.
    """

    def __init__(self, spec: WorkloadSpec, num_keys: int, seed: int = 0):
        if num_keys <= 0:
            raise WorkloadError("num_keys must be positive")
        self.spec = spec
        self.num_keys = num_keys
        self._distribution: KeyDistribution = make_distribution(
            num_keys, spec.zipf_skew, seed=seed
        )
        self._rng = np.random.default_rng(seed ^ 0x5EED)

    @property
    def distribution(self) -> KeyDistribution:
        return self._distribution

    def next_batch(self, count: int) -> list[Query]:
        """Generate ``count`` queries with the spec's GET/SET mix."""
        if count <= 0:
            return []
        ranks = self._distribution.sample(count)
        is_get = self._rng.random(count) < self.spec.get_ratio
        dataset = self.spec.dataset
        queries: list[Query] = []
        for rank, get in zip(ranks.tolist(), is_get.tolist()):
            key = dataset.key_for_rank(rank)
            if get:
                queries.append(Query(QueryType.GET, key))
            else:
                queries.append(Query(QueryType.SET, key, dataset.value_for_rank(rank)))
        return queries

    def populate_items(self, count: int | None = None) -> list[tuple[bytes, bytes]]:
        """Warm-up items covering the ``count`` most popular ranks."""
        n = self.num_keys if count is None else min(count, self.num_keys)
        dataset = self.spec.dataset
        return [(dataset.key_for_rank(r), dataset.value_for_rank(r)) for r in range(n)]
