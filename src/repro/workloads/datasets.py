"""The four key-value datasets of the paper's benchmark (Section V-A).

K8)   8 B key,   8 B value
K16) 16 B key,  64 B value
K32) 32 B key, 256 B value
K128) 128 B key, 1024 B value

The store is filled with as many objects as fit in the 1,908 MB shareable
region, so the object count varies with the dataset (the paper notes this
explicitly).  Keys are derived deterministically from their rank so clients
and the store agree on the key space without sharing state.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Dataset:
    """One key/value size pair plus helpers for materialising keys."""

    name: str
    key_size: int
    value_size: int

    def __post_init__(self) -> None:
        if self.key_size < 8:
            raise WorkloadError("keys must be at least 8 bytes (rank prefix)")
        if self.value_size <= 0:
            raise WorkloadError("value size must be positive")

    @property
    def object_size(self) -> int:
        """Payload bytes per object."""
        return self.key_size + self.value_size

    def key_for_rank(self, rank: int) -> bytes:
        """Deterministic key for popularity rank ``rank``.

        An 8-byte little-endian rank followed by repeating filler to reach
        ``key_size``; distinct ranks always yield distinct keys.
        """
        prefix = struct.pack("<q", rank)
        filler = (b"k" * (self.key_size - len(prefix)))
        return prefix + filler

    def value_for_rank(self, rank: int) -> bytes:
        """Deterministic value for ``rank`` (content checked in round trips)."""
        seed = struct.pack("<q", ~rank & 0xFFFFFFFFFFFFFFF)
        reps = -(-self.value_size // len(seed))  # ceil division
        return (seed * reps)[: self.value_size]

    def num_objects(self, memory_bytes: int, overhead_bytes: int = 40) -> int:
        """Objects that fit in ``memory_bytes`` including per-object overhead."""
        return max(1, memory_bytes // (self.object_size + overhead_bytes))


K8 = Dataset("K8", key_size=8, value_size=8)
K16 = Dataset("K16", key_size=16, value_size=64)
K32 = Dataset("K32", key_size=32, value_size=256)
K128 = Dataset("K128", key_size=128, value_size=1024)

DATASETS: tuple[Dataset, ...] = (K8, K16, K32, K128)

_BY_NAME = {d.name: d for d in DATASETS}


def dataset_by_name(name: str) -> Dataset:
    """Look up a built-in dataset (``"K8"`` ... ``"K128"``)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise WorkloadError(f"unknown dataset {name!r}; expected one of {sorted(_BY_NAME)}") from None
