"""VectorEngine: NumPy batch kernels for the index-side hot passes.

The columnar :class:`~repro.engine.backends.SerialEngine` already executes
each compiled phase as one pass, but every pass is still a scalar Python
loop — per key it hashes (or probe-caches), walks bucket slot lists, and
branches per query type.  Mega-KV's throughput comes from running exactly
these passes as bulk SIMD/GPU kernels over arrays; this backend does the
same with NumPy over the :class:`~repro.engine.plane.BatchPlane` columns:

* **Hashing** — the entire key column is hashed once per batch: the keys
  are packed into a padded ``uint8`` matrix and 64-bit FNV-1a is mixed
  across byte columns for all ``num_hashes + 1`` seeds simultaneously
  (signature + every candidate bucket), with a scalar fallback for
  oversized keys.  Candidate buckets come from one mask broadcast over the
  hash columns.
* **Search** — signatures are mask-matched against the cuckoo table's
  :class:`~repro.kv.hashtable.SignatureMirror` (a struct-of-arrays copy of
  the slot state that :meth:`~repro.kv.hashtable.CuckooHashTable._write_slot`
  keeps in sync): one gather + compare per probe round, with the same
  probe-order short-circuit and bucket-read accounting as the scalar path.
* **KC / RD** — the search pass leaves its matches in columnar form, so
  key-compare and read only touch queries that actually have candidates,
  and RD only locations that passed the full-key comparison.
* **WR** — responses are filled per query-type subset (shared singletons
  bulk-assigned), and the batch's *response-size column* is computed with
  one NumPy broadcast, so SD framing and server chunking need no
  per-response ``wire_size`` property calls.

Allocation (MM) and the index Insert/Delete passes are inherited from
:class:`SerialEngine` unchanged: they mutate Python heap objects and the
authoritative cuckoo slots, which has no array form — and the flexible
index-operation analysis (paper Figure 6) is precisely that those
operations do *not* benefit from batched kernels the way Search does.

The backend degrades gracefully: when NumPy is missing or the store's
index does not support the signature mirror (e.g. the chained-hash
alternative), every pass falls back to the serial implementation and
results are still correct.
"""

from __future__ import annotations

from repro.engine.backends import (
    NOT_FOUND_RESPONSE,
    STORED_RESPONSE,
    SerialEngine,
)
from repro.engine.hotpath import prepare_hot_path_vector
from repro.engine.plane import BatchPlane
from repro.kv.hashtable import EMPTY
from repro.kv.objects import _FNV_OFFSET, _FNV_PRIME, fnv1a64
from repro.kv.protocol import QueryType, Response, ResponseStatus
from repro.kv.store import KVStore

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Keys longer than this take the scalar FNV path (the padded matrix would
#: waste cache on a few giants; production keys are tens of bytes).
MAX_VECTOR_KEY_BYTES = 128

#: Wire bytes of a value-less response (status byte + length word).
_RESPONSE_HEADER_BYTES = Response(ResponseStatus.STORED).wire_size

#: Raw wire status codes for the bulk-assigned response subsets.
_OK_CODE = ResponseStatus.OK.value
_NOT_FOUND_CODE = ResponseStatus.NOT_FOUND.value
_STORED_CODE = ResponseStatus.STORED.value

_MASK64 = (1 << 64) - 1
_SIG_MASK32 = (1 << 32) - 1


def fnv_hash_columns(keys: list[bytes], num_states: int, lens=None):
    """64-bit FNV-1a of every key under seeds ``0..num_states-1``, batched.

    Returns a ``(num_states, len(keys))`` uint64 array where row ``s``
    equals ``fnv1a64(key, seed=s)`` for every key — bit-exact with the
    scalar hash, which the vector kernel tests assert.  All seed states mix
    the same byte column per step, so the whole batch costs one pass over
    ``max_key_len`` byte columns regardless of how many hash functions the
    index uses.  Keys longer than :data:`MAX_VECTOR_KEY_BYTES` are hashed
    scalar and patched into the result.  ``lens`` may carry a precomputed
    per-key byte-length column (any integer dtype) so callers that already
    built one don't pay a second pass over the keys.
    """
    n = len(keys)
    prime = np.uint64(_FNV_PRIME)
    states = np.empty((num_states, n), dtype=np.uint64)
    for seed in range(num_states):
        states[seed, :] = np.uint64(_FNV_OFFSET ^ (seed * _FNV_PRIME & _MASK64))
    if n == 0:
        return states
    if lens is None:
        lens = np.fromiter(map(len, keys), dtype=np.intp, count=n)
    else:
        lens = np.asarray(lens, dtype=np.intp)
    max_len = int(lens.max())
    uniform = bool((lens == max_len).all())
    if uniform and max_len <= MAX_VECTOR_KEY_BYTES:
        matrix = np.frombuffer(b"".join(keys), dtype=np.uint8).reshape(n, max_len)
        for j in range(max_len):
            states = (states ^ matrix[:, j].astype(np.uint64)) * prime
        return states
    # Ragged or oversized keys: pad in-bound keys into a zero matrix and
    # mask each mixing step by key length; hash oversized keys scalar.
    bounded = min(max_len, MAX_VECTOR_KEY_BYTES)
    oversized = lens > MAX_VECTOR_KEY_BYTES
    matrix = np.zeros((n, bounded), dtype=np.uint8)
    for i, key in enumerate(keys):
        if not oversized[i]:
            matrix[i, : lens[i]] = np.frombuffer(key, dtype=np.uint8)
    for j in range(bounded):
        mixed = (states ^ matrix[:, j].astype(np.uint64)) * prime
        states = np.where(lens > j, mixed, states)
    if oversized.any():
        for i in np.nonzero(oversized)[0].tolist():
            for seed in range(num_states):
                states[seed, i] = fnv1a64(keys[i], seed=seed)
    return states


class _VectorScratch:
    """Per-batch columnar state the vector passes hand to each other."""

    __slots__ = ("hit_rows", "hit_locs", "multi_hits", "rd_rows", "rd_locs", "rd_objs", "value_rows", "value_lens")

    def __init__(self) -> None:
        #: Plane indices whose Search matched exactly one candidate, and
        #: the candidate location, aligned.
        self.hit_rows: list[int] = []
        self.hit_locs: list[int] = []
        #: Plane index -> candidate locations, for the rare multi-match.
        self.multi_hits: dict[int, list[int]] = {}
        #: Plane indices (and locations) that survived key-compare, plus
        #: the fetched records so RD never re-probes the heap.
        self.rd_rows: list[int] = []
        self.rd_locs: list[int] = []
        self.rd_objs: list = []
        #: Plane indices (and value byte lengths) of GET hits, for the
        #: response-size column.
        self.value_rows: list[int] = []
        self.value_lens: list[int] = []


class VectorEngine(SerialEngine):
    """Whole-batch execution with NumPy kernels for the index-side passes."""

    name = "vector"

    def run(
        self,
        store: KVStore,
        plan,
        plane: BatchPlane,
        *,
        epoch: int = 0,
        task_times=None,
    ) -> dict[str, int]:
        index = getattr(store, "index", None)
        if np is not None and hasattr(index, "ensure_mirror"):
            index.ensure_mirror()
            plane.scratch = _VectorScratch()
            if plane.hotpath is None and (self.dedup or self.use_hot_cache):
                plane.hotpath = prepare_hot_path_vector(
                    store,
                    plane,
                    dedup=self.dedup,
                    use_cache=self.use_hot_cache,
                )
        return super().run(store, plan, plane, epoch=epoch, task_times=task_times)

    # --------------------------------------------------------------- search

    def _pass_search(self, store: KVStore, plane: BatchPlane, indices) -> None:
        scratch = plane.scratch
        if scratch is None:
            SerialEngine._pass_search(store, plane, indices)
            return
        if not indices:
            return
        index = store.index
        mirror = index.mirror
        num_hashes = index.num_hashes
        keys = plane.keys
        states = fnv_hash_columns([keys[i] for i in indices], num_hashes + 1)
        signatures = (states[0] & np.uint64(_SIG_MASK32)).astype(np.uint32)
        bucket_mask = np.uint64(index.num_buckets - 1)
        n = len(indices)
        plane_rows = np.asarray(indices, dtype=np.intp)
        remaining = np.arange(n, dtype=np.intp)
        reads = np.full(n, num_hashes, dtype=np.int64)
        hit_rows = scratch.hit_rows
        hit_locs = scratch.hit_locs
        qtypes = plane.qtypes
        get_type = QueryType.GET
        # Columnar batches carry the wire opcode column; one boolean mask
        # replaces the per-hit ``qtypes[row] is GET`` interpreter branch.
        opcodes = plane.opcodes
        get_mask = opcodes == 1 if opcodes is not None else None
        delta = getattr(store, "delta_index", None)
        if delta is not None and len(delta):
            # Delta pre-filter: one searchsorted against the delta's sorted
            # signature column finds the rows that *might* live in the
            # delta; only those pay a dict lookup.  Resolved rows (hits and
            # tombstones alike) never touch the main mirror — their bucket
            # reads are zero, matching the scalar delta-first path.
            column = delta.signature_column()
            if column is not None and column.size:
                pos = np.searchsorted(column, signatures)
                pos[pos == column.size] = 0
                maybe = column[pos] == signatures
                if maybe.any():
                    lookup = delta.lookup
                    resolved_local: list[int] = []
                    for local in np.nonzero(maybe)[0].tolist():
                        row = int(plane_rows[local])
                        hit = lookup(keys[row])
                        if hit is None:
                            # Signature collision with a main-only key.
                            continue
                        resolved_local.append(local)
                        if hit and qtypes[row] is get_type:
                            hit_rows.append(row)
                            hit_locs.append(hit[0])
                    if resolved_local:
                        reads[resolved_local] = 0
                        keep = np.ones(n, dtype=bool)
                        keep[resolved_local] = False
                        remaining = remaining[keep]
        for probe in range(num_hashes):
            if remaining.size == 0:
                break
            buckets = (states[probe + 1][remaining] & bucket_mask).astype(np.intp)
            sig_slots = mirror.signatures[buckets]
            loc_slots = mirror.locations[buckets]
            match = (loc_slots != EMPTY) & (sig_slots == signatures[remaining][:, None])
            matched = match.any(axis=1)
            if matched.any():
                local = np.nonzero(matched)[0]
                resolved = remaining[local]
                reads[resolved] = probe + 1
                counts = match[local].sum(axis=1)
                first_slot = match[local].argmax(axis=1)
                first_locs = loc_slots[local, first_slot]
                single = counts == 1
                resolved_planes = plane_rows[resolved]
                if get_mask is not None:
                    single_rows = resolved_planes[single]
                    keep = get_mask[single_rows]
                    hit_rows.extend(single_rows[keep].tolist())
                    hit_locs.extend(first_locs[single][keep].tolist())
                else:
                    for row, loc in zip(
                        resolved_planes[single].tolist(), first_locs[single].tolist()
                    ):
                        if qtypes[row] is get_type:
                            hit_rows.append(row)
                            hit_locs.append(loc)
                for li in np.nonzero(~single)[0].tolist():
                    row = int(resolved_planes[li])
                    locs = loc_slots[local[li]][match[local[li]]].tolist()
                    if qtypes[row] is get_type:
                        scratch.multi_hits[row] = locs
                remaining = remaining[~matched]
        stats = index.stats
        stats.searches += n
        stats.search_bucket_reads += int(reads.sum())

    # ------------------------------------------------------------------- KC

    def _pass_kc(self, store: KVStore, plane: BatchPlane, indices) -> None:
        scratch = plane.scratch
        if scratch is None:
            SerialEngine._pass_kc(store, plane, indices)
            return
        heap = store.heap
        probe = getattr(heap, "probe", None)
        if probe is None:
            heap_get = heap.get
            probe = lambda loc: heap_get(loc, touch=False)  # noqa: E731
        keys = plane.keys
        locations = plane.locations
        rd_rows = scratch.rd_rows
        rd_locs = scratch.rd_locs
        rd_objs = scratch.rd_objs
        false_positives = 0
        for row, loc in zip(scratch.hit_rows, scratch.hit_locs):
            obj = probe(loc)
            if obj is not None and obj.key == keys[row]:
                locations[row] = loc
                rd_rows.append(row)
                rd_locs.append(loc)
                rd_objs.append(obj)
            else:
                false_positives += 1
        for row, candidates in scratch.multi_hits.items():
            match = None
            match_obj = None
            for loc in candidates:
                obj = probe(loc)
                if obj is not None and obj.key == keys[row]:
                    match = loc
                    match_obj = obj
                else:
                    false_positives += 1
            if match is not None:
                locations[row] = match
                rd_rows.append(row)
                rd_locs.append(match)
                rd_objs.append(match_obj)
        store.stats.signature_false_positives += false_positives

    # ------------------------------------------------------------------- RD

    def _pass_rd(self, store: KVStore, plane: BatchPlane, indices, epoch: int) -> None:
        scratch = plane.scratch
        if scratch is None:
            SerialEngine._pass_rd(store, plane, indices, epoch)
            return
        read_values = plane.read_values
        value_rows = scratch.value_rows
        value_lens = scratch.value_lens
        # KC already fetched every surviving record; re-fetching by location
        # here would repeat the dict probe per row.  Heaps that expose a bulk
        # recency refresh take it in one call (same tick order the per-row
        # gets would assign); others re-fetch to keep their touch semantics.
        rd_objs = scratch.rd_objs
        touch_records = getattr(store.heap, "touch_records", None)
        if touch_records is not None:
            touch_records(rd_objs)
        else:
            heap_get = store.heap.get
            rd_objs = [heap_get(loc) for loc in scratch.rd_locs]
        hotpath = plane.hotpath
        if hotpath is not None and hotpath.dups:
            dup_lookup = hotpath.dups.get
            for row, obj in zip(scratch.rd_rows, rd_objs):
                if obj is None:
                    continue
                # One read answers the whole run; credit its multiplicity.
                obj.record_access(epoch, 1 + len(dup_lookup(row, ())))
                value = obj.value
                read_values[row] = value
                value_rows.append(row)
                value_lens.append(len(value))
            return
        for row, obj in zip(scratch.rd_rows, rd_objs):
            if obj is None:
                continue
            obj.record_access(epoch)
            value = obj.value
            read_values[row] = value
            value_rows.append(row)
            value_lens.append(len(value))

    # ------------------------------------------------------------------- WR

    def _pass_wr(self, plane: BatchPlane, indices) -> None:
        scratch = plane.scratch
        if scratch is None:
            SerialEngine._pass_wr(plane, indices)
            return
        hotpath = plane.hotpath
        if hotpath is not None:
            hotpath.finish(plane)
        responses = plane.responses
        read_values = plane.read_values
        ok = ResponseStatus.OK
        # Consumers that only read the status/size/value columns (the
        # procshard worker wire path) opt out of per-row Response objects;
        # the columns below are computed either way.
        wants_responses = plane.wants_responses
        if wants_responses:
            for i in plane.set_indices:
                responses[i] = STORED_RESPONSE
        if hotpath is not None and hotpath.prefilled:
            # Hot-path rows (cache-served runs and scattered duplicates)
            # already carry their shared Response; extend the value
            # row/length lists so the status and size columns cover them.
            value_rows = scratch.value_rows
            value_lens = scratch.value_lens
            for rows, value, _resp in hotpath.cache_groups:
                value_rows.extend(rows)
                value_lens.extend([len(value)] * len(rows))
            for rep, dup_rows in hotpath.dups.items():
                value = read_values[rep]
                if value is not None:
                    value_rows.extend(dup_rows)
                    value_lens.extend([len(value)] * len(dup_rows))
            # Every excluded row was prefilled by finish(); only the live
            # subset can still need a Response object.
            if wants_responses:
                get_rows = (
                    hotpath.get_live
                    if hotpath.get_live is not None
                    else plane.get_indices
                )
                for i in get_rows:
                    if responses[i] is None:
                        value = read_values[i]
                        if value is None:
                            responses[i] = NOT_FOUND_RESPONSE
                        else:
                            responses[i] = Response(ok, value)
        elif wants_responses:
            for i in plane.get_indices:
                value = read_values[i]
                if value is None:
                    responses[i] = NOT_FOUND_RESPONSE
                else:
                    responses[i] = Response(ok, value)
        # The raw status-code column mirrors the Response column so the
        # wire framer never needs the objects: NOT_FOUND everywhere, then
        # bulk-corrected per subset (SETs stored, GET hits OK, DELETEs
        # copied from the answers the Delete pass already wrote) — fancy
        # indexing instead of per-row list stores.
        status_col = np.full(plane.size, _NOT_FOUND_CODE, dtype=np.int64)
        if plane.set_indices:
            status_col[plane.set_indices] = _STORED_CODE
        if scratch.value_rows:
            status_col[scratch.value_rows] = _OK_CODE
        # Column-only consumers keep the ndarray (the wire framer casts it
        # for free); Response consumers get the documented plain list.
        statuses = status_col.tolist() if wants_responses else status_col
        for i in plane.delete_indices:
            response = responses[i]
            if response is not None:
                statuses[i] = response.status.value
        plane.response_statuses = statuses
        # The response-size column: header bytes everywhere, plus the value
        # bytes of each GET hit, in one broadcast.
        sizes = np.full(plane.size, _RESPONSE_HEADER_BYTES, dtype=np.int64)
        if scratch.value_rows:
            sizes[np.asarray(scratch.value_rows, dtype=np.intp)] += np.asarray(
                scratch.value_lens, dtype=np.int64
            )
        plane.response_sizes = sizes.tolist() if wants_responses else sizes
