"""BatchPlane: columnar (struct-of-arrays) state for one batch.

The original functional pipeline threaded a ``_QueryContext`` object per
query through each task method — one Python call per query per phase.  The
BatchPlane turns the batch sideways: parallel arrays of query types, keys,
candidate lists, heap locations, values and response slots, indexed by the
query's position in the batch.  Engines then execute each compiled phase as
one tight loop over the relevant index subset (Mega-KV-style staged batch
kernels over columnar state), with the per-query-type subsets
(``get_indices`` etc.) computed once at batch intake.

A batch arrives either as ``list[Query]`` (the legacy path) or as a
:class:`~repro.net.wire.QueryColumns` straight off the columnar wire
decoder — in the latter case the plane adopts the decoder's column lists
directly and, when the decoder left its NumPy opcode column attached,
computes the per-type index subsets with array masks instead of a
per-query type-dispatch loop.  No ``Query`` objects exist anywhere on
that path.

SET bookkeeping mirrors the per-query design exactly:

* ``pending_inserts[i]`` is the (key, location) the MM pass produced for a
  SET, consumed by the Insert pass;
* ``pending_deletes[i]`` lists stale index entries (displaced by query
  ``i``'s allocation) with the entry's location, so a Delete cannot remove
  a freshly inserted entry for the same key;
* ``batch_inserts`` maps key -> index of the *last* SET of that key whose
  Insert is still pending, enabling batch-local dedup: when one key is SET
  several times in a batch, only the last version's Insert reaches the
  index (earlier versions were never inserted, so they need no Delete
  either).  Without this, a hot Zipf key could stack enough identical
  signatures in one batch to overflow its cuckoo buckets.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import SimulationError
from repro.kv.protocol import QueryType, Response

#: Shared empty candidate list sentinel (never mutated; KC only reads it).
NO_CANDIDATES: tuple[int, ...] = ()


class BatchPlane:
    """Struct-of-arrays scratch state for one batch of queries."""

    __slots__ = (
        "queries",
        "size",
        "qtypes",
        "keys",
        "set_values",
        "candidates",
        "locations",
        "read_values",
        "responses",
        "pending_inserts",
        "pending_deletes",
        "batch_inserts",
        "_subsets",
        "all_indices",
        "scratch",
        "hotpath",
        "response_sizes",
        "response_statuses",
        "wants_responses",
        "responses_complete",
        "opcodes",
        "key_lens",
        "value_lens",
    )

    def __init__(self, queries):
        n = len(queries)
        self.size = n
        columnar = getattr(queries, "qtypes", None)
        if columnar is not None:
            #: The wire decoder's columns are adopted as-is; no per-query
            #: objects are built (``self.queries`` stays None).
            self.queries = None
            qtypes = self.qtypes = columnar
            self.keys = queries.keys
            self.set_values = queries.values
            opcodes = queries.opcodes
        else:
            self.queries = queries
            qtypes = self.qtypes = [q.qtype for q in queries]
            self.keys = [q.key for q in queries]
            self.set_values = [q.value for q in queries]
            opcodes = None
        #: Wire-decoder opcode/length columns when the batch arrived
        #: columnar (None on the legacy Query-object path).  The procshard
        #: router gathers per-shard sub-blocks straight from these instead
        #: of recomputing lengths per batch.
        self.opcodes = opcodes
        self.key_lens = getattr(queries, "key_lens", None)
        self.value_lens = getattr(queries, "value_lens", None)
        self.candidates: list = [NO_CANDIDATES] * n
        self.locations: list[int | None] = [None] * n
        self.read_values: list[bytes | None] = [None] * n
        self.responses: list[Response | None] = [None] * n
        self.pending_inserts: list[tuple[bytes, int] | None] = [None] * n
        self.pending_deletes: list[list[tuple[bytes, int | None]] | None] = [None] * n
        self.batch_inserts: dict[bytes, int] = {}
        #: Per-qtype index subsets are built on first access — engine
        #: passes need them, but the procshard router plane (which only
        #: splits/merges whole windows) never does, so it skips the
        #: O(rows) pass entirely.
        self._subsets: tuple | None = None
        #: Every query (the WR pass).
        self.all_indices = range(n)
        #: Engine-private per-batch state (the vector engine parks its
        #: hashed key columns here); plain engines leave it None.
        self.scratch = None
        #: Skew-aware hot-path state (:class:`repro.engine.hotpath.
        #: HotPathState`) when batch key dedup or the hot-key cache is
        #: active for this batch; None on the default path.
        self.hotpath = None
        #: Optional wire-size column filled by the WR pass (vector engine):
        #: ``response_sizes[i]`` is ``responses[i].wire_size``, precomputed
        #: so downstream framing/chunking needs no per-response property
        #: calls.  None when the executing engine does not produce it.
        self.response_sizes: list[int] | None = None
        #: Optional raw wire status-code column filled by the WR pass
        #: (vector engine): ``response_statuses[i]`` equals
        #: ``responses[i].status.value``.  Together with ``read_values``
        #: and ``response_sizes`` this lets the columnar wire framer emit
        #: response bytes without touching Response objects.  None when
        #: the executing engine does not produce it.
        self.response_statuses: list[int] | None = None
        #: When False, engines that fill the status/size/value columns may
        #: skip materializing per-row :class:`Response` objects entirely
        #: (the procshard worker ships columns, never objects).  Callers
        #: that clear this must not use :meth:`take_responses` afterwards
        #: unless ``response_statuses`` stayed None.
        self.wants_responses: bool = True
        #: Set by engines that fill every response slot by construction
        #: (the procshard merge covers all rows, including fill-downs);
        #: lets :meth:`take_responses` skip its per-row completeness scan.
        self.responses_complete: bool = False

    def _build_subsets(self) -> tuple:
        opcodes = self.opcodes
        if opcodes is not None:
            # One mask per subset over the wire opcode column (GET=1,
            # SET=2, DELETE=3); `.nonzero()` keeps ascending order.
            is_set = opcodes == 2
            subsets = (
                (opcodes == 1).nonzero()[0].tolist(),
                is_set.nonzero()[0].tolist(),
                (opcodes == 3).nonzero()[0].tolist(),
                (~is_set).nonzero()[0].tolist(),
                (opcodes != 1).nonzero()[0].tolist(),
            )
        else:
            get_indices: list[int] = []
            set_indices: list[int] = []
            delete_indices: list[int] = []
            search_indices: list[int] = []
            mutation_indices: list[int] = []
            get_type, set_type = QueryType.GET, QueryType.SET
            for i, qtype in enumerate(self.qtypes):
                if qtype is get_type:
                    get_indices.append(i)
                    search_indices.append(i)
                elif qtype is set_type:
                    set_indices.append(i)
                    mutation_indices.append(i)
                else:
                    delete_indices.append(i)
                    search_indices.append(i)
                    mutation_indices.append(i)
            subsets = (
                get_indices,
                set_indices,
                delete_indices,
                search_indices,
                mutation_indices,
            )
        self._subsets = subsets
        return subsets

    @property
    def get_indices(self) -> list[int]:
        """GET queries (KC/RD consumers)."""
        return (self._subsets or self._build_subsets())[0]

    @property
    def set_indices(self) -> list[int]:
        """SET queries (MM/Insert producers)."""
        return (self._subsets or self._build_subsets())[1]

    @property
    def delete_indices(self) -> list[int]:
        """DELETE queries."""
        return (self._subsets or self._build_subsets())[2]

    @property
    def search_indices(self) -> list[int]:
        """Queries the index Search pass touches (GET and DELETE)."""
        return (self._subsets or self._build_subsets())[3]

    @property
    def mutation_indices(self) -> list[int]:
        """Queries the index Delete pass touches (DELETE queries answer
        here; SET queries flush their displaced-entry deletes)."""
        return (self._subsets or self._build_subsets())[4]

    def take_responses(self) -> list[Response]:
        """The completed response column; raises if any slot is empty.

        The error names the offending query indices (and their types) so a
        missing-response bug points straight at the queries a phase skipped
        rather than at "somewhere in the batch".
        """
        responses = self.responses
        if self.responses_complete:
            return responses  # type: ignore[return-value]
        if any(r is None for r in responses):
            missing = [i for i, r in enumerate(responses) if r is None]
            shown = ", ".join(
                f"{i}:{self.qtypes[i].name}" for i in missing[:8]
            )
            suffix = ", ..." if len(missing) > 8 else ""
            raise SimulationError(
                f"{len(missing)} of {self.size} queries completed the pipeline "
                f"without a response (indices {shown}{suffix})"
            )
        return responses  # type: ignore[return-value]


def indices_between(indices, start: int, stop: int):
    """The subset of a sorted index list falling in ``[start, stop)``.

    Used by the stealing engine to intersect a phase's applicable queries
    with one claimed tag-array chunk.  Accepts a ``range`` (the WR pass's
    all-queries set) or a sorted list.
    """
    if isinstance(indices, range):
        return range(max(indices.start, start), min(indices.stop, stop))
    lo = bisect_left(indices, start)
    hi = bisect_left(indices, stop)
    return indices[lo:hi]
