"""Skew-aware hot path: batch key dedup + hot-key cache intake.

At Zipf skew 0.99 a 4096-query batch holds well under 2000 distinct keys,
yet the engines probe the cuckoo index once per query.  This module builds,
once per batch, a :class:`HotPathState` that the engine backends consult to
collapse that redundancy two ways:

* **Batch key dedup** — GET queries are grouped into *runs* of the same key
  between write barriers: within a run, only the first row (the
  *representative*) goes through Search/KC/RD; the duplicates receive the
  representative's value and response by scatter after the RD phase.  A
  batch that also SETs or DELETEs a key splits that key's runs at each
  write position (conservative under the staged batch semantics, where the
  index phases order Deletes before Inserts before Searches), so responses
  stay byte-identical to :class:`~repro.engine.reference.ReferenceEngine`.
* **Hot-key cache serving** — when the store carries an active
  :class:`~repro.kv.hotcache.HotKeyCache`, a run of a key that is *not
  written anywhere in this batch* can be answered from the cache's
  versioned snapshot without touching the index at all.  Keys written in
  the batch are never cache-served: their GETs must observe the post-write
  value, which only the store knows.  Runs of multiplicity >=
  :data:`~repro.kv.hotcache.MIN_ADMIT_MULTIPLICITY` that miss are recorded
  for admission once RD has produced the value.

Two builders produce the same state: :func:`prepare_hot_path` (dict-based
run detection through :meth:`HotPathState.add_run`, used by the scalar
engines and the sharded splitter) and :func:`prepare_hot_path_vector`
(the same grouping pass fused with direct cache-dict probes, fronted by a
*uniformity gate*: a strided sample of the batch's GET keys estimates the
duplicate fraction, and a visibly uniform batch skips grouping entirely —
that sample is the whole skew-0 parity budget).  Responses are pre-filled
for served and duplicate rows with one shared
:class:`~repro.kv.protocol.Response` per run — cache-served rows reuse the
snapshot's prebuilt response object — and the WR passes skip rows that
already carry a response, exactly as they do for DELETEs.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.kv.protocol import Response, ResponseStatus

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Shared miss response for pre-filled duplicate rows (same bytes as the
#: backends' singleton; sharing an object is an allocation nicety only).
_NOT_FOUND = Response(ResponseStatus.NOT_FOUND)
_OK = ResponseStatus.OK

#: Runs must reach this multiplicity before their key is admission-worthy
#: (mirrors :data:`repro.kv.hotcache.MIN_ADMIT_MULTIPLICITY`).
_MIN_ADMIT = 2


class HotPathState:
    """Per-batch dedup/cache decisions, shared by every engine backend.

    Built before the first phase runs; consumed in three places:

    * :meth:`SerialEngine.phase_indices` substitutes ``get_live`` /
      ``search_live`` (the index subsets minus served and duplicate rows)
      for the plane's full subsets in the Search/KC/RD phases;
    * :meth:`finish` runs once after the RD phase: scatters representative
      values and responses to duplicate rows, fills cache-served rows, and
      admits qualifying read values into the cache;
    * the pipeline's telemetry reads ``dup_count`` and the per-batch cache
      hit/miss tallies.
    """

    __slots__ = (
        "dups",
        "dup_count",
        "cache",
        "cache_groups",
        "cache_hits",
        "cache_misses",
        "admissions",
        "excluded",
        "get_live",
        "search_live",
        "finished",
        "store",
        "epoch",
        "revalidations",
    )

    def __init__(self) -> None:
        #: Representative GET row -> its duplicate rows (dedup only).
        self.dups: dict[int, list[int]] = {}
        self.dup_count = 0
        #: The serving cache (None when only dedup is active).
        self.cache = None
        #: Cache-served runs, captured at batch intake as (all rows of the
        #: run, key, the cache's (value, version, response) entry).  The
        #: capture is *provisional*: :meth:`finish` re-validates each entry
        #: against the cache before scattering (a SET elsewhere in the
        #: batch can slab-evict the key mid-batch) and rewrites the list
        #: to the final served (rows, value, response) triples.
        self.cache_groups: list = []
        self.cache_hits = 0
        self.cache_misses = 0
        #: (representative row, key) of unwritten multi-runs to admit once
        #: RD has read the representative's value.
        self.admissions: list[tuple[int, bytes]] = []
        #: Rows removed from the live index subsets (served + duplicates).
        self.excluded: set[int] = set()
        #: Live substitutes for ``plane.get_indices``/``search_indices``.
        self.get_live = None
        self.search_live = None
        self.finished = False
        #: The store the batch runs against (set by the builders) and the
        #: run's profiler epoch (set by the engines) — :meth:`finish`
        #: needs both for the fallback read of an invalidated group.
        self.store = None
        self.epoch = 0
        #: Cache-served groups whose snapshot died mid-batch and had to be
        #: re-resolved through the index.  Only the slab heap can trigger
        #: this (a SET's LRU eviction invalidates an unwritten key); the
        #: log arena never evicts inside a batch, so this stays 0 there —
        #: regression-tested.
        self.revalidations = 0

    # ------------------------------------------------------------- building

    @property
    def prefilled(self) -> bool:
        """True when some rows bypass the index (WR must skip them)."""
        return bool(self.cache_groups or self.dups)

    def add_run(self, key: bytes, rows: list[int], written: bool, dedup: bool) -> None:
        """Classify one same-key run (rows ascending, first = representative)."""
        count = len(rows)
        cache = self.cache
        if cache is not None and not written:
            entry = cache.lookup_entry(key, count)
            if entry is not None:
                self.cache_groups.append((rows, key, entry))
                self.cache_hits += count
                self.excluded.update(rows)
                return
            self.cache_misses += count
            # In-batch multiplicity qualifies immediately; a singleton run
            # graduates through the cross-batch probation ledger.
            if count >= _MIN_ADMIT or cache.note_probation(key, count):
                self.admissions.append((rows[0], key))
        elif count >= _MIN_ADMIT and not written:
            # Cache-less grouping (sharded pre-split): record multi-runs so
            # the merge step can feed the per-shard caches.
            self.admissions.append((rows[0], key))
        if count >= _MIN_ADMIT and dedup:
            dup_rows = rows[1:]
            self.dups[rows[0]] = dup_rows
            self.dup_count += len(dup_rows)
            self.excluded.update(dup_rows)

    def seal(self, plane) -> "HotPathState":
        """Freeze the live index subsets after every run is classified."""
        if self.excluded:
            excluded = self.excluded
            if np is not None and len(excluded) > 64:
                # Vectorized filter: one boolean mask gather instead of a
                # per-row set probe (matters at high skew, where most of
                # the batch is excluded).
                mask = np.zeros(plane.size, dtype=bool)
                mask[list(excluded)] = True
                get_arr = np.asarray(plane.get_indices, dtype=np.intp)
                self.get_live = get_arr[~mask[get_arr]].tolist()
                if plane.delete_indices:
                    search_arr = np.asarray(plane.search_indices, dtype=np.intp)
                    self.search_live = search_arr[~mask[search_arr]].tolist()
                else:
                    self.search_live = self.get_live
                return self
            self.get_live = [i for i in plane.get_indices if i not in excluded]
            if plane.delete_indices:
                self.search_live = [
                    i for i in plane.search_indices if i not in excluded
                ]
            else:
                self.search_live = self.get_live
        else:
            self.get_live = plane.get_indices
            self.search_live = plane.search_indices
        return self

    # ------------------------------------------------------------ finishing

    def finish(self, plane) -> None:
        """Post-RD scatter: fill served/duplicate rows, admit read values.

        Idempotent — the engines invoke it after the RD phase and again
        defensively at WR intake; only the first call acts.  One Response
        object is shared across each run (responses are immutable, exactly
        like the backends' STORED/NOT_FOUND singletons).

        Cache-served groups were captured before any phase ran, but a SET
        elsewhere in the batch can slab-evict an unwritten cached key
        mid-batch (``store.allocate`` invalidates the snapshot and the MM
        pass queues the index Delete).  Each group is therefore
        re-validated here: only a snapshot still resident at its captured
        version is scattered; an invalidated group falls back to a direct
        index read — which, post-MM/Delete, resolves exactly as the plain
        path would (NOT_FOUND for an evicted key).
        """
        if self.finished:
            return
        self.finished = True
        responses = plane.responses
        read_values = plane.read_values
        cache = self.cache
        if self.cache_groups:
            served: list[tuple[list[int], bytes, Response]] = []
            entries_get = cache._entries.get
            versions_get = cache._versions.get
            store = self.store
            for rows, key, entry in self.cache_groups:
                value, version, resp = entry
                if entries_get(key) is not entry or versions_get(key, 0) != version:
                    # Snapshot died between intake and finish: re-resolve
                    # through the index (run multiplicity still credited
                    # to the object's profiler counter, as in the plain
                    # dedup path) and reclassify the probe as a miss.
                    n = len(rows)
                    cache.hits -= n
                    cache.misses += n
                    self.cache_hits -= n
                    self.cache_misses += n
                    self.revalidations += 1
                    location = store.multi_key_compare(
                        [key], [store.multi_index_search([key])[0]]
                    )[0]
                    value = store.multi_read_value(
                        [location], epoch=self.epoch, counts=[n]
                    )[0]
                    if value is None:
                        for r in rows:
                            responses[r] = _NOT_FOUND
                        continue
                    resp = Response(_OK, value)
                served.append((rows, value, resp))
                for r in rows:
                    read_values[r] = value
                    responses[r] = resp
            #: Downstream consumers (the vector WR pass's status/size
            #: columns) see only the groups that actually served.
            self.cache_groups = served
        for rep, dup_rows in self.dups.items():
            value = read_values[rep]
            if value is None:
                responses[rep] = _NOT_FOUND
                for d in dup_rows:
                    responses[d] = _NOT_FOUND
            else:
                resp = Response(_OK, value)
                responses[rep] = resp
                for d in dup_rows:
                    read_values[d] = value
                    responses[d] = resp
        cache = self.cache
        if cache is not None:
            for rep, key in self.admissions:
                value = read_values[rep]
                if value is not None:
                    cache.admit(key, value)


def _active_cache(store, use_cache: bool):
    """The store's hot-key cache when serving is allowed and gated on."""
    if not use_cache:
        return None
    cache = getattr(store, "hot_cache", None)
    if cache is None or not cache.active:
        return None
    return cache


def _written_positions(plane) -> dict[bytes, list[int]] | None:
    """Key -> ascending batch positions of its SET/DELETE rows (the write
    barriers runs split at); None when the batch is read-only."""
    mutations = plane.mutation_indices
    if not mutations:
        return None
    keys = plane.keys
    written: dict[bytes, list[int]] = {}
    for i in mutations:
        written.setdefault(keys[i], []).append(i)
    return written


# ------------------------------------------------------------ scalar builder


def prepare_hot_path(store, plane, *, dedup: bool, use_cache: bool) -> HotPathState | None:
    """Dict-based run detection over the GET rows (scalar engines).

    Returns None when neither layer is active, so the default engine path
    carries zero per-row overhead.
    """
    cache = _active_cache(store, use_cache)
    if not dedup and cache is None:
        return None
    state = HotPathState()
    state.cache = cache
    state.store = store
    keys = plane.keys
    written = _written_positions(plane)
    # group key -> ascending rows of the run; plain ``key`` for unwritten
    # keys, ``(key, run#)`` when the batch writes the key (run# = writes
    # at or before the row, so a run never crosses a write barrier).
    groups: dict = {}
    if written is None:
        for i in plane.get_indices:
            key = keys[i]
            rows = groups.get(key)
            if rows is None:
                groups[key] = [i]
            else:
                rows.append(i)
        for key, rows in groups.items():
            state.add_run(key, rows, False, dedup)
    else:
        for i in plane.get_indices:
            key = keys[i]
            positions = written.get(key)
            group = key if positions is None else (key, bisect_right(positions, i))
            rows = groups.get(group)
            if rows is None:
                groups[group] = [i]
            else:
                rows.append(i)
        for group, rows in groups.items():
            if type(group) is tuple:
                state.add_run(group[0], rows, True, dedup)
            else:
                state.add_run(group, rows, False, dedup)
    return state.seal(plane)


# ------------------------------------------------------------ vector builder


#: Rows sampled (by stride) for the vector builder's uniformity gate.
GATE_SAMPLE_ROWS = 512

#: Batches whose sampled duplicate-key fraction falls below this skip
#: grouping entirely.  A uniform 4096-row batch over a 20k key space
#: samples ~1.3 % duplicates from birthday collisions alone; Zipf 0.5 is
#: already ~3.4 % and climbs fast with skew, so the band cleanly separates
#: "nothing to collapse" from "worth a grouping pass".
GATE_SKIP_BELOW = 0.025

#: Batches smaller than this always run the grouping pass: the sample
#: would be too small to trust and the pass itself is near-free.
GATE_MIN_ROWS = 1024

#: Singleton GET rows are probed against the cache only when its
#: configured capacity is at least this many times the batch's GET count.
#: A probe of a lone row pays for itself only when it usually hits; a
#: cache sized well beyond one batch's working set is the deterministic
#: signal that lone rows plausibly hit too (resident count would be the
#: sharper signal, but it cannot bootstrap — singles must be probed, miss
#: and graduate through probation before they are ever resident).
SINGLETON_PROBE_MIN_CAPACITY = 2


def _probe_singletons(state: HotPathState, cache, rows, keys, written) -> None:
    """Probe lone GET rows against a keyspace-scale cache.

    Same probe as the grouped pass minus the LRU refresh (one appearance
    is not hotness evidence); a miss walks the probation ledger inline
    (:meth:`~repro.kv.hotcache.HotKeyCache.note_probation`'s contract) so
    once-per-batch tail keys graduate next sighting.
    """
    entries = cache._entries
    entries_get = entries.get
    versions = cache._versions
    versions_get = versions.get
    window = cache._window_hits
    window_get = window.get
    probation = cache._probation
    probation_get = probation.get
    probation_cap = 4 * cache.capacity
    cache_groups = state.cache_groups
    admissions = state.admissions
    excluded = state.excluded
    hits = misses = 0
    for r in rows:
        key = keys[r]
        if written is not None and key in written:
            continue
        entry = entries_get(key)
        if entry is not None:
            if entry[1] == versions_get(key, 0):
                cache_groups.append(([r], key, entry))
                hits += 1
                excluded.add(r)
                window[key] = window_get(key, 0) + 1
                continue
            del entries[key]
            versions.pop(key, None)
        misses += 1
        seen = probation_get(key, 0) + 1
        if seen >= _MIN_ADMIT:
            probation.pop(key, None)
            admissions.append((r, key))
        else:
            if len(probation) >= probation_cap:
                probation.clear()
            probation[key] = seen
    state.cache_hits += hits
    state.cache_misses += misses
    cache.hits += hits
    cache.misses += misses


def prepare_hot_path_vector(
    store, plane, *, dedup: bool, use_cache: bool
) -> HotPathState | None:
    """Gated hash-column run detection (vector engine).

    A strided sample of the batch's GET keys estimates the duplicate
    fraction first; a visibly uniform batch (below
    :data:`GATE_SKIP_BELOW`) returns immediately with nothing grouped,
    which is nearly the entire skew-0 overhead of the hot path.  The gate
    (and the no-duplicates fast-out) is bypassed when the cache is
    provisioned at keyspace scale: singleton rows are then worth probing
    even with nothing to collapse — notably the sharded engine's inner
    sub-batches, which arrive pre-deduped to multiplicity-1 runs.  Past
    the gate, the GET rows' keys are FNV-hashed once and duplicate keys found
    by sorting the hash column — only rows in hash groups of two or more
    fall back to a Python dict pass keyed on the real key bytes (resolving
    the rare collision), so the classification loop runs per *duplicated*
    key, not per distinct key.  Singleton GET rows are probed only when
    the cache's capacity dwarfs the batch
    (:data:`SINGLETON_PROBE_MIN_CAPACITY`): measured at vector-engine pass
    costs a probe buys back roughly what it spends unless it usually
    hits, so against a batch-sized cache lone rows stay on the index path
    and in-batch multiplicity drives admission, while a keyspace-scale
    cache serves them too (misses feed the probation ledger so once-per-
    batch tail keys graduate in).  Classification makes the same decisions
    as :meth:`HotPathState.add_run`, with the cache probe inlined against
    the cache's entry/version/probation dicts and the hit/miss counters
    settled in bulk after the loop; only the rare write-barrier split goes
    through the shared method.
    """
    from repro.engine.vector import fnv_hash_columns

    cache = _active_cache(store, use_cache)
    if not dedup and cache is None:
        return None
    state = HotPathState()
    state.cache = cache
    state.store = store
    get_rows = plane.get_indices
    n = len(get_rows)
    if n == 0:
        return state.seal(plane)
    keys = plane.keys
    # When the cache dwarfs the batch, lone rows are probed too — and
    # none of the grouping fast-outs below may skip that probe pass.
    # This matters most under the sharded engine, whose pre-split dedup
    # hands the inner engines multiplicity-1 sub-batches: without the
    # singleton probe the per-shard caches would admit but never serve.
    singles_probe = (
        cache is not None and cache.capacity >= SINGLETON_PROBE_MIN_CAPACITY * n
    )
    if n < 2:
        if singles_probe:
            _probe_singletons(state, cache, get_rows, keys, _written_positions(plane))
        return state.seal(plane)
    if n >= GATE_MIN_ROWS and not singles_probe:
        sample = get_rows[:: max(1, n // GATE_SAMPLE_ROWS)]
        if 1.0 - len({keys[i] for i in sample}) / len(sample) < GATE_SKIP_BELOW:
            return state.seal(plane)
    rows_arr = np.asarray(get_rows, dtype=np.intp)
    get_keys = keys if n == len(keys) else [keys[i] for i in get_rows]
    hashes = fnv_hash_columns(get_keys, 1)[0]
    order = np.argsort(hashes, kind="stable")
    ordered = hashes[order]
    boundaries = np.empty(ordered.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=boundaries[1:])
    starts = np.nonzero(boundaries)[0]
    lengths = np.diff(np.append(starts, ordered.size))
    multi = lengths > 1
    if not multi.any() and not singles_probe:
        return state.seal(plane)
    # One gather pulls every row belonging to a repeated-hash group; the
    # stable sort keeps equal hashes in batch order and get_indices is
    # ascending, so rows stay ascending per group.
    in_multi = np.repeat(multi, lengths)
    multi_rows = rows_arr[order[in_multi]]
    groups: dict[bytes, list[int]] = {}
    setdefault = groups.setdefault
    for r in multi_rows.tolist():
        setdefault(keys[r], []).append(r)
    written = _written_positions(plane)
    dups = state.dups
    cache_groups = state.cache_groups
    admissions = state.admissions
    # Excluded rows accumulate in a flat list (serving and dedup never
    # exclude a row twice) and merge into the state's set in one bulk
    # update after the loop — hundreds of small set.update calls were a
    # measurable slice of the builder budget.
    excluded_rows: list[int] = []
    excluded_extend = excluded_rows.extend
    hits = misses = dup_count = 0
    if cache is not None:
        entries = cache._entries
        entries_get = entries.get
        versions_get = cache._versions.get
        move_to_end = entries.move_to_end
        window = cache._window_hits
        window_get = window.get
    for key, krows in groups.items():
        count = len(krows)
        if count < 2:
            # A hash collision between distinct keys can leave a key with
            # a single row in a multi group — not a run.
            continue
        if written is not None:
            positions = written.get(key)
            if positions is not None:
                if count > 1:
                    runs: dict[int, list[int]] = {}
                    for r in krows:
                        runs.setdefault(bisect_right(positions, r), []).append(r)
                    for run_rows in runs.values():
                        state.add_run(key, run_rows, True, dedup)
                continue
        if cache is not None:
            entry = entries_get(key)
            if entry is not None:
                if entry[1] == versions_get(key, 0):
                    cache_groups.append((krows, key, entry))
                    hits += count
                    excluded_extend(krows)
                    window[key] = window_get(key, 0) + count
                    move_to_end(key)
                    continue
                # Stale snapshot: rewritten since; drop it and its stamp
                # (lookup_entry's contract).
                del entries[key]
                cache._versions.pop(key, None)
            misses += count
            # count >= 2 here, so in-batch multiplicity qualifies directly.
            admissions.append((krows[0], key))
        if dedup:
            dup_rows = krows[1:]
            dups[krows[0]] = dup_rows
            dup_count += count - 1
            excluded_extend(dup_rows)
    if excluded_rows:
        state.excluded.update(excluded_rows)
    if singles_probe:
        # Keyspace-scale cache: lone rows usually hit too.
        _probe_singletons(
            state, cache, rows_arr[order[~in_multi]].tolist(), keys, written
        )
    if cache is not None:
        cache.hits += hits
        cache.misses += misses
    state.cache_hits += hits
    state.cache_misses += misses
    state.dup_count += dup_count
    return state.seal(plane)


class _NoCacheStore:
    """Stand-in store for cache-less grouping (sharded pre-split dedup)."""

    hot_cache = None


def dedup_batch_keys(plane) -> HotPathState | None:
    """Pure dedup grouping with no cache (the sharded engine's pre-split
    pass): duplicate rows never reach a shard sub-batch, and the recorded
    admissions let the sharded engine feed per-shard caches after merge."""
    return prepare_hot_path(_NoCacheStore, plane, dedup=True, use_cache=False)


__all__ = [
    "HotPathState",
    "dedup_batch_keys",
    "prepare_hot_path",
    "prepare_hot_path_vector",
]
