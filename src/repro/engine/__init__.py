"""The execution engine: one substrate beneath both planes.

This package is the single home of pipeline *stage semantics*:

* :mod:`repro.engine.plan` — the :class:`StagePlan` compiler turning a
  :class:`~repro.core.pipeline_config.PipelineConfig` into an ordered list
  of whole-batch phases, consumed by the functional engines *and* by the
  analytical :class:`~repro.core.cost_model.PipelineAnalyzer`;
* :mod:`repro.engine.plane` — the columnar :class:`BatchPlane`
  (struct-of-arrays query state) engines execute over;
* :mod:`repro.engine.backends` — :class:`SerialEngine` (whole-batch
  passes) and :class:`StealingEngine` (dual-executor tag-array chunk
  claiming over the same passes);
* :mod:`repro.engine.reference` — the per-query :class:`ReferenceEngine`,
  kept as equivalence ground truth and benchmark baseline;
* :mod:`repro.engine.vector` — :class:`VectorEngine`, NumPy batch kernels
  for the index-side passes (whole-column hashing, signature mask-match
  against the cuckoo table's mirror);
* :mod:`repro.engine.sharded` — :class:`ShardedEngine`, splitting each
  batch across a :class:`~repro.kv.sharding.ShardedKVStore`'s partitions
  on a persistent worker pool.
"""

from __future__ import annotations

from repro.engine.backends import SerialEngine, StealingEngine
from repro.engine.plan import (
    BOUNDARY_TASKS,
    INDEX_OP_PRIORITY,
    PhaseKind,
    PlanPhase,
    StagePlan,
    compile_stage_plan,
)
from repro.engine.plane import BatchPlane, indices_between
from repro.engine.reference import ReferenceEngine
from repro.engine.sharded import ShardedEngine
from repro.engine.vector import VectorEngine
from repro.errors import ConfigurationError

#: Engines selectable by name (CLI flags, DidoSystem's ``engine=`` knob).
ENGINE_NAMES = (
    "auto",
    "serial",
    "stealing",
    "reference",
    "vector",
    "sharded",
    "procshard",
)


def resolve_engine(engine, *, dedup: bool = False, hot_cache: bool = True):
    """Map an engine selector to a backend instance.

    ``None``/"auto" returns None (the pipeline picks per batch: stealing
    when the config wants it, serial otherwise); a backend instance passes
    through unchanged (its own flags win); a known name constructs the
    backend with the skew-aware hot-path flags — except "reference", the
    per-query ground truth, which never dedups or cache-serves.
    """
    if engine is None or engine == "auto":
        return None
    if isinstance(engine, str):
        if engine == "reference":
            return ReferenceEngine()
        if engine == "sharded":
            return ShardedEngine(
                VectorEngine(dedup=dedup, hot_cache=hot_cache), dedup=dedup
            )
        if engine == "procshard":
            # Imported lazily: the procshard module pulls in
            # multiprocessing machinery nothing else needs.
            from repro.engine.procshard import ProcShardEngine

            return ProcShardEngine(dedup=dedup, hot_cache=hot_cache)
        factory = {
            "serial": SerialEngine,
            "stealing": StealingEngine,
            "vector": VectorEngine,
        }.get(engine)
        if factory is None:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        return factory(dedup=dedup, hot_cache=hot_cache)
    if hasattr(engine, "run"):
        return engine
    raise ConfigurationError(f"engine must be a name or a backend, got {engine!r}")


__all__ = [
    "BOUNDARY_TASKS",
    "BatchPlane",
    "ENGINE_NAMES",
    "INDEX_OP_PRIORITY",
    "PhaseKind",
    "PlanPhase",
    "ReferenceEngine",
    "SerialEngine",
    "ShardedEngine",
    "StagePlan",
    "StealingEngine",
    "VectorEngine",
    "compile_stage_plan",
    "indices_between",
    "resolve_engine",
]
