"""ReferenceEngine: the pre-engine per-query execution path.

Before the batch-columnar engine existed, the functional pipeline executed
one Python method call per query per phase.  This backend preserves that
path exactly — same store-call sequence, same bookkeeping — but driven by
the same compiled :class:`~repro.engine.plan.StagePlan`, so stage semantics
still live in exactly one module.  It serves two purposes:

* **ground truth** for the engine-equivalence property tests: every legal
  configuration must produce byte-identical response frames through the
  columnar engines and through this per-query path;
* **baseline** for ``benchmarks/bench_functional_throughput.py``, which
  reports the columnar engines' speedup over per-query dispatch.
"""

from __future__ import annotations

import time

from repro.core.tasks import IndexOp, Task
from repro.core.work_stealing import TagArray
from repro.engine.backends import (
    DELETED_RESPONSE,
    NOT_FOUND_RESPONSE,
    STORED_RESPONSE,
    _credit,
)
from repro.engine.plan import PhaseKind, PlanPhase, StagePlan
from repro.engine.plane import BatchPlane
from repro.hardware.specs import ProcessorKind
from repro.kv.protocol import QueryType, Response, ResponseStatus
from repro.kv.store import KVStore


class ReferenceEngine:
    """Per-query scalar execution of a StagePlan (one call per query)."""

    name = "reference"

    def run(
        self,
        store: KVStore,
        plan: StagePlan,
        plane: BatchPlane,
        *,
        epoch: int = 0,
        task_times: dict[Task, float] | None = None,
    ) -> dict[str, int]:
        claims: dict[str, int] = {}
        config = plan.config
        for stage_index, stage in enumerate(config.stages):
            steal = (
                config.work_stealing
                and stage.processor is ProcessorKind.GPU
                and plane.size > 0
            )
            for phase in plan.stage_phases(stage_index):
                if phase.kind is PhaseKind.BOUNDARY:
                    continue
                step = self._step_for(phase)
                t0 = time.perf_counter() if task_times is not None else 0.0
                if steal:
                    self._run_phase_stolen(store, plane, step, claims, epoch)
                else:
                    for i in range(plane.size):
                        step(store, plane, i, epoch)
                _credit(task_times, phase.task, t0)
        return claims

    def _run_phase_stolen(self, store, plane, step, claims, epoch) -> None:
        tags = TagArray(plane.size)
        turn = 0
        while True:
            if turn % 3 == 2:
                claimed = tags.claim_next("cpu", reverse=True)
                owner = "cpu"
            else:
                claimed = tags.claim_next("gpu")
                owner = "gpu"
            if claimed is None:
                break
            claims[owner] = claims.get(owner, 0) + 1
            for i in claimed:
                step(store, plane, i, epoch)
            turn += 1

    # ------------------------------------------------------- per-query steps

    def _step_for(self, phase: PlanPhase):
        if phase.kind is PhaseKind.INDEX_OP:
            return {
                IndexOp.SEARCH: self._op_search,
                IndexOp.INSERT: self._op_insert,
                IndexOp.DELETE: self._op_delete,
            }[phase.op]
        return {
            Task.MM: self._task_mm,
            Task.KC: self._task_kc,
            Task.RD: self._task_rd,
            Task.WR: self._task_wr,
        }[phase.task]

    @staticmethod
    def _displaced(plane: BatchPlane, index: int, key: bytes, location: int | None) -> None:
        earlier = plane.batch_inserts.pop(key, None)
        if earlier is not None and plane.pending_inserts[earlier] is not None:
            plane.pending_inserts[earlier] = None
        else:
            deletes = plane.pending_deletes[index]
            if deletes is None:
                deletes = plane.pending_deletes[index] = []
            deletes.append((key, location))

    def _task_mm(self, store, plane, i, epoch) -> None:
        if plane.qtypes[i] is not QueryType.SET:
            return
        key = plane.keys[i]
        outcome = store.allocate(key, plane.set_values[i])
        plane.locations[i] = outcome.location
        plane.pending_inserts[i] = (key, outcome.location)
        if outcome.replaced is not None:
            self._displaced(plane, i, key, outcome.replaced_location)
        if outcome.evicted is not None:
            self._displaced(plane, i, outcome.evicted.key, outcome.evicted_location)
        plane.batch_inserts[key] = i

    @staticmethod
    def _op_search(store, plane, i, epoch) -> None:
        if plane.qtypes[i] is not QueryType.SET:
            plane.candidates[i] = store.index_search(plane.keys[i])

    @staticmethod
    def _op_insert(store, plane, i, epoch) -> None:
        entry = plane.pending_inserts[i]
        if entry is None:
            return
        key, location = entry
        store.index_insert(key, location)
        plane.pending_inserts[i] = None

    @staticmethod
    def _op_delete(store, plane, i, epoch) -> None:
        if plane.qtypes[i] is QueryType.DELETE:
            key = plane.keys[i]
            earlier = plane.batch_inserts.pop(key, None)
            if earlier is not None:
                plane.pending_inserts[earlier] = None
            removed = store.delete(key)
            plane.responses[i] = DELETED_RESPONSE if removed else NOT_FOUND_RESPONSE
            return
        stale = plane.pending_deletes[i]
        if stale:
            for key, location in stale:
                store.index_delete(key, location)
            plane.pending_deletes[i] = None

    @staticmethod
    def _task_kc(store, plane, i, epoch) -> None:
        if plane.qtypes[i] is not QueryType.GET:
            return
        plane.locations[i] = store.key_compare(plane.keys[i], plane.candidates[i])

    @staticmethod
    def _task_rd(store, plane, i, epoch) -> None:
        if plane.qtypes[i] is not QueryType.GET or plane.locations[i] is None:
            return
        plane.read_values[i] = store.read_value(plane.locations[i], epoch=epoch)

    @staticmethod
    def _task_wr(store, plane, i, epoch) -> None:
        if plane.responses[i] is not None:
            return  # DELETE already answered
        qtype = plane.qtypes[i]
        if qtype is QueryType.GET:
            value = plane.read_values[i]
            if value is None:
                plane.responses[i] = NOT_FOUND_RESPONSE
            else:
                plane.responses[i] = Response(ResponseStatus.OK, value)
        elif qtype is QueryType.SET:
            plane.responses[i] = STORED_RESPONSE
        else:
            plane.responses[i] = NOT_FOUND_RESPONSE
