"""Engine backends: whole-batch columnar execution of a compiled StagePlan.

An engine takes a :class:`~repro.engine.plan.StagePlan` and a
:class:`~repro.engine.plane.BatchPlane` and runs each compiled phase as one
bulk pass over the store — :meth:`~repro.kv.store.KVStore.multi_index_search`,
:meth:`~repro.kv.store.KVStore.multi_key_compare` and friends — instead of
one Python call per query per phase.  Batch semantics match GPU batch
processing: a phase is applied to every applicable query before the next
phase starts, exactly as in Mega-KV's staged kernels.

Two backends:

* :class:`SerialEngine` — each phase is one pass over the phase's
  applicable index subset, in query order;
* :class:`StealingEngine` — phases of a GPU stage (when the config enables
  work stealing) are split into wavefront-sized claim sets through the
  :class:`~repro.core.work_stealing.TagArray`: a "gpu" owner claims sets
  from the head and a "cpu" helper steals from the tail, demonstrating the
  exactly-once claim discipline functionally.  Chunking happens *within* a
  phase — every claim set of one phase completes before the next phase
  starts — so stealing cannot reorder passes and results are identical to
  the unstolen execution.

A third backend, :class:`~repro.engine.reference.ReferenceEngine`,
preserves the pre-engine per-query execution path for equivalence testing
and as the benchmark baseline.
"""

from __future__ import annotations

import time

from repro.core.tasks import IndexOp, Task
from repro.core.work_stealing import TagArray
from repro.engine.hotpath import prepare_hot_path
from repro.engine.plan import PhaseKind, PlanPhase, StagePlan
from repro.engine.plane import BatchPlane, indices_between
from repro.errors import ConfigurationError
from repro.hardware.specs import ProcessorKind
from repro.kv.protocol import QueryType, Response, ResponseStatus
from repro.kv.store import KVStore

#: Shared immutable response singletons for the value-less statuses; GET
#: hits still allocate (they carry the value).  Nothing in the pipeline or
#: the wire encoder mutates responses, so sharing is safe and saves one
#: object construction per SET/DELETE/miss.
STORED_RESPONSE = Response(ResponseStatus.STORED)
DELETED_RESPONSE = Response(ResponseStatus.DELETED)
NOT_FOUND_RESPONSE = Response(ResponseStatus.NOT_FOUND)


def _credit(task_times: dict[Task, float] | None, task: Task, t0: float) -> None:
    """Add the elapsed time since ``t0`` to ``task``'s running total."""
    if task_times is not None:
        elapsed_us = (time.perf_counter() - t0) * 1e6
        task_times[task] = task_times.get(task, 0.0) + elapsed_us


class SerialEngine:
    """Whole-batch columnar execution, one pass per phase.

    Parameters
    ----------
    dedup:
        Collapse each batch's duplicate GET runs to one index probe + one
        value read per run, scattering results back after RD (see
        :mod:`repro.engine.hotpath`).  Off by default: the default path
        stays bit-for-bit the pre-dedup engine, including store counters.
    hot_cache:
        Allow serving GETs from the store's attached
        :class:`~repro.kv.hotcache.HotKeyCache` (when one is attached and
        gated active).  Enabled by default — with no cache attached it is
        inert — and turned off by the sharded engine on inner engines it
        feeds already-reduced sub-batches.
    """

    name = "serial"

    def __init__(self, *, dedup: bool = False, hot_cache: bool = True):
        self.dedup = dedup
        self.use_hot_cache = hot_cache

    # ------------------------------------------------------------------ run

    def prepare(self, store: KVStore, plane: BatchPlane) -> None:
        """Attach the batch's hot-path state (dedup/cache) when enabled."""
        if plane.hotpath is None and (self.dedup or self.use_hot_cache):
            plane.hotpath = prepare_hot_path(
                store, plane, dedup=self.dedup, use_cache=self.use_hot_cache
            )

    def run(
        self,
        store: KVStore,
        plan: StagePlan,
        plane: BatchPlane,
        *,
        epoch: int = 0,
        task_times: dict[Task, float] | None = None,
    ) -> dict[str, int]:
        """Execute every non-boundary phase; returns steal-claim counts."""
        self.prepare(store, plane)
        hotpath = plane.hotpath
        if hotpath is not None:
            hotpath.epoch = epoch
        for phase in plan.phases:
            if phase.kind is PhaseKind.BOUNDARY:
                continue
            t0 = time.perf_counter() if task_times is not None else 0.0
            self._execute(store, plane, phase, self.phase_indices(plane, phase), epoch)
            _credit(task_times, phase.task, t0)
            if (
                hotpath is not None
                and phase.kind is PhaseKind.TASK
                and phase.task is Task.RD
            ):
                # All representative reads are in: scatter values/responses
                # to duplicate rows and admit hot values before WR runs.
                hotpath.finish(plane)
        return {}

    # ----------------------------------------------------------- dispatch

    @staticmethod
    def phase_indices(plane: BatchPlane, phase: PlanPhase):
        """The query indices a phase applies to (sorted ascending).

        With a hot path attached, Search/KC/RD see only the *live* rows:
        duplicates collapse to their run representative and cache-served
        rows skip the index entirely.  Write-side phases (MM, Insert,
        Delete) and WR always see their full subsets.
        """
        if phase.kind is PhaseKind.INDEX_OP:
            if phase.op is IndexOp.SEARCH:
                hotpath = plane.hotpath
                if hotpath is not None and hotpath.search_live is not None:
                    return hotpath.search_live
                return plane.search_indices
            if phase.op is IndexOp.INSERT:
                return plane.set_indices
            return plane.mutation_indices
        task = phase.task
        if task is Task.MM:
            return plane.set_indices
        if task in (Task.KC, Task.RD):
            hotpath = plane.hotpath
            if hotpath is not None and hotpath.get_live is not None:
                return hotpath.get_live
            return plane.get_indices
        if task is Task.WR:
            return plane.all_indices
        raise ConfigurationError(f"phase {phase.label} is not executable")

    def _execute(self, store, plane, phase: PlanPhase, indices, epoch: int) -> None:
        if phase.kind is PhaseKind.INDEX_OP:
            if phase.op is IndexOp.SEARCH:
                self._pass_search(store, plane, indices)
            elif phase.op is IndexOp.INSERT:
                self._pass_insert(store, plane, indices)
            else:
                self._pass_delete(store, plane, indices)
        elif phase.task is Task.MM:
            self._pass_mm(store, plane, indices)
        elif phase.task is Task.KC:
            self._pass_kc(store, plane, indices)
        elif phase.task is Task.RD:
            self._pass_rd(store, plane, indices, epoch)
        else:
            self._pass_wr(plane, indices)

    # --------------------------------------------------------------- passes

    @staticmethod
    def _displaced(plane: BatchPlane, index: int, key: bytes, location: int | None) -> None:
        """Record index cleanup for an object displaced by query ``index``.

        If the displaced version was itself SET earlier in this batch, its
        Insert has not executed yet — cancel it instead of queueing a
        Delete for an entry that will never exist.
        """
        earlier = plane.batch_inserts.pop(key, None)
        if earlier is not None and plane.pending_inserts[earlier] is not None:
            plane.pending_inserts[earlier] = None
        else:
            deletes = plane.pending_deletes[index]
            if deletes is None:
                deletes = plane.pending_deletes[index] = []
            deletes.append((key, location))

    def _pass_mm(self, store: KVStore, plane: BatchPlane, indices) -> None:
        if not indices:
            return
        keys = plane.keys
        values = plane.set_values
        locations = plane.locations
        pending = plane.pending_inserts
        batch_inserts = plane.batch_inserts
        displaced = self._displaced
        mm_columns = getattr(store, "multi_allocate_columns", None)
        if mm_columns is None:
            columns = None
        elif len(indices) == len(keys):
            # All-SET batch: the phase covers every row in order, so the
            # plane's own columns go straight through without a gather.
            columns = mm_columns(keys, values)
        else:
            columns = mm_columns(
                [keys[i] for i in indices], [values[i] for i in indices]
            )
        if columns is not None:
            # Columnar fast path (bulk-alloc heaps): one arena append for
            # the run, replace locations as a parallel column, no eviction
            # outcomes to unpack.  Settled items had their Insert+Delete
            # pair applied in place at MM time, so they queue no pending
            # index work (and need no batch_inserts entry — there is no
            # pending Insert a later displacement would have to cancel).
            new_locations, replaced, settled = columns
            for i, location, old_location, done in zip(
                indices, new_locations, replaced, settled
            ):
                key = keys[i]
                locations[i] = location
                if done:
                    pending[i] = None
                    continue
                pending[i] = (key, location)
                if old_location is not None:
                    displaced(plane, i, key, old_location)
                batch_inserts[key] = i
            return
        outcomes = store.multi_allocate([(keys[i], values[i]) for i in indices])
        for i, outcome in zip(indices, outcomes):
            key = keys[i]
            locations[i] = outcome.location
            pending[i] = (key, outcome.location)
            if outcome.replaced is not None:
                displaced(plane, i, key, outcome.replaced_location)
            if outcome.evicted is not None:
                displaced(plane, i, outcome.evicted.key, outcome.evicted_location)
            batch_inserts[key] = i

    @staticmethod
    def _pass_search(store: KVStore, plane: BatchPlane, indices) -> None:
        if not indices:
            return
        keys = plane.keys
        found = store.multi_index_search([keys[i] for i in indices])
        candidates = plane.candidates
        for i, candidate_list in zip(indices, found):
            candidates[i] = candidate_list

    @staticmethod
    def _pass_insert(store: KVStore, plane: BatchPlane, indices) -> None:
        pending = plane.pending_inserts
        entries: list[tuple[bytes, int]] = []
        live: list[int] = []
        for i in indices:
            entry = pending[i]
            if entry is not None:
                entries.append(entry)
                live.append(i)
        if entries:
            store.multi_index_insert(entries)
            for i in live:
                pending[i] = None

    @staticmethod
    def _pass_delete(store: KVStore, plane: BatchPlane, indices) -> None:
        qtypes = plane.qtypes
        keys = plane.keys
        responses = plane.responses
        pending_deletes = plane.pending_deletes
        batch_inserts = plane.batch_inserts
        pending_inserts = plane.pending_inserts
        delete = store.delete
        delete_qtype = QueryType.DELETE
        for i in indices:
            if qtypes[i] is delete_qtype:
                # Cancel any not-yet-executed Insert for this key from
                # earlier in the batch (its entry must never appear).
                earlier = batch_inserts.pop(keys[i], None)
                if earlier is not None:
                    pending_inserts[earlier] = None
                removed = delete(keys[i])
                responses[i] = DELETED_RESPONSE if removed else NOT_FOUND_RESPONSE
            else:
                stale = pending_deletes[i]
                if stale:
                    store.multi_index_delete(stale)
                    pending_deletes[i] = None

    @staticmethod
    def _pass_kc(store: KVStore, plane: BatchPlane, indices) -> None:
        if not indices:
            return
        keys = plane.keys
        candidates = plane.candidates
        matches = store.multi_key_compare(
            [keys[i] for i in indices], [candidates[i] for i in indices]
        )
        locations = plane.locations
        for i, location in zip(indices, matches):
            locations[i] = location

    @staticmethod
    def _pass_rd(store: KVStore, plane: BatchPlane, indices, epoch: int) -> None:
        if not indices:
            return
        locations = plane.locations
        hotpath = plane.hotpath
        counts = None
        if hotpath is not None and hotpath.dups:
            # A representative read answers its whole run; credit the full
            # multiplicity to the object's profiler access counter.
            dup_lookup = hotpath.dups.get
            counts = [1 + len(dup_lookup(i, ())) for i in indices]
        values = store.multi_read_value(
            [locations[i] for i in indices], epoch=epoch, counts=counts
        )
        read_values = plane.read_values
        for i, value in zip(indices, values):
            read_values[i] = value

    @staticmethod
    def _pass_wr(plane: BatchPlane, indices) -> None:
        hotpath = plane.hotpath
        if hotpath is not None:
            # Normally a no-op (the run loop finishes after RD); covers
            # engines that reach WR without the standard phase loop.
            hotpath.finish(plane)
        qtypes = plane.qtypes
        responses = plane.responses
        read_values = plane.read_values
        get_qtype, set_qtype = QueryType.GET, QueryType.SET
        ok = ResponseStatus.OK
        for i in indices:
            if responses[i] is not None:
                continue  # DELETE (or a hot-path pre-fill) already answered
            qtype = qtypes[i]
            if qtype is get_qtype:
                value = read_values[i]
                if value is None:
                    responses[i] = NOT_FOUND_RESPONSE
                else:
                    responses[i] = Response(ok, value)
            elif qtype is set_qtype:
                responses[i] = STORED_RESPONSE
            else:
                responses[i] = NOT_FOUND_RESPONSE


class StealingEngine(SerialEngine):
    """Dual-executor engine: GPU-stage phases split via the TagArray.

    The GPU-eligible span of a stage is executed by two logical executors
    ("gpu" owner claiming sets from the head, "cpu" helper from the tail)
    through the :class:`~repro.core.work_stealing.TagArray`'s exactly-once
    claim discipline.  Non-GPU stages (and everything when stealing is off)
    fall back to the serial passes.
    """

    name = "stealing"

    def run(
        self,
        store: KVStore,
        plan: StagePlan,
        plane: BatchPlane,
        *,
        epoch: int = 0,
        task_times: dict[Task, float] | None = None,
    ) -> dict[str, int]:
        claims: dict[str, int] = {}
        config = plan.config
        self.prepare(store, plane)
        hotpath = plane.hotpath
        if hotpath is not None:
            hotpath.epoch = epoch
        for stage_index, stage in enumerate(config.stages):
            steal = (
                config.work_stealing
                and stage.processor is ProcessorKind.GPU
                and plane.size > 0
            )
            for phase in plan.stage_phases(stage_index):
                if phase.kind is PhaseKind.BOUNDARY:
                    continue
                indices = self.phase_indices(plane, phase)
                t0 = time.perf_counter() if task_times is not None else 0.0
                if steal:
                    self._run_phase_stolen(store, plane, phase, indices, epoch, claims)
                else:
                    self._execute(store, plane, phase, indices, epoch)
                _credit(task_times, phase.task, t0)
                if (
                    hotpath is not None
                    and phase.kind is PhaseKind.TASK
                    and phase.task is Task.RD
                ):
                    # Between phases, never inside a stolen chunk: a
                    # duplicate's WR chunk may precede its representative's,
                    # so the scatter must complete before WR starts.
                    hotpath.finish(plane)
        return claims

    def _run_phase_stolen(
        self, store, plane, phase: PlanPhase, indices, epoch: int, claims: dict[str, int]
    ) -> None:
        """Split one phase's queries between owner and helper via tags.

        Deterministic interleave: the owner takes two sets for each one the
        helper steals (a stand-in for the runtime race; correctness does
        not depend on the split).
        """
        tags = TagArray(plane.size)
        turn = 0
        while True:
            if turn % 3 == 2:
                claimed = tags.claim_next("cpu", reverse=True)
                owner = "cpu"
            else:
                claimed = tags.claim_next("gpu")
                owner = "gpu"
            if claimed is None:
                break
            claims[owner] = claims.get(owner, 0) + 1
            chunk = indices_between(indices, claimed.start, claimed.stop)
            if chunk:
                self._execute(store, plane, phase, chunk, epoch)
            turn += 1
