"""StagePlan: the single compiled form of a pipeline's stage semantics.

The paper's central claim is that the *same* eight tasks can be regrouped
arbitrarily across processors.  This module is where that regrouping is
decided — once, for both execution planes.  :func:`compile_stage_plan`
turns a :class:`~repro.core.pipeline_config.PipelineConfig` into an ordered
list of whole-batch *phases*: each phase is one pass of one task (or one
index operation) over the batch, in the exact order the pipeline executes
them.  The functional plane's engines (:mod:`repro.engine.backends`) run
the phases against real data structures; the analytical plane's
:class:`~repro.core.cost_model.PipelineAnalyzer` derives its per-stage task
demands from the same phases — so the phase-ordering and
index-op-priority rules exist in exactly one place.

The ordering rules compiled here (formerly buried in
``FunctionalPipeline._stage_phases``):

* RV, PP and SD are *boundary* phases: the functional plane performs them
  at batch entry/exit (frame parsing, context build, response framing),
  the analytical plane costs them like any other task;
* within a stage, index operations run stale-entry Deletes first, then
  Inserts, then Searches — so a GET in the same batch as its SET observes
  the new entry (batch read-your-write);
* Insert/Delete operations reassigned to the CPU prefix stage (flexible
  index-operation assignment, paper Section III-B2) run right after their
  producer MM and are attributed to it; Search never lives in a stage
  without the IN task.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.pipeline_config import PipelineConfig
from repro.core.tasks import IndexOp, Task

#: Execution order of index operations within a stage (Deletes, Inserts,
#: Searches) — the batch read-your-write discipline.
INDEX_OP_PRIORITY: dict[IndexOp, int] = {
    IndexOp.DELETE: 0,
    IndexOp.INSERT: 1,
    IndexOp.SEARCH: 2,
}

#: Tasks handled at batch entry/exit on the functional plane.
BOUNDARY_TASKS: frozenset[Task] = frozenset({Task.RV, Task.PP, Task.SD})


class PhaseKind(enum.Enum):
    """What a compiled phase does on the functional plane."""

    #: Batch entry/exit work (RV/PP/SD); timing-only for the engines.
    BOUNDARY = "boundary"
    #: A whole-batch pass of one task (MM, KC, RD, WR).
    TASK = "task"
    #: A whole-batch pass of one index operation (Search/Insert/Delete).
    INDEX_OP = "index_op"


@dataclass(frozen=True)
class PlanPhase:
    """One whole-batch pass.

    ``task`` is the task the phase's time is attributed to (telemetry spans
    and the cost model's per-task demands): index-op phases hosted by the
    CPU prefix stage are attributed to MM, their producer; index-op phases
    in an IN-bearing stage are attributed to IN.
    """

    task: Task
    kind: PhaseKind
    stage_index: int
    op: IndexOp | None = None

    @property
    def label(self) -> str:
        if self.op is not None:
            return f"{self.task.name}/{self.op.value}"
        return self.task.name


@dataclass(frozen=True)
class StagePlan:
    """A compiled pipeline: the config plus its ordered phases."""

    config: PipelineConfig
    phases: tuple[PlanPhase, ...]

    def stage_phases(self, stage_index: int) -> tuple[PlanPhase, ...]:
        """The phases belonging to one stage, in execution order."""
        return tuple(p for p in self.phases if p.stage_index == stage_index)

    def batch_phases(self) -> tuple[PlanPhase, ...]:
        """The phases an engine executes (everything but the boundaries)."""
        return tuple(p for p in self.phases if p.kind is not PhaseKind.BOUNDARY)

    @property
    def label(self) -> str:
        return self.config.label


#: Compiled plans keyed by config; configs are frozen dataclasses, so a
#: plan is immutable and safely shared across batches and engines.
_PLAN_CACHE: dict[PipelineConfig, StagePlan] = {}


def compile_stage_plan(config: PipelineConfig) -> StagePlan:
    """Compile (and memoise) the phase list for ``config``."""
    cached = _PLAN_CACHE.get(config)
    if cached is not None:
        return cached
    phases: list[PlanPhase] = []
    for stage_index, stage in enumerate(config.stages):
        ordered_ops = sorted(stage.index_ops, key=INDEX_OP_PRIORITY.__getitem__)
        for task in stage.tasks:
            if task in BOUNDARY_TASKS:
                phases.append(PlanPhase(task, PhaseKind.BOUNDARY, stage_index))
            elif task is Task.MM:
                phases.append(PlanPhase(task, PhaseKind.TASK, stage_index))
                if Task.IN not in stage.tasks:
                    # Insert/Delete reassigned to this CPU stage run right
                    # after their producer (MM); Search never lives here
                    # without the IN task.
                    for op in ordered_ops:
                        if op is not IndexOp.SEARCH:
                            phases.append(
                                PlanPhase(task, PhaseKind.INDEX_OP, stage_index, op)
                            )
            elif task is Task.IN:
                for op in ordered_ops:
                    phases.append(PlanPhase(task, PhaseKind.INDEX_OP, stage_index, op))
            else:  # KC, RD, WR
                phases.append(PlanPhase(task, PhaseKind.TASK, stage_index))
    plan = StagePlan(config=config, phases=tuple(phases))
    if len(_PLAN_CACHE) > 512:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[config] = plan
    return plan
