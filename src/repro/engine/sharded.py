"""ShardedEngine: split each batch by shard and execute in parallel.

The counterpart to :class:`~repro.kv.sharding.ShardedKVStore`: the engine
computes every query's shard with the same vectorized seed-0 FNV hash the
store's :func:`~repro.kv.sharding.shard_of` uses, carves the batch's
queries into per-shard sub-batches (each its own
:class:`~repro.engine.plane.BatchPlane`, preserving intra-shard query
order and therefore the batch read-your-write discipline), runs each
sub-batch through an inner engine against its shard's *plain*
:class:`~repro.kv.store.KVStore` on a persistent worker pool (sized to
the machine's cores; sub-batches run inline on a single core, where
threads would only add switching overhead), and scatters the response
(and response-size) columns back into batch order.

Shards share nothing — no index buckets, no slabs, no stats objects — so
the sub-batches are free to run concurrently; the inner engine defaults to
:class:`~repro.engine.vector.VectorEngine`, which also releases chunks of
the interpreter's time to NumPy, so the pool gets real overlap on top of
the per-shard kernel win.  On a plain (unsharded) store the engine
degrades to running the inner engine on the whole batch.

Each run reports a ``repro_shard_imbalance`` gauge — the largest
sub-batch relative to the ideal even split (1.0 = perfectly balanced) —
so skewed workloads that defeat the partitioning are visible in
``repro telemetry``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

from repro.engine.hotpath import (
    HotPathState,
    _NOT_FOUND,
    _written_positions,
    dedup_batch_keys,
)
from repro.engine.plane import BatchPlane
from repro.engine.vector import VectorEngine, fnv_hash_columns
from repro.kv.protocol import Response, ResponseStatus
from repro.kv.sharding import ShardedKVStore, shard_of
from repro.net.wire import QueryColumns
from repro.telemetry import get_telemetry

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Upper bound on pool size; shards beyond this share workers.
MAX_WORKERS = 8


class ShardedEngine:
    """Partition each batch across a :class:`ShardedKVStore`'s shards.

    Parameters
    ----------
    inner:
        Engine executed per shard sub-batch (default: a
        :class:`~repro.engine.vector.VectorEngine`, inheriting ``dedup``).
        Engines are stateless across runs, so one instance serves all
        workers.
    dedup:
        Collapse duplicate GET runs *before* the shard split (see
        :mod:`repro.engine.hotpath`): a hot key's duplicates never reach
        its shard's sub-batch, so skew stops concentrating rows on one
        shard.  Representative results are scattered back to duplicate
        rows after the merge.  Per-shard hot-key caches (attached via
        :meth:`~repro.kv.sharding.ShardedKVStore.attach_hot_cache`) are
        served at this level too: an unwritten multi-run is answered from
        the owning shard's cache before the split (one probe per run, so
        any cache size pays off), re-validated at merge time against
        mid-batch eviction; this engine also feeds the caches' admissions,
        since after pre-split dedup the inner engines only ever see
        multiplicity-1 runs (which they probe themselves only against a
        keyspace-scale cache).
    """

    name = "sharded"

    def __init__(self, inner=None, *, dedup: bool = False):
        self._inner = inner if inner is not None else VectorEngine(dedup=dedup)
        self.dedup = dedup
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0

    def _ensure_pool(self, num_shards: int) -> ThreadPoolExecutor | None:
        """The worker pool, or ``None`` when threads cannot help.

        Sub-batches run inline on single-core machines: a pool of one
        (or GIL-timesliced workers on one core) adds submit/wake-up
        overhead without any overlap to pay for it.

        The pool is sized to the *current* shard count, never beyond it:
        an engine reused against a store with a different shard count
        (the same engine instance serves whatever plane it is handed)
        re-creates the pool rather than keeping a stale worker count —
        extra threads beyond the shard count only add GIL contention.
        """
        workers = min(num_shards, MAX_WORKERS, os.cpu_count() or 1)
        if workers <= 1:
            return None
        if self._pool is not None and self._pool_workers != workers:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-shard",
            )
            self._pool_workers = workers
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (tests and long-lived servers)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _assign_shards(self, keys: list[bytes], num_shards: int) -> list[int]:
        """Per-query shard ids, vectorized when NumPy is available."""
        if np is not None:
            states = fnv_hash_columns(keys, 1)
            return (states[0] % np.uint64(num_shards)).astype(np.intp).tolist()
        return [shard_of(key, num_shards) for key in keys]

    def run(
        self,
        store,
        plan,
        plane: BatchPlane,
        *,
        epoch: int = 0,
        task_times=None,
    ) -> dict[str, int]:
        if not isinstance(store, ShardedKVStore) or store.num_shards == 1:
            target = store.shards[0] if isinstance(store, ShardedKVStore) else store
            return self._inner.run(
                target, plan, plane, epoch=epoch, task_times=task_times
            )
        num_shards = store.num_shards
        assignment = self._assign_shards(plane.keys, num_shards)
        hotpath = dedup_batch_keys(plane) if self.dedup else None
        # Serve unwritten multi-runs straight from the owning shard's hot
        # cache at the pre-split level, where the run's multiplicity is
        # known: one dict probe answers the whole run, so serving pays off
        # at any cache size (the inner engines' capacity-gated singleton
        # probe only kicks in for keyspace-scale caches).  Captures are
        # provisional — a SET inside the batch can slab-evict a served key
        # mid-batch, so each group is re-validated at merge time below.
        served_groups: list[tuple[list[int], bytes, tuple, int]] = []
        if hotpath is not None and hotpath.dups:
            caches = [shard.hot_cache for shard in store.shards]
            if any(c is not None and c.active for c in caches):
                keys_col = plane.keys
                written = _written_positions(plane)
                for rep in list(hotpath.dups):
                    key = keys_col[rep]
                    if written is not None and key in written:
                        continue
                    cache = caches[assignment[rep]]
                    if cache is None or not cache.active:
                        continue
                    dup_rows = hotpath.dups[rep]
                    count = 1 + len(dup_rows)
                    entry = cache.lookup_entry(key, count)
                    if entry is None:
                        hotpath.cache_misses += count
                        continue
                    served_groups.append(
                        ([rep, *dup_rows], key, entry, assignment[rep])
                    )
                    hotpath.cache_hits += count
                    del hotpath.dups[rep]
                    hotpath.excluded.add(rep)
                if served_groups:
                    # Served keys are already resident; dropping their
                    # queued admissions avoids a snapshot rebuild per batch.
                    resident = {key for _rows, key, _e, _s in served_groups}
                    hotpath.admissions = [
                        (rep, key)
                        for rep, key in hotpath.admissions
                        if key not in resident
                    ]
        shard_rows: list[list[int]] = [[] for _ in range(num_shards)]
        if hotpath is not None and hotpath.dup_count:
            # Duplicate rows stay out of every sub-batch; their run's
            # representative (same key, hence same shard) answers for them.
            excluded = hotpath.excluded
            for row, shard in enumerate(assignment):
                if row not in excluded:
                    shard_rows[shard].append(row)
        else:
            for row, shard in enumerate(assignment):
                shard_rows[shard].append(row)

        inner = self._inner
        sub_planes: list[tuple[list[int], BatchPlane]] = []
        qtypes, keys, set_values = plane.qtypes, plane.keys, plane.set_values

        def run_shard(shard_idx: int, rows: list[int]) -> BatchPlane:
            # Sub-batches are carved straight from the plane's columns
            # (works for wire-decoded batches, which carry no Query
            # objects at all).
            sub = BatchPlane(
                QueryColumns(
                    [qtypes[r] for r in rows],
                    [keys[r] for r in rows],
                    [set_values[r] for r in rows],
                )
            )
            inner.run(store.shards[shard_idx], plan, sub, epoch=epoch)
            return sub

        pool = self._ensure_pool(num_shards)
        if pool is None:
            for shard_idx, rows in enumerate(shard_rows):
                if rows:
                    sub_planes.append((rows, run_shard(shard_idx, rows)))
        else:
            futures = []
            for shard_idx, rows in enumerate(shard_rows):
                if rows:
                    futures.append((rows, pool.submit(run_shard, shard_idx, rows)))
            for rows, future in futures:
                sub_planes.append((rows, future.result()))

        responses = plane.responses
        read_values = plane.read_values
        sizes: list[int] | None = [0] * plane.size
        statuses: list[int] | None = [0] * plane.size
        for rows, sub in sub_planes:
            sub_responses = sub.responses
            sub_reads = sub.read_values
            for local, row in enumerate(rows):
                responses[row] = sub_responses[local]
                read_values[row] = sub_reads[local]
            if sub.response_sizes is None:
                sizes = None
            elif sizes is not None:
                sub_sizes = sub.response_sizes
                for local, row in enumerate(rows):
                    sizes[row] = sub_sizes[local]
            if sub.response_statuses is None:
                statuses = None
            elif statuses is not None:
                sub_statuses = sub.response_statuses
                for local, row in enumerate(rows):
                    statuses[row] = sub_statuses[local]
        for rows, key, entry, shard_idx in served_groups:
            # Re-validate the captured snapshot (identity + version) before
            # scattering: a SET routed to the same shard may have evicted
            # or rewritten the key while the sub-batches ran.  A dead
            # capture falls back to a direct index read on the owning
            # shard, which post-MM resolves exactly as the plain path
            # would (NOT_FOUND for a slab-evicted key).
            shard = store.shards[shard_idx]
            cache = shard.hot_cache
            value, version, resp = entry
            if (
                cache._entries.get(key) is not entry
                or cache._versions.get(key, 0) != version
            ):
                n = len(rows)
                cache.hits -= n
                cache.misses += n
                hotpath.cache_hits -= n
                hotpath.cache_misses += n
                hotpath.revalidations += 1
                location = shard.multi_key_compare(
                    [key], [shard.multi_index_search([key])[0]]
                )[0]
                value = shard.multi_read_value(
                    [location], epoch=epoch, counts=[n]
                )[0]
                resp = _NOT_FOUND if value is None else Response(ResponseStatus.OK, value)
            for r in rows:
                responses[r] = resp
                read_values[r] = value
            if sizes is not None:
                size = resp.wire_size
                for r in rows:
                    sizes[r] = size
            if statuses is not None:
                code = resp.status.value
                for r in rows:
                    statuses[r] = code
        if hotpath is not None:
            # Scatter each representative's result to its duplicate rows
            # and admit qualifying values into the owning shard's cache.
            for rep, dup_rows in hotpath.dups.items():
                response = responses[rep]
                value = read_values[rep]
                for d in dup_rows:
                    responses[d] = response
                    read_values[d] = value
                if sizes is not None:
                    size = sizes[rep]
                    for d in dup_rows:
                        sizes[d] = size
                if statuses is not None:
                    status = statuses[rep]
                    for d in dup_rows:
                        statuses[d] = status
                # The shard's RD credited the run one access; restore the
                # collapsed duplicates so key popularity (and therefore
                # the skew estimate gating the hot cache) is not
                # under-reported exactly where dedup collapses the most.
                store.shards[assignment[rep]].record_extra_accesses(
                    keys[rep], len(dup_rows), epoch=epoch
                )
            for rep, key in hotpath.admissions:
                cache = store.shards[assignment[rep]].hot_cache
                if cache is not None and cache.active:
                    value = read_values[rep]
                    if value is not None:
                        cache.admit(key, value)
            hotpath.finished = True
        # Aggregate the sub-planes' cache traffic onto one state so batch
        # telemetry (dedup ratio, hit/miss counters) reads uniformly from
        # the outer plane.
        for _rows, sub in sub_planes:
            sub_hotpath = sub.hotpath
            if sub_hotpath is None:
                continue
            if hotpath is None:
                hotpath = HotPathState()
                hotpath.finished = True
            hotpath.cache_hits += sub_hotpath.cache_hits
            hotpath.cache_misses += sub_hotpath.cache_misses
        plane.hotpath = hotpath
        plane.response_sizes = sizes
        plane.response_statuses = statuses

        telemetry = get_telemetry()
        if telemetry.enabled:
            largest = max(len(rows) for rows in shard_rows)
            ideal = plane.size / num_shards
            telemetry.registry.gauge(
                "repro_shard_imbalance",
                help="Largest shard sub-batch over the ideal even split",
            ).set(largest / ideal if ideal else 0.0)
        return {}
