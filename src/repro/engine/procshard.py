"""ProcShardEngine: true shared-nothing process-per-shard execution.

:class:`~repro.engine.sharded.ShardedEngine` splits batches across shards
but runs the sub-batches on a *thread* pool — under CPython's GIL the
"parallel" backend loses to single-core vector on uniform traffic (the
BENCH_skew 0.88x row).  This module is the DINOMO-shaped fix: each shard
becomes a :class:`ShardWorker` **process** owning its own
:class:`~repro.kv.store.KVStore`, hot-key cache and dedup builder, fed
columnar sub-batches through ``multiprocessing.shared_memory`` ring
arenas (:class:`~repro.net.arena.ShmRing`) — header columns + byte arena
in, WR size columns + response-payload arena out, no pickling anywhere on
the data plane.

The split/merge shape is the sharded engine's, lifted across the process
boundary:

* the router (:class:`ProcShardEngine`) computes the batch's shard
  assignment with the same seed-0 FNV hash
  (:func:`~repro.kv.sharding.shard_of` == the vector kernel's row 0), so
  routing is bit-identical to the in-process backends;
* each worker runs a full inner engine (vector by default, with the
  worker's own dedup/hot-cache state) against its private store and
  answers with the single-pass response framer's bytes;
* the router scatters the returned status/size/value columns back into
  batch row order, so the merged stream is byte-identical to
  :class:`~repro.engine.reference.ReferenceEngine` — enforced by the
  procshard test suite and the skew-sweep benchmark.

Workers piggyback their store/index counters, per-batch hot-path stats
and a bounded frequency-harvest sample on every batch reply, so the
router-side :class:`ProcShardStore` facade presents merged
``stats``/``index`` views and feeds the workload profiler without extra
round trips.  A dead worker never wedges the serve loop: its rows are
answered with ``ERROR`` responses for that batch, the server's
maintenance tick respawns it (empty, like a rebooted cache node), and
every arena is unlinked on close/``atexit``/SIGTERM even when a worker
died mid-batch.
"""

from __future__ import annotations

import atexit
import logging
import os
import struct
import time
import traceback
import weakref
from functools import partial

from repro.errors import ConfigurationError, ReproError
from repro.kv.hashtable import IndexStats
from repro.kv.protocol import QueryType, Response, ResponseStatus
from repro.kv.sharding import shard_of
from repro.kv.store import KVStore, StoreStats
from repro.net.arena import (
    DEFAULT_RING_BYTES,
    QueryBlockColumns,
    RingClosedError,
    ShmRing,
    decode_query_block,
    decode_response_block,
    decode_response_columns,
    encode_query_block,
    encode_response_block,
)
from repro.telemetry import get_telemetry

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

logger = logging.getLogger("repro.procshard")

# --------------------------------------------------------------- wire types

MSG_BATCH = 1
MSG_POPULATE = 2
MSG_DUMP = 3
MSG_STATS = 4
MSG_RESET = 5
MSG_PING = 6
MSG_ATTACH_CACHE = 7
MSG_SHUTDOWN = 8

MSG_OK = 64
MSG_RESULT = 65
MSG_ERROR = 66

_U32 = struct.Struct("<I")
#: Per-batch header: skew, epoch, per-worker sequence number, gate flag.
#: The sequence number is echoed back in the reply head so the router can
#: detect a desynchronized ring (a reply surviving from a window the
#: router already gave up on) instead of merging the wrong window.
_BATCH_HEAD = struct.Struct("<dqIB")

#: Piggybacked counters: StoreStats(6) + IndexStats(7) + store len +
#: hot-cache hit/miss totals, as little-endian i64s.
_STATS_FIELDS = 6 + 7 + 3
_STATS_STRUCT = struct.Struct(f"<{_STATS_FIELDS}q")
_RESULT_HEAD = struct.Struct("<IIQQ")  # n, freq_count, dup_count, seq echo

#: Worker-side frequency-harvest cap per batch (mirrors the router-side
#: sample the in-process system takes from its own heap).
HARVEST_SAMPLE = 512

#: How long the router waits for one worker's batch reply before giving
#: up on it (liveness failures surface much sooner via the abort probe).
REPLY_TIMEOUT_S = 60.0

#: Double-buffer bound: how many windows may be resident per worker.  Two
#: is the pipelining sweet spot — window N+1 streams into the inbound
#: ring while the worker crunches window N — and keeps the ring-sizing
#: rule simple (each ring must hold one full window plus one reply, which
#: the doubled default capacity covers for 4096-row batches).
MAX_INFLIGHT_WINDOWS = 2

_STORED = Response(ResponseStatus.STORED)
_DELETED = Response(ResponseStatus.DELETED)
_NOT_FOUND = Response(ResponseStatus.NOT_FOUND)
_WORKER_DOWN = Response(ResponseStatus.ERROR)
_BY_CODE = {
    ResponseStatus.STORED.value: _STORED,
    ResponseStatus.DELETED.value: _DELETED,
    ResponseStatus.NOT_FOUND.value: _NOT_FOUND,
}
#: Merge-side materialization table: fill-down rows carry ERROR, which the
#: engine itself only ever produces for dead-worker rows.
_MERGE_BY_CODE = dict(_BY_CODE)
_MERGE_BY_CODE[ResponseStatus.ERROR.value] = _WORKER_DOWN


class WorkerDiedError(ReproError):
    """A shard worker process exited (or hung) mid-request."""


class WorkerFailedError(ReproError):
    """A shard worker raised while handling a request (its traceback rides
    along so the failure debugs like an in-process one)."""


def _pack_stats(store: KVStore) -> bytes:
    s = store.stats
    ix = store.index.stats
    cache = store.hot_cache
    return _STATS_STRUCT.pack(
        s.gets, s.get_hits, s.sets, s.deletes, s.delete_hits,
        s.signature_false_positives,
        ix.searches, ix.inserts, ix.deletes, ix.search_bucket_reads,
        ix.insert_bucket_writes, ix.insert_kicks, ix.failed_inserts,
        len(store),
        cache.hits if cache is not None else 0,
        cache.misses if cache is not None else 0,
    )


def _unpack_stats(buf, offset: int = 0) -> tuple:
    return _STATS_STRUCT.unpack_from(buf, offset)


# ------------------------------------------------------------- worker child


class _WorkerState:
    """Everything one shard worker owns: store, cache, engine, plan."""

    def __init__(self, config: dict):
        self.config = config
        self.store = KVStore(
            config["memory_bytes"],
            config["expected_objects"],
            heap=config.get("heap", "log"),
            delta_index=bool(config.get("delta_index")),
        )
        if config.get("hot_cache"):
            cache = self.store.attach_hot_cache(config.get("hot_cache_keys"))
            cache.active = bool(config.get("hot_cache_active", True))
        # Workers import the engine registry lazily so this module never
        # drags the pipeline package in at import time.
        from repro.engine import resolve_engine

        self.engine = resolve_engine(
            config.get("inner", "vector"), dedup=bool(config.get("dedup"))
        )
        from repro.engine.plan import compile_stage_plan
        from repro.pipeline.megakv import megakv_coupled_config

        # Batch results are configuration-invariant (the equivalence suite's
        # core claim), so workers execute one canonical compiled plan.
        self.plan = compile_stage_plan(megakv_coupled_config())


def _harvest_frequencies(store: KVStore, epoch: int, sample: int) -> list[int]:
    """Worker-side mirror of the system's profiler frequency harvest."""
    counts: list[int] = []
    target = epoch - 1
    for obj in store.heap.objects():
        if obj.sample_epoch == target and obj.access_count > 0:
            counts.append(obj.access_count)
            if len(counts) >= sample:
                break
    return counts


def _handle_batch(state: _WorkerState, payload, offset: int = 0) -> list:
    from repro.engine.plane import BatchPlane

    skew, epoch, seq, gate = _BATCH_HEAD.unpack_from(payload, offset)
    cache = state.store.hot_cache
    freq: list[int] = []
    if cache is not None and gate:
        cache.gate_on_skew(skew)
        freq.extend(cache.drain_window_hits())
    if gate:
        freq.extend(
            _harvest_frequencies(state.store, epoch, HARVEST_SAMPLE - len(freq))
        )
    columns = decode_query_block(payload, offset + _BATCH_HEAD.size)
    plane = BatchPlane(columns)
    # The worker only ever ships the status/size/value columns; per-row
    # Response objects would be built and immediately discarded.
    plane.wants_responses = False
    state.engine.run(state.store, state.plan, plane, epoch=epoch)
    # Post-batch barrier (the worker-side mirror of FunctionalPipeline's):
    # settle the log arena's memory debt before the next batch arrives.
    if state.store.needs_maintenance:
        state.store.maintenance()
    statuses = plane.response_statuses
    sizes = plane.response_sizes
    if statuses is None or sizes is None:
        # Engines without columnar output (scalar fallback) still build
        # the Response column; derive the wire columns from it.
        responses = plane.take_responses()
        if statuses is None:
            statuses = [r.status.value for r in responses]
        if sizes is None:
            sizes = [r.wire_size for r in responses]
    hotpath = plane.hotpath
    dup_count = hotpath.dup_count if hotpath is not None else 0
    head = _RESULT_HEAD.pack(plane.size, len(freq), dup_count, seq)
    if np is not None:
        freq_b = np.fromiter(freq, dtype=np.uint32, count=len(freq)).tobytes()
    else:
        freq_b = struct.pack(f"<{len(freq)}I", *freq)
    block = encode_response_block(statuses, plane.read_values, sizes)
    return [bytes([MSG_RESULT]), head, freq_b, _pack_stats(state.store), *block]


def _handle_dump(state: _WorkerState) -> list:
    keys = [obj.key for obj in state.store.heap.objects()]
    n = len(keys)
    if np is not None:
        lens = np.fromiter(map(len, keys), dtype=np.uint32, count=n).tobytes()
    else:
        lens = struct.pack(f"<{n}I", *map(len, keys))
    return [bytes([MSG_OK]), _U32.pack(n), lens, b"".join(keys)]


def _worker_main(in_name: str, out_name: str, config: dict) -> None:
    """Child entry point: serve ring messages until shutdown/orphaned."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    parent = os.getppid()
    inbound = ShmRing.attach(in_name)
    outbound = ShmRing.attach(out_name)
    state = _WorkerState(config)
    orphaned = lambda: os.getppid() != parent  # noqa: E731

    try:
        while True:
            try:
                # idle=True: between windows the worker concedes the core
                # fast instead of yield-polling — on oversubscribed hosts
                # the router needs those timeslices for split/encode.
                msg = inbound.recv(timeout=0.2, abort=orphaned, idle=True)
            except RingClosedError:
                break
            if msg is None:
                # Idle tick: the worker owns its shard outright, so this
                # is a free compaction barrier for a log-arena heap.
                state.store.maintenance(force=True)
                continue
            mtype = msg[0]
            if mtype == MSG_SHUTDOWN:
                try:
                    outbound.send(bytes([MSG_OK]), timeout=1.0)
                except RingClosedError:  # pragma: no cover - parent gone
                    pass
                break
            payload = memoryview(msg)[1:]
            try:
                if mtype == MSG_BATCH:
                    # Pass the raw bytes + offset (not a memoryview slice)
                    # so the block decoder's direct bytes-slicing path
                    # applies to every key/value copied out of the arena.
                    reply = _handle_batch(state, msg, 1)
                elif mtype == MSG_POPULATE:
                    columns = decode_query_block(msg, 1)
                    stored = state.store.bulk_set_columns(
                        columns.keys, columns.values
                    )
                    reply = [bytes([MSG_OK]), _U32.pack(stored)]
                elif mtype == MSG_DUMP:
                    reply = _handle_dump(state)
                elif mtype == MSG_STATS:
                    reply = [bytes([MSG_OK]), _pack_stats(state.store)]
                elif mtype == MSG_RESET:
                    state = _WorkerState(state.config)
                    reply = [bytes([MSG_OK])]
                elif mtype == MSG_ATTACH_CACHE:
                    capacity, active = struct.unpack_from("<QB", payload, 0)
                    cache = state.store.attach_hot_cache(capacity or None)
                    cache.active = bool(active)
                    reply = [bytes([MSG_OK])]
                elif mtype == MSG_PING:
                    reply = [bytes([MSG_OK])]
                else:
                    raise ConfigurationError(f"unknown message type {mtype}")
            except Exception:
                reply = [bytes([MSG_ERROR]), traceback.format_exc().encode()]
            outbound.send(*reply, abort=orphaned)
    finally:
        inbound.close()
        outbound.close()


# ------------------------------------------------------------ parent handle


class ShardWorker:
    """Router-side handle on one shard worker process and its two rings."""

    def __init__(self, shard_id: int, config: dict, ctx, ring_bytes: int):
        self.shard_id = shard_id
        self.config = config
        self._ctx = ctx
        self._ring_bytes = ring_bytes
        self.generation = 0
        self.seq = 0
        self.process = None
        self.to_worker: ShmRing | None = None
        self.from_worker: ShmRing | None = None
        self.spawn()

    def spawn(self) -> None:
        self.to_worker = ShmRing.create(self._ring_bytes)
        self.from_worker = ShmRing.create(self._ring_bytes)
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(self.to_worker.name, self.from_worker.name, self.config),
            daemon=True,
            name=f"repro-shard-{self.shard_id}",
        )
        self.process.start()
        self.generation += 1
        self.seq = 0

    def next_seq(self) -> int:
        """Per-worker batch sequence number (u32, wraps; resets on spawn)."""
        self.seq = (self.seq + 1) & 0xFFFFFFFF
        return self.seq

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def _dead(self) -> bool:
        return not self.alive()

    @property
    def queue_depth_bytes(self) -> int:
        ring = self.to_worker
        return ring.pending_bytes if ring is not None else 0

    def take_high_water_bytes(self) -> int:
        """Deepest either ring direction has been since the last take.

        Both marks are writer-maintained inside the shared headers, so the
        outbound (worker-written) direction's depth is as honest as the
        inbound one — the old sampling only saw the inbound ring at send
        time and missed every reply-side backlog.
        """
        mark = 0
        for ring in (self.to_worker, self.from_worker):
            if ring is not None:
                mark = max(mark, ring.take_high_water())
        return mark

    def take_ring_stall_ns(self) -> int:
        """Router-side send backpressure accumulated since the last take."""
        ring = self.to_worker
        if ring is None:
            return 0
        total = ring.stall_ns
        ring.stall_ns = 0
        return total

    def send(self, *parts) -> None:
        try:
            self.to_worker.send(*parts, abort=self._dead, timeout=REPLY_TIMEOUT_S)
        except RingClosedError as exc:
            raise WorkerDiedError(
                f"shard worker {self.shard_id} unavailable: {exc}"
            ) from exc

    def recv_reply(self, timeout: float = REPLY_TIMEOUT_S):
        try:
            msg = self.from_worker.recv(timeout=timeout, abort=self._dead)
        except RingClosedError as exc:
            raise WorkerDiedError(
                f"shard worker {self.shard_id} died mid-request: {exc}"
            ) from exc
        if msg is None:
            raise WorkerDiedError(
                f"shard worker {self.shard_id} reply timed out after {timeout}s"
            )
        if msg[0] == MSG_ERROR:
            raise WorkerFailedError(
                f"shard worker {self.shard_id} failed:\n"
                + bytes(msg[1:]).decode(errors="replace")
            )
        return memoryview(msg)[1:]

    def request(self, *parts):
        self.send(*parts)
        return self.recv_reply()

    def respawn(self) -> None:
        """Replace a dead (or wedged) worker with a fresh, empty one."""
        self.terminate()
        self.spawn()

    def terminate(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stuck child
                self.process.kill()
                self.process.join(timeout=2.0)
        self.process = None
        for ring in (self.to_worker, self.from_worker):
            if ring is not None:
                ring.close()
        self.to_worker = None
        self.from_worker = None

    def shutdown(self, timeout: float = 2.0) -> None:
        """Graceful stop: drain, ack, join; falls back to terminate."""
        if self.process is not None and self.process.is_alive():
            try:
                self.to_worker.send(
                    bytes([MSG_SHUTDOWN]), abort=self._dead, timeout=timeout
                )
                self.from_worker.recv(timeout=timeout, abort=self._dead)
            except RingClosedError:
                pass
            self.process.join(timeout=timeout)
        self.terminate()


# ------------------------------------------------------------- store facade


class _ProcIndexView:
    """Merged ``store.index`` stand-in built from piggybacked counters."""

    __slots__ = ("_store",)

    def __init__(self, store: "ProcShardStore"):
        self._store = store

    @property
    def stats(self) -> IndexStats:
        merged = IndexStats()
        for row in self._store._stats_rows():
            merged.searches += row[6]
            merged.inserts += row[7]
            merged.deletes += row[8]
            merged.search_bucket_reads += row[9]
            merged.insert_bucket_writes += row[10]
            merged.insert_kicks += row[11]
            merged.failed_inserts += row[12]
        return merged

    @property
    def num_hashes(self) -> int:
        return 2

    def __len__(self) -> int:
        return sum(row[13] for row in self._store._stats_rows())


class _DumpedKey:
    """A key-only heap object snapshot (what cluster migration scans)."""

    __slots__ = ("key",)
    access_count = 0
    sample_epoch = -1

    def __init__(self, key: bytes):
        self.key = key


class _ProcHeapView:
    """Merged ``store.heap`` stand-in: key dumps on demand."""

    __slots__ = ("_store", "budget_bytes")

    def __init__(self, store: "ProcShardStore", budget_bytes: int):
        self._store = store
        self.budget_bytes = budget_bytes

    def objects(self) -> list[_DumpedKey]:
        out: list[_DumpedKey] = []
        self._store.drain_inflight()
        for worker in self._store.workers:
            reply = worker.request(bytes([MSG_DUMP]))
            (n,) = _U32.unpack_from(reply, 0)
            lens = struct.unpack_from(f"<{n}I", reply, 4)
            at = 4 + 4 * n
            for length in lens:
                out.append(_DumpedKey(bytes(reply[at : at + length])))
                at += length
        return out


class ProcShardStore:
    """N shard-worker processes behind one store facade.

    The router-side counterpart of
    :class:`~repro.kv.sharding.ShardedKVStore`: the same even split of the
    memory/index budget, the same seed-0 FNV routing — but every shard is
    a separate process and the facade talks to it over shared-memory
    rings.  Scalar ``get``/``set``/``delete`` ride the batch plane as
    one-row windows (the control path — migration, tests); the engine
    fan-out is the hot path.

    Every arena is unlinked on :meth:`close`, which is also registered
    with ``atexit`` so segments cannot outlive the router even on an
    unclean exit; a SIGKILLed worker leaves no orphan either, because the
    router owns (and unlinks) both of its rings.
    """

    is_procshard = True

    def __init__(
        self,
        memory_bytes: int,
        expected_objects: int,
        num_shards: int = 1,
        *,
        dedup: bool = False,
        hot_cache: bool = False,
        hot_cache_keys: int | None = None,
        hot_cache_active: bool = True,
        inner: str = "vector",
        ring_bytes: int | None = None,
        start_method: str | None = None,
        heap: str = "log",
        delta_index: bool = False,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if ring_bytes is None:
            # Double-buffered default: each direction holds two full
            # windows (window N+1 streams in while window N is resident),
            # so pipelined submits never stall on a healthy worker.
            ring_bytes = MAX_INFLIGHT_WINDOWS * DEFAULT_RING_BYTES
        import multiprocessing as mp

        if start_method is None:
            start_method = os.environ.get("REPRO_PROCSHARD_START")
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)
        self.num_shards = num_shards
        from repro.kv.slab import SlabAllocator

        shard_budget = max(memory_bytes // num_shards, SlabAllocator.PAGE_BYTES)
        per_cache = None
        if hot_cache_keys is not None:
            per_cache = max(64, hot_cache_keys // num_shards)
        config = {
            "memory_bytes": shard_budget,
            "expected_objects": max(64, expected_objects // num_shards),
            "dedup": dedup,
            "hot_cache": hot_cache,
            "hot_cache_keys": per_cache,
            "hot_cache_active": hot_cache_active,
            "inner": inner,
            "heap": heap,
            "delta_index": delta_index,
        }
        self.dedup = dedup
        self.workers = [
            ShardWorker(i, config, ctx, ring_bytes) for i in range(num_shards)
        ]
        self.hot_cache = None  # engines never probe caches router-side
        self.current_skew = 0.0
        self._gate_caches = False
        self._stats_cache: list[tuple] = [
            (0,) * _STATS_FIELDS for _ in range(num_shards)
        ]
        self._freq_pending: list[int] = []
        #: In-flight pipelined windows (ProcShardTicket, FIFO): every
        #: control-plane round-trip drains these first so a stats/populate
        #: reply is never interleaved with a pending batch reply.
        self._inflight: list = []
        self._closed = False
        self._index_view = _ProcIndexView(self)
        self._heap_view = _ProcHeapView(self, shard_budget * num_shards)
        self.respawns = 0
        # atexit must not keep the store alive; close through a weakref.
        ref = weakref.ref(self)
        def _cleanup(ref=ref):
            store = ref()
            if store is not None:
                store.close()
        self._atexit_hook = _cleanup
        atexit.register(_cleanup)

    # ------------------------------------------------------------ lifecycle

    def drain_inflight(self) -> None:
        """Collect every pending pipelined window (control-plane barrier).

        The worker rings are strict FIFOs, so a stats/dump/populate
        request sent while a batch reply is pending would consume that
        reply as its own.  Every facade round-trip calls this first;
        collection is idempotent, so racing an explicit ``collect`` is
        safe.
        """
        while self._inflight:
            ticket = self._inflight[0]
            ticket.engine.collect(ticket)
            if self._inflight and self._inflight[0] is ticket:
                # Defensive: collect always dequeues its ticket; never
                # spin if a broken ticket failed to.
                self._inflight.pop(0)

    def close(self) -> None:
        """Stop every worker and unlink every shared-memory arena."""
        if self._closed:
            return
        self._closed = True
        try:
            self.drain_inflight()
        except Exception:  # pragma: no cover - teardown best-effort
            self._inflight.clear()
        for worker in self.workers:
            try:
                worker.shutdown()
            except Exception:  # pragma: no cover - teardown best-effort
                worker.terminate()
        atexit.unregister(self._atexit_hook)

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def ensure_workers(self) -> list[int]:
        """Respawn any dead worker (fresh and empty); returns their ids."""
        if self._closed:
            return []
        respawned = []
        for worker in self.workers:
            if not worker.alive():
                logger.warning(
                    "shard worker %d died; respawning empty", worker.shard_id
                )
                worker.respawn()
                self._stats_cache[worker.shard_id] = (0,) * _STATS_FIELDS
                respawned.append(worker.shard_id)
        if respawned:
            self.respawns += len(respawned)
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.registry.counter(
                    "repro_procshard_respawns_total",
                    help="Dead shard workers replaced by the router",
                ).inc(len(respawned))
        return respawned

    def reset(self) -> None:
        """Rebuild every worker's store fresh (tests; keeps processes)."""
        self.drain_inflight()
        for worker in self.workers:
            worker.request(bytes([MSG_RESET]))
        self._stats_cache = [(0,) * _STATS_FIELDS for _ in range(self.num_shards)]
        self._freq_pending.clear()

    # ------------------------------------------------------- profiler feeds

    def note_skew(self, skew: float) -> None:
        """Record the profiler's skew estimate; batches gate worker caches
        with it from now on (the system's per-window hysteresis)."""
        self.current_skew = skew
        self._gate_caches = True

    def take_frequency_samples(self) -> list[int]:
        """Drain worker-harvested access counts for the profiler."""
        out, self._freq_pending = self._freq_pending, []
        return out

    def hot_cache_totals(self) -> tuple[int, int]:
        """Aggregated (hits, misses) across worker caches, from the last
        piggybacked counters."""
        rows = self._stats_cache
        return sum(r[14] for r in rows), sum(r[15] for r in rows)

    def _note_stats(self, shard: int, row: tuple) -> None:
        self._stats_cache[shard] = row

    def _stats_rows(self) -> list[tuple]:
        return self._stats_cache

    def refresh_stats(self) -> None:
        """Round-trip every worker for fresh counters (facade reads)."""
        self.drain_inflight()
        for worker in self.workers:
            reply = worker.request(bytes([MSG_STATS]))
            self._note_stats(worker.shard_id, _unpack_stats(reply))

    # --------------------------------------------------------- merged views

    @property
    def stats(self) -> StoreStats:
        self.refresh_stats()
        merged = StoreStats()
        for row in self._stats_cache:
            merged.gets += row[0]
            merged.get_hits += row[1]
            merged.sets += row[2]
            merged.deletes += row[3]
            merged.delete_hits += row[4]
            merged.signature_false_positives += row[5]
        return merged

    @property
    def index(self) -> _ProcIndexView:
        return self._index_view

    @property
    def heap(self) -> _ProcHeapView:
        return self._heap_view

    def __len__(self) -> int:
        self.refresh_stats()
        return sum(row[13] for row in self._stats_cache)

    # -------------------------------------------------------------- routing

    def shard_for(self, key: bytes) -> int:
        return shard_of(key, self.num_shards)

    def _scalar(self, qtype: QueryType, key: bytes, value: bytes):
        self.drain_inflight()
        worker = self.workers[self.shard_for(key)]
        head = _BATCH_HEAD.pack(self.current_skew, 0, worker.next_seq(), 0)
        block = encode_query_block([qtype], [key], [value])
        reply = worker.request(bytes([MSG_BATCH]), head, *block)
        parsed = _RESULT_HEAD.unpack_from(reply, 0)
        offset = _RESULT_HEAD.size + 4 * parsed[1] + _STATS_STRUCT.size
        self._note_stats(
            worker.shard_id,
            _unpack_stats(reply, _RESULT_HEAD.size + 4 * parsed[1]),
        )
        statuses, values, _sizes = decode_response_block(reply, offset)
        return statuses[0], values[0]

    def get(self, key: bytes, *, epoch: int = 0) -> bytes | None:
        status, value = self._scalar(QueryType.GET, key, b"")
        return value if status == ResponseStatus.OK.value else None

    def set(self, key: bytes, value: bytes) -> None:
        """Route one SET; returns ``None`` (the worker's SetOutcome stays
        in its process — callers needing displacement detail run in the
        worker, not through the facade)."""
        self._scalar(QueryType.SET, key, value)

    def delete(self, key: bytes) -> bool:
        status, _ = self._scalar(QueryType.DELETE, key, b"")
        return status == ResponseStatus.DELETED.value

    def populate(self, items: list[tuple[bytes, bytes]]) -> int:
        """Bulk-load via per-worker columnar SET blocks."""
        self.drain_inflight()
        by_shard: list[tuple[list[bytes], list[bytes]]] = [
            ([], []) for _ in range(self.num_shards)
        ]
        for key, value in items:
            keys, values = by_shard[self.shard_for(key)]
            keys.append(key)
            values.append(value)
        stored = 0
        set_type = QueryType.SET
        for worker, (keys, values) in zip(self.workers, by_shard):
            if not keys:
                continue
            block = encode_query_block([set_type] * len(keys), keys, values)
            reply = worker.request(bytes([MSG_POPULATE]), *block)
            stored += _U32.unpack_from(reply, 0)[0]
        return stored

    def attach_hot_cache(self, capacity: int | None = None) -> list:
        """Attach a hot-key cache inside every worker (evenly divided,
        active — mirroring :meth:`ShardedKVStore.attach_hot_cache`).
        Returns ``[]``: the caches live in the workers and are reached
        through batch piggybacks, not direct references."""
        self.drain_inflight()
        per_shard = None
        if capacity is not None:
            per_shard = max(64, capacity // self.num_shards)
        payload = struct.pack("<QB", per_shard or 0, 1)
        for worker in self.workers:
            worker.request(bytes([MSG_ATTACH_CACHE]), payload)
        return []


# ------------------------------------------------------------------- engine


class ProcShardTicket:
    """One in-flight pipelined window: everything collect needs to merge.

    Created by :meth:`ProcShardEngine.submit`, finished by
    :meth:`ProcShardEngine.collect` (idempotent — a window drained early
    by the store's control-plane barrier just returns its cached claims
    when collected again).
    """

    __slots__ = (
        "engine",
        "store",
        "plane",
        "sent",
        "shard_sizes",
        "vector",
        "statuses_col",
        "sizes_col",
        "values_col",
        "done",
        "claims",
        "encode_ns",
        "send_ns",
        "overlapped",
    )

    def __init__(self, engine: "ProcShardEngine", store, plane):
        self.engine = engine
        self.store = store
        self.plane = plane
        #: Sub-batches actually handed to a worker:
        #: ``(shard, rows, generation, seq)`` — generation pins the ring
        #: pair the window was sent on, seq the reply that answers it.
        self.sent: list[tuple] = []
        self.shard_sizes: list[int] = []
        self.vector = False
        self.statuses_col = None
        self.sizes_col = None
        self.values_col = None
        self.done = False
        self.claims: dict[str, int] = {}
        self.encode_ns = 0
        self.send_ns = 0
        self.overlapped = False


class ProcShardEngine:
    """Router-side engine: split by shard hash, fan out over rings, merge.

    Runs against a :class:`ProcShardStore`; on any other store it
    degrades to an in-process :class:`~repro.engine.vector.VectorEngine`
    so the backend stays safe to pin unconditionally.  A worker that dies
    mid-batch answers its rows with ``ERROR`` responses instead of
    killing the serve loop; the maintenance tick respawns it.

    The data plane is pipelined: :meth:`submit` splits a window with one
    argsort over the FNV shard-hash column, gathers each sub-batch's
    columns with fancy indexing, and streams them to the workers without
    waiting; :meth:`collect` merges the replies with fancy-indexed
    scatters into whole-batch status/size/value columns and materializes
    the Response objects in a single pass.  ``run`` keeps the synchronous
    contract (``submit`` immediately followed by ``collect``); the
    server's coalescer uses the split pair to overlap window N+1's sends
    with window N's worker compute.
    """

    name = "procshard"

    def __init__(
        self,
        *,
        dedup: bool = False,
        hot_cache: bool = True,
        vectorize: bool = True,
    ):
        # Dedup/caching happen inside the workers (each owns its own
        # builder and cache); the flags exist for resolve_engine symmetry
        # and configure the in-process fallback only.
        self._fallback = None
        self._fallback_flags = (dedup, hot_cache)
        #: ``vectorize=False`` keeps the per-row split/merge loops — the
        #: numpy-less fallback, and the honest pre-vectorization baseline
        #: the benches compare against.
        self._vector = vectorize and np is not None
        self.windows_submitted = 0
        self.windows_overlapped = 0

    def close(self) -> None:
        """Engine holds no processes (the store owns workers); no-op."""

    @property
    def overlap_ratio(self) -> float:
        """Fraction of submitted windows that overlapped an in-flight one."""
        if not self.windows_submitted:
            return 0.0
        return self.windows_overlapped / self.windows_submitted

    def _assign(self, keys: list[bytes], num_shards: int) -> list[int]:
        if np is not None:
            from repro.engine.vector import fnv_hash_columns

            states = fnv_hash_columns(keys, 1)
            return (states[0] % np.uint64(num_shards)).astype(np.intp).tolist()
        return [shard_of(key, num_shards) for key in keys]

    def _split_rows(self, plane, num_shards: int, key_lens=None) -> list:
        """Row indices per shard; ``[None]`` when there is one shard.

        Vector path: one whole-batch FNV hash, one stable argsort, one
        bincount — the stable sort keeps ascending row order inside each
        shard, so sub-batch order is bit-identical to the per-row append
        loop it replaces.  ``key_lens`` forwards a precomputed key-length
        column to the hash kernel (one pass over the keys per window, not
        one per consumer).
        """
        if num_shards == 1:
            return [None]
        keys = plane.keys
        if self._vector:
            order, bounds = self._shard_order(keys, num_shards, key_lens)
            return [order[bounds[s] : bounds[s + 1]] for s in range(num_shards)]
        assignment = self._assign(keys, num_shards)
        rows: list[list[int]] = [[] for _ in range(num_shards)]
        for row, shard in enumerate(assignment):
            rows[shard].append(row)
        return rows

    @staticmethod
    def _shard_order(keys, num_shards: int, key_lens=None):
        """Stable shard argsort of one window plus per-shard span bounds."""
        from repro.engine.vector import fnv_hash_columns

        states = fnv_hash_columns(keys, 1, lens=key_lens)
        shard_arr = (states[0] % np.uint64(num_shards)).astype(np.int64)
        order = np.argsort(shard_arr, kind="stable")
        counts = np.bincount(shard_arr, minlength=num_shards)
        bounds = np.empty(num_shards + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(counts, out=bounds[1:])
        return order, bounds.tolist()

    # ------------------------------------------------------- submit/collect

    def submit(self, store, plan, plane, *, epoch: int = 0) -> ProcShardTicket:
        """Send one window's sub-batches; merge later with :meth:`collect`.

        At most :data:`MAX_INFLIGHT_WINDOWS` windows may be resident per
        store — submitting beyond that collects the oldest first, so the
        double-buffered rings can never deadlock on a healthy worker.
        On a non-procshard store the window runs synchronously and the
        returned ticket is already done.
        """
        if not isinstance(store, ProcShardStore):
            ticket = ProcShardTicket(self, None, plane)
            ticket.claims = self.run(store, plan, plane, epoch=epoch)
            ticket.done = True
            return ticket
        while len(store._inflight) >= MAX_INFLIGHT_WINDOWS:
            self.collect(store._inflight[0])
        ticket = ProcShardTicket(self, store, plane)
        ticket.overlapped = bool(store._inflight)
        t0 = time.perf_counter_ns()
        num_shards = store.num_shards
        n = plane.size
        vector = ticket.vector = self._vector
        qtypes, keys, set_values = plane.qtypes, plane.keys, plane.set_values
        key_lens = getattr(plane, "key_lens", None)
        if vector and key_lens is None and n:
            # One pass over the key bytes per window: the same column
            # feeds the FNV shard split and the block encoder.
            key_lens = np.fromiter(map(len, keys), dtype=np.int64, count=n)
        spans = bounds = None
        if vector and num_shards > 1:
            order, bounds = self._shard_order(keys, num_shards, key_lens)
            shard_rows = [
                order[bounds[s] : bounds[s + 1]] for s in range(num_shards)
            ]
        else:
            shard_rows = self._split_rows(plane, num_shards, key_lens)
        if vector:
            cols = QueryBlockColumns(
                qtypes,
                keys,
                set_values,
                getattr(plane, "opcodes", None),
                key_lens,
                getattr(plane, "value_lens", None),
            )
            if bounds is not None:
                # One whole-window permute; each shard's block is then a
                # zero-copy span slice of the sorted columns.
                spans = cols.sorted_spans(order)
            ticket.statuses_col = np.zeros(n, dtype=np.int64)
            ticket.sizes_col = np.zeros(n, dtype=np.int64)
            ticket.values_col = np.empty(n, dtype=object)
        else:
            cols = None
            ticket.statuses_col = [0] * n
            ticket.sizes_col = [0] * n
        ticket.shard_sizes = [
            n if rows is None else len(rows) for rows in shard_rows
        ]
        skew = store.current_skew
        gate = 1 if store._gate_caches else 0
        encode_ns = time.perf_counter_ns() - t0
        send_ns = 0
        for shard, rows in enumerate(shard_rows):
            if rows is not None and len(rows) == 0:
                continue
            worker = store.workers[shard]
            t_enc = time.perf_counter_ns()
            if spans is not None:
                block = spans.encode(bounds[shard], bounds[shard + 1])
            elif vector:
                block = cols.encode(rows)
            else:
                block = encode_query_block(qtypes, keys, set_values, rows)
            t_send = time.perf_counter_ns()
            encode_ns += t_send - t_enc
            seq = worker.next_seq()
            head = _BATCH_HEAD.pack(skew, epoch, seq, gate)
            try:
                worker.send(bytes([MSG_BATCH]), head, *block)
            except WorkerDiedError:
                self._fill_down(ticket, rows)
                continue
            send_ns += time.perf_counter_ns() - t_send
            ticket.sent.append((shard, rows, worker.generation, seq))
        ticket.encode_ns = encode_ns
        ticket.send_ns = send_ns
        store._inflight.append(ticket)
        self.windows_submitted += 1
        if ticket.overlapped:
            self.windows_overlapped += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.gauge(
                "repro_procshard_inflight_windows",
                help="Pipelined windows currently resident in worker rings",
            ).set(len(store._inflight))
        return ticket

    def collect(self, ticket: ProcShardTicket) -> dict[str, int]:
        """Merge one submitted window's replies into its plane.

        Idempotent; collects any older in-flight windows first (worker
        rings are strict FIFOs).  A worker that died, was respawned, or
        answered with the wrong sequence number has its rows answered
        ``ERROR`` — every in-flight window a mid-flight death touches
        fills down, none hangs.
        """
        if ticket.done:
            return ticket.claims
        store = ticket.store
        inflight = store._inflight
        while inflight and inflight[0] is not ticket:
            self.collect(inflight[0])
        plane = ticket.plane
        responses = plane.responses
        read_values = plane.read_values
        statuses_col = ticket.statuses_col
        sizes_col = ticket.sizes_col
        values_col = ticket.values_col
        vector = ticket.vector
        dup_count = 0
        cache_hits = cache_misses = 0
        wait_ns = decode_ns = scatter_ns = 0
        depth = 0
        stall_ns = 0
        try:
            for shard, rows, generation, seq in ticket.sent:
                worker = store.workers[shard]
                if worker.generation != generation:
                    # Respawned since submit: the rings this window was
                    # sent on are gone; nothing to receive.
                    self._fill_down(ticket, rows)
                    continue
                t_wait = time.perf_counter_ns()
                try:
                    reply = worker.recv_reply()
                except WorkerDiedError:
                    wait_ns += time.perf_counter_ns() - t_wait
                    self._fill_down(ticket, rows)
                    continue
                t_decode = time.perf_counter_ns()
                wait_ns += t_decode - t_wait
                n, freq_count, dups, reply_seq = _RESULT_HEAD.unpack_from(reply, 0)
                if reply_seq != seq:
                    # A reply surviving from a window the router already
                    # abandoned (an earlier timeout fill-down): the ring
                    # is desynchronized — answer ERROR and resync by
                    # respawning the worker (fresh rings, seq 0).
                    logger.error(
                        "shard worker %d reply seq %d != expected %d; respawning",
                        shard,
                        reply_seq,
                        seq,
                    )
                    self._fill_down(ticket, rows)
                    worker.respawn()
                    store._stats_cache[shard] = (0,) * _STATS_FIELDS
                    store.respawns += 1
                    continue
                at = _RESULT_HEAD.size
                if freq_count:
                    store._freq_pending.extend(
                        struct.unpack_from(f"<{freq_count}I", reply, at)
                    )
                at += 4 * freq_count
                prev = store._stats_cache[shard]
                row_stats = _unpack_stats(reply, at)
                store._note_stats(shard, row_stats)
                cache_hits += row_stats[14] - prev[14]
                cache_misses += row_stats[15] - prev[15]
                at += _STATS_STRUCT.size
                dup_count += dups
                if vector:
                    statuses, values, sizes = decode_response_columns(reply, at)
                    t_scatter = time.perf_counter_ns()
                    decode_ns += t_scatter - t_decode
                    if rows is None:
                        statuses_col[:] = statuses
                        sizes_col[:] = sizes
                        values_col[:] = values
                    else:
                        statuses_col[rows] = statuses
                        sizes_col[rows] = sizes
                        values_col[rows] = values
                    scatter_ns += time.perf_counter_ns() - t_scatter
                else:
                    statuses, values, sizes = decode_response_block(reply, at)
                    t_scatter = time.perf_counter_ns()
                    decode_ns += t_scatter - t_decode
                    rows_iter = range(n) if rows is None else rows
                    ok = ResponseStatus.OK
                    for local, row in enumerate(rows_iter):
                        code = statuses[local]
                        value = values[local]
                        statuses_col[row] = code
                        sizes_col[row] = sizes[local]
                        if code == 0:
                            responses[row] = Response(ok, value)
                            read_values[row] = value
                        else:
                            responses[row] = _BY_CODE.get(
                                code, Response(ResponseStatus(code))
                            )
                    scatter_ns += time.perf_counter_ns() - t_scatter
                depth = max(depth, worker.take_high_water_bytes())
                stall_ns += worker.take_ring_stall_ns()
        finally:
            ticket.done = True
            if ticket in inflight:
                inflight.remove(ticket)

        if vector:
            t_scatter = time.perf_counter_ns()
            values_l = values_col.tolist()
            ok = ResponseStatus.OK
            if not statuses_col.any():
                # All-OK window (GET-heavy steady state): materialize with
                # one C-level map instead of a per-row branch loop.
                responses[:] = map(partial(Response, ok), values_l)
                read_values[:] = values_l
                statuses_l = [0] * len(values_l)
            else:
                statuses_l = statuses_col.tolist()
                by_code = _MERGE_BY_CODE
                for row, code in enumerate(statuses_l):
                    if code == 0:
                        value = values_l[row]
                        responses[row] = Response(ok, value)
                        read_values[row] = value
                    else:
                        responses[row] = by_code.get(code) or Response(
                            ResponseStatus(code)
                        )
            plane.response_statuses = statuses_l
            plane.response_sizes = sizes_col.tolist()
            scatter_ns += time.perf_counter_ns() - t_scatter
        else:
            plane.response_statuses = statuses_col
            plane.response_sizes = sizes_col
        # Every row is answered by construction (replies merge in, dead
        # workers fill down); take_responses can skip its per-row scan.
        plane.responses_complete = True
        if dup_count or cache_hits or cache_misses:
            from repro.engine.hotpath import HotPathState

            hotpath = HotPathState()
            hotpath.finished = True
            hotpath.dup_count = dup_count
            hotpath.cache_hits = cache_hits
            hotpath.cache_misses = cache_misses
            plane.hotpath = hotpath

        telemetry = get_telemetry()
        if telemetry.enabled:
            num_shards = store.num_shards
            largest = max(ticket.shard_sizes) if ticket.shard_sizes else 0
            ideal = plane.size / num_shards if num_shards else 0
            registry = telemetry.registry
            registry.gauge(
                "repro_shard_imbalance",
                help="Largest shard sub-batch over the ideal even split",
            ).set(largest / ideal if ideal else 0.0)
            registry.gauge(
                "repro_procshard_queue_depth_bytes",
                help="Per-window ring-backlog high-water mark, both directions",
            ).set(depth)
            registry.histogram(
                "repro_procshard_encode_ns",
                help="Split + sub-batch column gather + encode per window (ns)",
            ).observe(ticket.encode_ns)
            registry.histogram(
                "repro_procshard_send_ns",
                help="Ring send time per window (ns)",
            ).observe(ticket.send_ns)
            registry.histogram(
                "repro_procshard_wait_ns",
                help="Reply wait time per window (ns)",
            ).observe(wait_ns)
            registry.histogram(
                "repro_procshard_decode_ns",
                help="Reply block decode per window (ns)",
            ).observe(decode_ns)
            registry.histogram(
                "repro_procshard_scatter_ns",
                help="Response column scatter + materialization per window (ns)",
            ).observe(scatter_ns)
            registry.histogram(
                "repro_procshard_ring_stall_ns",
                help="Send-side ring backpressure stall per window (ns)",
            ).observe(stall_ns)
            registry.gauge(
                "repro_procshard_inflight_windows",
                help="Pipelined windows currently resident in worker rings",
            ).set(len(inflight))
            registry.gauge(
                "repro_procshard_overlap_ratio",
                help="Fraction of windows submitted while another was in flight",
            ).set(self.overlap_ratio)
        return ticket.claims

    # ------------------------------------------------------------------ run

    def run(
        self,
        store,
        plan,
        plane,
        *,
        epoch: int = 0,
        task_times=None,
    ) -> dict[str, int]:
        if not isinstance(store, ProcShardStore):
            if self._fallback is None:
                from repro.engine.vector import VectorEngine

                dedup, hot_cache = self._fallback_flags
                self._fallback = VectorEngine(dedup=dedup, hot_cache=hot_cache)
            return self._fallback.run(
                store, plan, plane, epoch=epoch, task_times=task_times
            )
        return self.collect(self.submit(store, plan, plane, epoch=epoch))

    def _fill_down(self, ticket: ProcShardTicket, rows) -> None:
        """Answer a window's rows with ERROR (serve loop survives)."""
        plane = ticket.plane
        code = ResponseStatus.ERROR.value
        wire = _WORKER_DOWN.wire_size
        if ticket.vector:
            idx = slice(None) if rows is None else rows
            ticket.statuses_col[idx] = code
            ticket.sizes_col[idx] = wire
            count = plane.size if rows is None else len(rows)
        else:
            rows_iter = range(plane.size) if rows is None else rows
            responses = plane.responses
            read_values = plane.read_values
            statuses_col = ticket.statuses_col
            sizes_col = ticket.sizes_col
            for row in rows_iter:
                responses[row] = _WORKER_DOWN
                read_values[row] = None
                statuses_col[row] = code
                sizes_col[row] = wire
            count = len(rows_iter)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.counter(
                "repro_procshard_worker_errors_total",
                help="Rows answered ERROR because their shard worker died",
            ).inc(count)


__all__ = [
    "ProcShardEngine",
    "ProcShardStore",
    "ProcShardTicket",
    "ShardWorker",
    "WorkerDiedError",
    "WorkerFailedError",
]
