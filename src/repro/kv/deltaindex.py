"""Delta index: batched cuckoo updates between write barriers.

FliX-style *flipped indexing* (PAPERS.md): instead of mutating the cuckoo
table (and its NumPy mirror) once per Insert/Delete/Reassign, the store
absorbs IN-phase index traffic into this small bounded delta table and
answers lookups delta-first, then main.  At write barriers — or the
server's idle maintenance tick, whichever hits the size/age threshold
first — the delta merges into :class:`~repro.kv.hashtable.CuckooHashTable`
in bulk via :meth:`~repro.kv.hashtable.CuckooHashTable.bulk_apply_prehashed`:
all distinct keys are hashed in one vectorized pass, deletes and reassigns
resolve with one mirror gather, and the mirror syncs with batched
fancy-indexed stores instead of one cell write per op.

The delta is an exact map keyed by full key bytes, so a delta hit returns
the one true location for that key (KC still verifies), a tombstone
suppresses the key's stale main entry until the merge lands, and a miss
falls through to the main table untouched — responses stay byte-identical
to a delta-less store; only index *statistics* (bucket reads, signature
false positives) may differ.

Each entry is ``key -> [final, main_old]``:

- ``final`` — the key's current location, or :data:`TOMBSTONE` when the
  newest absorbed op for the key is a delete;
- ``main_old`` — the location of the key's pre-existing **main-table**
  entry (to be deleted or reassigned at merge), or ``None`` when the
  binding never lived in main.

which classifies at merge time as::

    (TOMBSTONE, None) -> nothing   (born and died inside the delta)
    (TOMBSTONE, old)  -> DELETE    (sig, buckets, old)
    (loc,       None) -> INSERT    (sig, buckets, loc)
    (loc,       old)  -> REASSIGN  (sig, buckets, old -> loc)

Deletes that target neither the delta binding nor ``main_old`` (defensive;
the store's paths always supply the live location) are queued as *orphan*
deletes and applied as plain delete rows at merge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

try:  # NumPy backs the sorted signature column for the vector engine.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: Sentinel ``final`` meaning "the newest absorbed op deleted this key".
TOMBSTONE = -2

#: Merge once this many distinct keys have been absorbed (checked at
#: write barriers and maintenance ticks).  Sized to span several batches:
#: re-SETs of a key between merges collapse onto one delta entry, so a
#: larger window amortises the merge over more absorbed ops (the age
#: trigger below still bounds how long a binding stays delta-only).
DEFAULT_MERGE_THRESHOLD = 16384

#: Hard high-water mark: an absorb that leaves the delta at or past this
#: size triggers a synchronous merge before the next operation.
DEFAULT_CAPACITY = 1 << 16

#: Merge a non-empty delta older than this even if small, so bindings do
#: not linger outside the main table across idle periods.
DEFAULT_MAX_AGE_S = 0.5


@dataclass
class DeltaStats:
    """Running counters for delta absorption and merges."""

    absorbed_inserts: int = 0
    absorbed_deletes: int = 0
    absorbed_reassigns: int = 0
    orphan_deletes: int = 0
    merges: int = 0
    merged_ops: int = 0


class DeltaIndex:
    """Bounded write-absorbing delta in front of a cuckoo hash table.

    Parameters
    ----------
    index:
        The main :class:`~repro.kv.hashtable.CuckooHashTable` (used for
        bulk probe specs at merge time; never mutated here).
    merge_threshold / capacity / max_age_s:
        Merge triggers — see the module defaults.
    """

    __slots__ = (
        "_index",
        "_map",
        "_orphans",
        "_sigs",
        "_sig_column",
        "_first_absorb",
        "merge_threshold",
        "capacity",
        "max_age_s",
        "stats",
    )

    def __init__(
        self,
        index,
        merge_threshold: int = DEFAULT_MERGE_THRESHOLD,
        capacity: int = DEFAULT_CAPACITY,
        max_age_s: float = DEFAULT_MAX_AGE_S,
    ):
        self._index = index
        self._map: dict[bytes, list] = {}
        self._orphans: list[tuple[bytes, int]] = []
        #: Signatures hashed in bulk for the sorted column; survive entry
        #: updates and are dropped when the merge lands.
        self._sigs: dict[bytes, int] = {}
        self._sig_column = None
        self._first_absorb: float | None = None
        self.merge_threshold = merge_threshold
        self.capacity = capacity
        self.max_age_s = max_age_s
        self.stats = DeltaStats()

    def __len__(self) -> int:
        return len(self._map)

    @property
    def pending_ops(self) -> int:
        """Entries plus orphan deletes awaiting the next merge."""
        return len(self._map) + len(self._orphans)

    @property
    def overflowed(self) -> bool:
        """Past the hard high-water mark: merge before the next op."""
        return len(self._map) >= self.capacity

    # ----------------------------------------------------------- absorption

    def _touch(self, key: bytes) -> None:
        if self._first_absorb is None:
            self._first_absorb = time.monotonic()
        self._sig_column = None

    def lookup(self, key: bytes):
        """Delta-first resolution for a Search.

        ``None`` — key not in the delta, fall through to the main table;
        ``[]`` — tombstoned here, suppress the (stale) main candidates;
        ``[location]`` — the key's current binding.
        """
        entry = self._map.get(key)
        if entry is None:
            return None
        final = entry[0]
        if final == TOMBSTONE:
            return []
        return [final]

    def insert(self, key: bytes, location: int) -> None:
        """Absorb an IN/Insert: the key's newest binding is ``location``."""
        entry = self._map.get(key)
        if entry is None:
            self._touch(key)
            self._map[key] = [location, None]
        else:
            # Re-set (or delete-then-set) between merges: collapse onto the
            # existing entry; ``main_old`` keeps pointing at the main-table
            # entry the merge must still retire.
            entry[0] = location
        self.stats.absorbed_inserts += 1

    def assign(self, key: bytes, old_location: int, new_location: int) -> None:
        """Absorb a settled replace (the MM-time Insert+Delete pair)."""
        entry = self._map.get(key)
        if entry is None:
            self._touch(key)
            self._map[key] = [new_location, old_location]
        else:
            entry[0] = new_location
        self.stats.absorbed_reassigns += 1

    def delete(self, key: bytes, location: int | None = None):
        """Absorb an IN/Delete.  Tri-state result:

        ``True`` — absorbed, a live binding is now suppressed;
        ``False`` — absorbed as a no-op (already tombstoned, or the target
        is covered by the pending merge) or queued as an orphan delete;
        ``None`` — **not** absorbed: the key has no delta entry and no
        location was supplied, so the caller must apply the delete to the
        main table synchronously (the delta cannot express "remove any
        signature match" without a location).
        """
        entry = self._map.get(key)
        if entry is None:
            if location is None:
                return None
            self._touch(key)
            self._map[key] = [TOMBSTONE, location]
            self.stats.absorbed_deletes += 1
            return True
        final = entry[0]
        self.stats.absorbed_deletes += 1
        if final != TOMBSTONE:
            if location is None or location == final:
                entry[0] = TOMBSTONE
                return True
            if location == entry[1]:
                # Deleting the pre-merge main binding: the merge already
                # retires ``main_old`` for this entry.
                return False
        elif location is None or location == entry[1]:
            return False
        # Defensive: a delete aimed at a location this entry does not
        # track (e.g. a historical duplicate main entry).  Queue it as a
        # plain prehashed delete for the merge.
        self._orphans.append((key, location))
        self._touch(key)
        self.stats.orphan_deletes += 1
        return False

    # ------------------------------------------------------- merge triggers

    def wants_merge(self, now: float | None = None) -> bool:
        """Size or age threshold hit (the barrier/idle-tick gate)."""
        pending = len(self._map) + len(self._orphans)
        if pending == 0:
            return False
        if pending >= self.merge_threshold:
            return True
        first = self._first_absorb
        if first is None:
            return False
        if now is None:
            now = time.monotonic()
        return (now - first) >= self.max_age_s

    # ------------------------------------------------------- vector support

    def signature_column(self):
        """Sorted ``uint32`` signatures of every delta key (incl. tombstones).

        The vector engine's Search pass pre-filters its rows against this
        column with one ``searchsorted``; rows whose signature cannot be in
        the delta skip the dict entirely.  Tombstones must be present —
        their rows have to resolve in the delta (to an empty candidate
        list) rather than fall through to the stale main entry.  Returns
        ``None`` without NumPy.
        """
        if _np is None:
            return None
        column = self._sig_column
        if column is None:
            sigs = self._sigs
            missing = [key for key in self._map if key not in sigs]
            if missing:
                from repro.engine.vector import fnv_hash_columns

                hashed = (fnv_hash_columns(missing, 1)[0] & 0xFFFFFFFF).tolist()
                for key, signature in zip(missing, hashed):
                    sigs[key] = signature
            column = _np.fromiter(
                (sigs[key] for key in self._map),
                dtype=_np.uint32,
                count=len(self._map),
            )
            column.sort()
            self._sig_column = column
        return column

    # -------------------------------------------------------------- merging

    def merge_rows(self):
        """Prehashed op rows for ``bulk_apply_prehashed``.

        Returns ``(deletes, reassigns, inserts, keys)`` where ``keys`` is
        every key involved (for probe-cache invalidation).  All keys are
        hashed in one vectorized pass and the per-row probe specs come off
        plain Python lists (``.tolist()`` columns) — no NumPy scalar
        indexing in the classification loop.  Does **not** clear the
        delta: call :meth:`finish_merge` only after the apply succeeds, so
        a :class:`~repro.errors.CapacityError` mid-apply leaves every
        binding still resolvable delta-first (some ops land
        twice-redundantly on retry; responses stay correct).
        """
        keys: list[bytes] = list(self._map)
        orphan_at = len(keys)
        keys.extend(key for key, _ in self._orphans)
        specs = iter(self._index.bulk_probe(keys))
        deletes: list[tuple[int, object, int]] = []
        reassigns: list[tuple[int, object, int, int]] = []
        inserts: list[tuple[int, object, int]] = []
        for entry, spec in zip(self._map.values(), specs):
            final = entry[0]
            main_old = entry[1]
            if final == TOMBSTONE:
                if main_old is not None:
                    deletes.append((spec[0], spec[1], main_old))
            elif main_old is None:
                inserts.append((spec[0], spec[1], final))
            else:
                reassigns.append((spec[0], spec[1], main_old, final))
        for (key, location), spec in zip(self._orphans, specs):
            deletes.append((spec[0], spec[1], location))
        del orphan_at
        return deletes, reassigns, inserts, keys

    def merge_columns(self):
        """Array-form merge plan (the NumPy fast path of :meth:`merge_rows`).

        Returns ``None`` when NumPy is unavailable or any key is too long
        for the column hasher (callers fall back to :meth:`merge_rows`).
        Otherwise returns ``(keys, signatures, buckets, classes)`` where
        ``signatures`` is ``uint32 (n,)``, ``buckets`` is ``intp (n, H)``
        (both aligned with ``keys``) and ``classes`` is the tuple
        ``(del_idx, del_old, re_idx, re_old, re_new, ins_idx, ins_loc)``
        of plain-int lists indexing rows of those arrays.  Everything stays
        columnar: per-key tuples and bucket lists are never materialised,
        which keeps a merge from flooding the garbage collector with tens
        of thousands of short-lived objects (GC pauses were the dominant
        cost of the tuple-form plan on write-heavy mixes).
        """
        if _np is None:
            return None
        from repro.engine.vector import MAX_VECTOR_KEY_BYTES, fnv_hash_columns

        keys: list[bytes] = list(self._map)
        keys.extend(key for key, _ in self._orphans)
        for key in keys:
            if len(key) > MAX_VECTOR_KEY_BYTES:
                return None
        index = self._index
        states = fnv_hash_columns(keys, index.num_hashes + 1)
        signatures = (states[0] & 0xFFFFFFFF).astype(_np.uint32)
        buckets = _np.ascontiguousarray(
            (states[1:] & (index.num_buckets - 1)).T.astype(_np.intp)
        )
        del_idx: list[int] = []
        del_old: list[int] = []
        re_idx: list[int] = []
        re_old: list[int] = []
        re_new: list[int] = []
        ins_idx: list[int] = []
        ins_loc: list[int] = []
        i = 0
        for entry in self._map.values():
            final = entry[0]
            main_old = entry[1]
            if final == TOMBSTONE:
                if main_old is not None:
                    del_idx.append(i)
                    del_old.append(main_old)
            elif main_old is None:
                ins_idx.append(i)
                ins_loc.append(final)
            else:
                re_idx.append(i)
                re_old.append(main_old)
                re_new.append(final)
            i += 1
        for _key, location in self._orphans:
            del_idx.append(i)
            del_old.append(location)
            i += 1
        classes = (del_idx, del_old, re_idx, re_old, re_new, ins_idx, ins_loc)
        return keys, signatures, buckets, classes

    def finish_merge(self, merged_ops: int = 0) -> None:
        """Reset after a fully-applied merge."""
        self._map.clear()
        self._orphans.clear()
        self._sigs.clear()
        self._sig_column = None
        self._first_absorb = None
        self.stats.merges += 1
        self.stats.merged_ops += merged_ops
