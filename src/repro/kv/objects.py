"""Key-value object layout and key signatures.

Mega-KV-style IMKVs keep a short fixed-length *signature* of each key in the
index so GPU lookups touch compact, coalescable data; the full key lives
with the object and is verified by the KC (key compare) task.  Each object
also carries the access counter and sampling timestamp that the workload
profiler's skew estimator uses (paper Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

#: 32-bit signature space, matching Mega-KV's compact index entries.
SIGNATURE_BITS = 32
_SIGNATURE_MASK = (1 << SIGNATURE_BITS) - 1

#: FNV-1a parameters (64-bit), used for both signature and bucket hashing.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, with an optional ``seed`` mixed in.

    Deterministic across runs (unlike ``hash``), which the simulator relies
    on for reproducible cuckoo placement.
    """
    value = _FNV_OFFSET ^ (seed * _FNV_PRIME & 0xFFFFFFFFFFFFFFFF)
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def key_signature(key: bytes) -> int:
    """Compact 32-bit signature of a key, stored in index buckets.

    Distinct keys may collide (that is why KC exists); equal keys always
    produce equal signatures.
    """
    return fnv1a64(key) & _SIGNATURE_MASK


@dataclass
class KVObject:
    """One stored key-value object plus profiler bookkeeping.

    Attributes
    ----------
    key, value:
        The payload bytes.
    access_count:
        Accesses observed during the current sampling window.
    sample_epoch:
        Epoch of the last window that touched this object; a mismatch with
        the profiler's current epoch resets ``access_count`` to 1 (the
        paper's lightweight frequency-sampling mechanism).
    """

    key: bytes
    value: bytes
    access_count: int = 0
    sample_epoch: int = -1

    def __post_init__(self) -> None:
        self.signature = key_signature(self.key)

    @property
    def size_bytes(self) -> int:
        """Payload footprint (key + value), the slab-class sizing input."""
        return len(self.key) + len(self.value)

    def record_access(self, epoch: int, count: int = 1) -> int:
        """Count ``count`` accesses within sampling window ``epoch``.

        Returns the updated in-window count.  Implements the paper's
        counter+timestamp scheme: a new epoch restarts the count instead of
        requiring a global reset pass over all objects.  ``count`` lets the
        engines' batch dedup credit a collapsed run of a repeated key with
        its full multiplicity in one call.
        """
        if self.sample_epoch != epoch:
            self.sample_epoch = epoch
            self.access_count = count
        else:
            self.access_count += count
        return self.access_count
