"""Hash-partitioned data plane: N independent :class:`KVStore` shards.

Mega-KV and MemC3 both partition the store so that index mutations never
contend across cores; DIDO inherits the same idea for its CPU-resident
passes.  :class:`ShardedKVStore` splits one logical store into ``N``
independent :class:`~repro.kv.store.KVStore` shards by key hash — the
same seed-0 FNV-1a hash the index derives signatures from, so the
:class:`~repro.engine.sharded.ShardedEngine` can compute the whole batch's
shard assignment with the vectorized hash kernel and get bit-identical
routing.

Because a key always lands on the same shard, the batch read-your-write
discipline (Deletes before Inserts before Searches) holds per shard
exactly as it does on the monolith: queries for different keys never
interact through the data path (only through cuckoo signature false
positives, which KC rejects), so a sharded store produces byte-identical
responses to an unsharded one — a property the sharding test suite
enforces across shard counts and mixed traces.

The facade mirrors the small surface the rest of the system touches on a
store it *holds* but does not execute on: ``get``/``set``/``delete`` and
``populate`` route per key, ``stats``/``index``/``heap`` present merged
views (summed counters, concatenated live objects) so the profiler and
reporting code work unchanged.
"""

from __future__ import annotations

from dataclasses import fields

from repro.errors import CapacityError, ConfigurationError
from repro.kv.hashtable import IndexStats
from repro.kv.objects import KVObject, fnv1a64
from repro.kv.slab import SlabAllocator
from repro.kv.store import KVStore, SetOutcome, StoreStats


def shard_of(key: bytes, num_shards: int) -> int:
    """The shard a key lives on: seed-0 FNV-1a modulo the shard count.

    This is deliberately the hash state the vectorized kernel computes in
    row 0 (:func:`repro.engine.vector.fnv_hash_columns`), so scalar and
    batched routing can never disagree.
    """
    return fnv1a64(key) % num_shards


def _merge_dataclass_counters(cls, parts):
    """Sum every integer field of ``parts`` into a fresh ``cls`` instance."""
    merged = cls()
    for part in parts:
        for f in fields(cls):
            setattr(merged, f.name, getattr(merged, f.name) + getattr(part, f.name))
    return merged


class _MergedIndexView:
    """Read-only stand-in for ``store.index`` over all shards.

    Exposes the aggregate :class:`~repro.kv.hashtable.IndexStats` (what the
    workload profiler reads) plus the structural attributes reporting code
    looks at.  It is intentionally *not* a hash table: engines never search
    through this view — they execute on the per-shard stores directly.
    """

    __slots__ = ("_shards",)

    def __init__(self, shards: list[KVStore]):
        self._shards = shards

    @property
    def stats(self) -> IndexStats:
        return _merge_dataclass_counters(
            IndexStats, (s.index.stats for s in self._shards)
        )

    @property
    def num_hashes(self) -> int:
        return self._shards[0].index.num_hashes

    @property
    def num_buckets(self) -> int:
        return sum(s.index.num_buckets for s in self._shards)

    def __len__(self) -> int:
        return sum(len(s.index) for s in self._shards)


class _MergedHeapView:
    """Read-only stand-in for ``store.heap`` over all shards."""

    __slots__ = ("_shards",)

    def __init__(self, shards: list[KVStore]):
        self._shards = shards

    def objects(self) -> list[KVObject]:
        out: list[KVObject] = []
        for shard in self._shards:
            out.extend(shard.heap.objects())
        return out

    @property
    def budget_bytes(self) -> int:
        return sum(s.heap.budget_bytes for s in self._shards)


class ShardedKVStore:
    """N independent :class:`KVStore` shards behind one store facade.

    Parameters
    ----------
    memory_bytes:
        Total slab budget, divided evenly across shards.
    expected_objects:
        Total index sizing hint, divided evenly across shards.
    num_shards:
        Number of partitions; 1 is legal (a degenerate single shard).
    heap:
        Per-shard value heap kind (``"log"``/``"slab"``), forwarded to
        each shard's :class:`KVStore`.
    delta_index:
        Attach a write-absorbing delta index to every shard (each merges
        into its own cuckoo table at its own barrier).
    """

    def __init__(
        self,
        memory_bytes: int,
        expected_objects: int,
        num_shards: int,
        num_hashes: int = 2,
        heap: str = "log",
        delta_index: bool = False,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        # Every shard needs at least one slab page / log segment to hold
        # objects at all; an even split of a small budget is floored
        # rather than rejected.
        shard_budget = max(memory_bytes // num_shards, SlabAllocator.PAGE_BYTES)
        self.shards = [
            KVStore(
                shard_budget,
                max(64, expected_objects // num_shards),
                num_hashes=num_hashes,
                heap=heap,
                delta_index=delta_index,
            )
            for _ in range(num_shards)
        ]
        self._index_view = _MergedIndexView(self.shards)
        self._heap_view = _MergedHeapView(self.shards)

    def attach_delta_index(self, merge_threshold: int | None = None):
        """Attach a write-absorbing delta index to every shard; returns the list.

        Per-shard deltas merge independently — the sharded engine runs one
        inner engine per shard against that shard's store, and the shard's
        own barrier (:meth:`maintenance`) lands the merge.
        """
        return [
            shard.attach_delta_index(merge_threshold=merge_threshold)
            for shard in self.shards
        ]

    def attach_hot_cache(self, capacity: int | None = None):
        """Attach a hot-key read cache to every shard; returns the list.

        The total ``capacity`` is divided evenly (floored at 64 entries per
        shard) — a key lives on exactly one shard, so per-shard caches
        partition the hot set the same way the stores partition the data.
        """
        from repro.kv.hotcache import DEFAULT_CAPACITY, HotKeyCache

        total = capacity or DEFAULT_CAPACITY
        per_shard = max(64, total // self.num_shards)
        return [shard.attach_hot_cache(per_shard) for shard in self.shards]

    # -------------------------------------------------------------- routing

    def shard_for(self, key: bytes) -> KVStore:
        return self.shards[shard_of(key, self.num_shards)]

    # ------------------------------------------------------- store interface

    def get(self, key: bytes, *, epoch: int = 0) -> bytes | None:
        return self.shard_for(key).get(key, epoch=epoch)

    def set(self, key: bytes, value: bytes) -> SetOutcome:
        return self.shard_for(key).set(key, value)

    def delete(self, key: bytes) -> bool:
        return self.shard_for(key).delete(key)

    def populate(self, items: list[tuple[bytes, bytes]]) -> int:
        """Bulk-load items; returns count stored (mirrors KVStore.populate)."""
        stored = 0
        for key, value in items:
            try:
                self.shard_for(key).set(key, value)
            except CapacityError:
                break
            stored += 1
        return stored

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # ----------------------------------------------------------- maintenance

    @property
    def needs_maintenance(self) -> bool:
        """True when any shard's heap wants a compaction pass."""
        return any(shard.needs_maintenance for shard in self.shards)

    def maintenance(self, force: bool = False) -> int:
        """Run each shard's heap compaction; returns total evictions."""
        return sum(shard.maintenance(force=force) for shard in self.shards)

    # --------------------------------------------------------- merged views

    @property
    def stats(self) -> StoreStats:
        return _merge_dataclass_counters(StoreStats, (s.stats for s in self.shards))

    @property
    def index(self) -> _MergedIndexView:
        return self._index_view

    @property
    def heap(self) -> _MergedHeapView:
        return self._heap_view

    def shard_sizes(self) -> list[int]:
        """Live objects per shard (imbalance telemetry reads this)."""
        return [len(shard) for shard in self.shards]
