"""Versioned hot-key read cache: GETs of cache-resident keys skip the index.

DIDO's skew analysis (paper Sections II-C, IV-B) models the hot set of a
Zipf workload as cache-resident via the cost model's ``hot_fraction``; this
module makes the same observation operational.  A :class:`HotKeyCache`
snapshots the values of the hottest keys so a GET can be answered without a
cuckoo probe, a key compare, or a heap read — the software analogue of the
hot set living in the last-level cache.

Correctness rests on two mechanisms:

* **Versioning** — every cache-resident key carries a monotonically
  increasing version stamp (keys without a live snapshot need none, so
  the stamp map never outgrows the entry map),
  bumped by :meth:`on_write` / :meth:`invalidate` at the store's
  single key-binding write points (:meth:`repro.kv.store.KVStore.allocate`,
  :meth:`~repro.kv.store.KVStore.delete`, and slab eviction, the same
  hooks that keep the NumPy signature mirror in sync).  A snapshot is
  served only while its stamp matches the key's current version, so a
  stale value can never escape even if an eviction path forgets to drop
  the entry.
* **Batch-write exclusion** — the engines' hot-path builder
  (:func:`repro.engine.hotpath.prepare_hot_path`) never serves a key from
  the cache in a batch that also writes that key: under the staged batch
  semantics a GET must observe the post-batch-write value, which the cache
  cannot know at intake time.

Admission is frequency-gated: a key is admitted once it has been observed
:data:`MIN_ADMIT_MULTIPLICITY` times — within one batch (the dedup layer
found it duplicated) or cumulatively across batches via the bounded
*probation* ledger (:meth:`note_probation`), which lets the long tail of a
Zipf head that appears once per batch graduate into the cache — so a
uniform workload cannot thrash the LRU with single-use tail keys.  Every
entry carries a prebuilt :class:`~repro.kv.protocol.Response` alongside
the value snapshot, so serving a cached GET costs zero allocations.  The
workload profiler's skew estimate gates the whole cache on/off
(:meth:`gate_on_skew`): skewed windows activate it, uniform windows
deactivate it — and :meth:`drain_window_hits` feeds the served hits back
into the profiler's frequency sampler so cache-served keys keep driving
the skew estimate they triggered.

The engines' hot-path builder reads ``_entries`` / ``_versions`` /
``_window_hits`` directly for its fused per-batch probes (one dict get +
version compare per key) and settles the hit/miss counters in bulk; the
method APIs below are the semantic contract those probes replicate.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError
from repro.kv.protocol import Response, ResponseStatus

_OK = ResponseStatus.OK

#: Default number of hot keys snapshotted (the cost model's n' analogue).
DEFAULT_CAPACITY = 1024

#: Minimum in-batch multiplicity before a key is considered hot enough to
#: admit; 2 means "the batch dedup layer collapsed at least one duplicate".
MIN_ADMIT_MULTIPLICITY = 2

#: Profiler skew estimates at or above this activate the cache...
SKEW_ON_THRESHOLD = 0.5

#: ...and estimates below this deactivate it (hysteresis band between).
SKEW_OFF_THRESHOLD = 0.2


class HotKeyCache:
    """Bounded LRU of ``key -> (value, version)`` snapshots.

    Parameters
    ----------
    capacity:
        Maximum snapshots held; admission beyond it evicts the least
        recently used entry.
    active:
        Initial gate state.  Standalone users (benchmarks, direct engine
        drivers) leave it True; :class:`~repro.core.dido.DidoSystem`
        flips it per profiling window via :meth:`gate_on_skew`.
    """

    __slots__ = (
        "capacity",
        "active",
        "hits",
        "misses",
        "invalidations",
        "_entries",
        "_versions",
        "_window_hits",
        "_probation",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *, active: bool = True):
        if capacity < 1:
            raise ConfigurationError("hot-key cache capacity must be positive")
        self.capacity = capacity
        self.active = active
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: key -> (value, version-at-snapshot, prebuilt OK response); LRU
        #: order, hottest last.
        self._entries: OrderedDict[bytes, tuple[bytes, int, Response]] = OrderedDict()
        #: key -> current version.  Only written keys have an entry; a key
        #: absent here is at version 0.
        self._versions: dict[bytes, int] = {}
        #: key -> hits served this profiling window (drained by DidoSystem
        #: into the profiler's frequency sampler).
        self._window_hits: dict[bytes, int] = {}
        #: key -> cumulative observations while not yet admission-worthy;
        #: generationally cleared when it outgrows 4x capacity.
        self._probation: dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # ---------------------------------------------------------------- reads

    def lookup(self, key: bytes, count: int = 1) -> bytes | None:
        """The snapshot for ``key`` if present and current, else None.

        ``count`` is the number of queries this lookup answers (the batch
        dedup layer resolves a whole duplicate run with one call); hit and
        miss counters advance by it so the hit-rate metric stays
        per-query.
        """
        entry = self.lookup_entry(key, count)
        return entry[0] if entry is not None else None

    def lookup_entry(self, key: bytes, count: int = 1) -> tuple[bytes, int, Response] | None:
        """:meth:`lookup`, returning the whole ``(value, version, response)``
        entry so callers can serve the prebuilt response object."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += count
            return None
        if entry[1] != self._versions.get(key, 0):
            # Stale snapshot: the key was rewritten since. Drop it — and
            # its stamp, which only a live snapshot needs.
            del self._entries[key]
            self._versions.pop(key, None)
            self.misses += count
            return None
        self._entries.move_to_end(key)
        self.hits += count
        window = self._window_hits
        window[key] = window.get(key, 0) + count
        return entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # --------------------------------------------------------------- writes

    def admit(self, key: bytes, value: bytes) -> None:
        """Snapshot ``key``'s current value, evicting LRU at capacity."""
        entries = self._entries
        if key not in entries and len(entries) >= self.capacity:
            old_key, _ = entries.popitem(last=False)
            # A key with no live snapshot needs no version bookkeeping.
            self._versions.pop(old_key, None)
        entries[key] = (value, self._versions.get(key, 0), Response(_OK, value))
        entries.move_to_end(key)
        self._probation.pop(key, None)

    def note_probation(self, key: bytes, count: int = 1) -> bool:
        """Record ``count`` sightings of a non-resident key; True once the
        key's cumulative tally reaches :data:`MIN_ADMIT_MULTIPLICITY` (the
        caller should then admit it as soon as a value is available).

        The ledger is generationally bounded: when it outgrows 4x the
        cache capacity it is simply cleared — tail keys restart their
        probation, hot keys re-qualify within a batch or two.
        """
        probation = self._probation
        seen = probation.get(key, 0) + count
        if seen >= MIN_ADMIT_MULTIPLICITY:
            probation.pop(key, None)
            return True
        if len(probation) >= 4 * self.capacity:
            probation.clear()
        probation[key] = seen
        return False

    def on_write(self, key: bytes, value: bytes) -> None:
        """SET hook: bump the version of and refresh a *resident* snapshot.

        Write-through for already-hot keys (the next batch's GETs hit
        immediately); cold keys get neither a snapshot nor a version
        stamp — admission is read-frequency-driven, and stamping every
        written key would grow the version map by one entry per live
        written key on write-heavy workloads.  Skipping the bump for
        non-resident keys is safe: a later admit snapshots at version 0,
        and the *next* write finds the snapshot resident and bumps, so
        the stamp mismatch still invalidates it.
        """
        entries = self._entries
        if key in entries:
            version = self._versions.get(key, 0) + 1
            self._versions[key] = version
            entries[key] = (value, version, Response(_OK, value))
            self.invalidations += 1

    def invalidate(self, key: bytes) -> None:
        """DELETE/eviction hook: drop the snapshot and version stamp.

        With no snapshot left there is nothing a stale version could
        protect, so the stamp is released rather than kept forever (the
        version map never outgrows the resident snapshot set).
        """
        self._entries.pop(key, None)
        self._versions.pop(key, None)
        self.invalidations += 1

    # ---------------------------------------------------------------- gating

    def gate_on_skew(self, estimated_skew: float) -> bool:
        """Flip the gate from the profiler's skew estimate; returns state.

        Hysteresis keeps the gate stable around the thresholds: on at
        ``SKEW_ON_THRESHOLD``, off below ``SKEW_OFF_THRESHOLD``, unchanged
        in between.
        """
        if estimated_skew >= SKEW_ON_THRESHOLD:
            self.active = True
        elif estimated_skew < SKEW_OFF_THRESHOLD:
            self.active = False
        return self.active

    def drain_window_hits(self) -> list[int]:
        """Per-key hit counts since the last drain (profiler feed).

        Cache-served GETs never touch the heap objects whose access
        counters drive the skew estimator; feeding these counts into
        :meth:`~repro.core.profiler.WorkloadProfiler.observe_frequency`
        keeps the estimate honest while the hot set is served cache-side.
        """
        counts = list(self._window_hits.values())
        self._window_hits.clear()
        return counts

    def clear(self) -> None:
        """Drop every snapshot and version stamp (tests, store resets)."""
        self._entries.clear()
        self._versions.clear()
        self._window_hits.clear()
        self._probation.clear()
