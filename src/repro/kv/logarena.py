"""Log-structured value arena: the write-optimised heap behind ``--heap log``.

The slab allocator (:mod:`repro.kv.slab`) charges every SET a full round of
per-object bookkeeping — a size-class lookup, an ``OrderedDict`` LRU insert,
and (through :class:`~repro.kv.objects.KVObject`) a pure-Python FNV pass over
the key — which is why write-heavy mixes collapse to scalar speed no matter
how columnar the engine above is.  This module replaces that substrate with
an append-only log:

* a SET is a bump-pointer allocation plus one ``bytearray`` copy into the
  open *segment* (1 MiB by default; oversized values get a dedicated
  "jumbo" segment);
* a whole SET run in a batch (:meth:`LogValueArena.multi_allocate_kv`)
  becomes one offsets walk plus a single columnar copy — the same
  cumsum-and-memcpy shape as the wire plane's response framer;
* DELETE and replace write a *tombstone* (accounting only — the bytes stay
  where they are) instead of freeing in place, so **live values are never
  moved or evicted mid-batch**;
* a segment compactor (:meth:`LogValueArena.compact`) reclaims dead space
  in large batches at barriers — the server's 0.5 s maintenance tick and
  the pipeline's post-batch hook — rewriting dead-heavy segments and,
  while the live set exceeds the memory budget, victimising whole
  least-recently-touched segments.  Evicted records are returned to the
  caller so the store can issue the matching index Deletes: the paper's
  steady-state "one Insert + one Delete per SET" (§II-C2) is preserved in
  aggregate, settled at the barrier instead of inside the batch.

Locations are stable integer handles exactly like the slab's, so the store
and every engine backend work unchanged on either heap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.kv.objects import key_signature

#: Default segment capacity (value bytes per segment).
DEFAULT_SEGMENT_BYTES = 1 << 20

#: A sealed segment at least this dead (fraction of its accounted bytes)
#: is rewritten — survivors relocated to the log tail, buffer dropped.
REWRITE_DEAD_FRACTION = 0.25


@dataclass
class ArenaStats:
    """Allocation/reclamation counters (superset of the slab's fields)."""

    allocations: int = 0
    evictions: int = 0
    frees: int = 0
    failed_allocations: int = 0
    compactions: int = 0
    segments_dropped: int = 0
    relocations: int = 0
    bytes_reclaimed: int = 0

    @property
    def eviction_rate(self) -> float:
        """Fraction of allocations that were later paid for by an eviction."""
        if self.allocations == 0:
            return 0.0
        return self.evictions / self.allocations


class _Segment:
    """One contiguous run of the log: a byte buffer plus accounting.

    ``acct_used``/``acct_live`` count key+value bytes (the slab's sizing
    unit) for every record ever written here / still live here; the buffer
    itself holds only value bytes — keys stay as the ``bytes`` objects the
    batch plane already materialised, referenced from the records.
    """

    __slots__ = ("buf", "wpos", "acct_used", "acct_live", "last_touch")

    def __init__(self, buf: bytearray, wpos: int = 0):
        self.buf = buf
        self.wpos = wpos
        self.acct_used = 0
        self.acct_live = 0
        self.last_touch = 0


class LogRecord:
    """One live (or just-tombstoned) key-value record in the arena.

    Interface-compatible with :class:`~repro.kv.objects.KVObject` where the
    store and engines touch it: ``key``/``value`` payloads, the profiler's
    ``access_count``/``sample_epoch`` counters with :meth:`record_access`,
    ``size_bytes`` and a (lazily computed) ``signature``.  Value bytes are
    cached on first materialisation; a record returned by ``free`` keeps a
    reference to its segment, so its value stays readable even after the
    compactor drops the segment from the arena.
    """

    __slots__ = (
        "key",
        "segment",
        "offset",
        "vlen",
        "access_count",
        "sample_epoch",
        "_value",
    )

    def __init__(self, key: bytes, segment: _Segment, offset: int, vlen: int):
        self.key = key
        self.segment = segment
        self.offset = offset
        self.vlen = vlen
        self.access_count = 0
        self.sample_epoch = -1
        self._value: bytes | None = None

    @property
    def value(self) -> bytes:
        value = self._value
        if value is None:
            value = bytes(
                memoryview(self.segment.buf)[self.offset : self.offset + self.vlen]
            )
            self._value = value
        return value

    @property
    def size_bytes(self) -> int:
        return len(self.key) + self.vlen

    @property
    def signature(self) -> int:
        return key_signature(self.key)

    def record_access(self, epoch: int, count: int = 1) -> int:
        """Same counter+timestamp scheme as :meth:`KVObject.record_access`."""
        if self.sample_epoch != epoch:
            self.sample_epoch = epoch
            self.access_count = count
        else:
            self.access_count += count
        return self.access_count


class LogValueArena:
    """Append-only value arena over a memory budget, compacted at barriers.

    Parameters
    ----------
    memory_bytes:
        Budget for live key+value bytes.  Allocation never evicts — the
        arena overcommits and :meth:`compact` settles the debt in bulk —
        so a single allocation fails (:class:`CapacityError`) only when
        the object alone exceeds the whole budget.
    segment_bytes:
        Capacity of one log segment (values larger than this get a
        dedicated jumbo segment).
    """

    def __init__(
        self,
        memory_bytes: int,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        if memory_bytes <= 0:
            raise ConfigurationError("memory budget must be positive")
        if segment_bytes <= 0:
            raise ConfigurationError("segment size must be positive")
        self._budget_bytes = memory_bytes
        self.segment_bytes = segment_bytes
        #: Dead bytes worth a compaction pass on their own (no pressure).
        self._dead_trigger = max(segment_bytes, memory_bytes // 4)
        self._segments: list[_Segment] = []
        self._head: _Segment | None = None
        self._entries: dict[int, LogRecord] = {}
        #: Touch-free location probe (``probe(loc) -> LogRecord | None``),
        #: bound once — the entry dict is only ever mutated in place.  The
        #: vector key-compare pass calls this per candidate; the method
        #: wrapper of :meth:`get` would double its cost.
        self.probe = self._entries.get
        self._next_location = 0
        self._live_bytes = 0
        self._dead_bytes = 0
        self._claimed_bytes = 0
        self._tick = 0
        self.stats = ArenaStats()

    # ------------------------------------------------------------ accounting

    @property
    def budget_bytes(self) -> int:
        return self._budget_bytes

    @property
    def live_bytes(self) -> int:
        """Key+value bytes of live records."""
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        """Tombstoned key+value bytes awaiting compaction."""
        return self._dead_bytes

    @property
    def claimed_bytes(self) -> int:
        """Buffer bytes currently held by segments."""
        return self._claimed_bytes

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def needs_maintenance(self) -> bool:
        """Cheap barrier gate: over budget, or enough dead space to matter."""
        return (
            self._live_bytes + self._dead_bytes > self._budget_bytes
            or self._dead_bytes > self._dead_trigger
        )

    # ------------------------------------------------------------- segments

    def _open_segment(self) -> _Segment:
        segment = _Segment(bytearray(self.segment_bytes))
        segment.last_touch = self._tick
        self._segments.append(segment)
        self._claimed_bytes += self.segment_bytes
        self._head = segment
        return segment

    def _append(self, value: bytes, vlen: int) -> tuple[_Segment, int]:
        """Copy ``value`` onto the log tail; returns (segment, offset)."""
        if vlen > self.segment_bytes:
            # Jumbo value: a dedicated, immediately-sealed segment.
            segment = _Segment(bytearray(value), wpos=vlen)
            segment.last_touch = self._tick
            self._segments.append(segment)
            self._claimed_bytes += vlen
            return segment, 0
        head = self._head
        if head is None or len(head.buf) - head.wpos < vlen:
            head = self._open_segment()
        wpos = head.wpos
        head.buf[wpos : wpos + vlen] = value
        head.wpos = wpos + vlen
        return head, wpos

    def _drop_segment(self, segment: _Segment) -> None:
        self._dead_bytes -= segment.acct_used - segment.acct_live
        self._claimed_bytes -= len(segment.buf)
        self._segments.remove(segment)
        if segment is self._head:
            self._head = None
        self.stats.segments_dropped += 1
        self.stats.bytes_reclaimed += len(segment.buf)

    # ------------------------------------------------------------ allocation

    def allocate_kv(self, key: bytes, value: bytes) -> tuple[int, None]:
        """Place one key-value pair; returns ``(location, None)``.

        The second element is always ``None`` — the log never evicts
        synchronously (the slab returns its LRU victim here), which is the
        property that removes the hot-cache mid-batch eviction hazard.
        """
        vlen = len(value)
        size = len(key) + vlen
        if size > self._budget_bytes:
            self.stats.failed_allocations += 1
            raise CapacityError(
                f"object of {size} B exceeds the arena budget of "
                f"{self._budget_bytes} B"
            )
        self._tick += 1
        segment, offset = self._append(value, vlen)
        record = LogRecord(key, segment, offset, vlen)
        record._value = value
        location = self._next_location
        self._next_location = location + 1
        self._entries[location] = record
        segment.acct_used += size
        segment.acct_live += size
        segment.last_touch = self._tick
        self._live_bytes += size
        self.stats.allocations += 1
        return location, None

    def allocate(self, obj) -> tuple[int, None]:
        """KVObject-compatible shim over :meth:`allocate_kv`."""
        return self.allocate_kv(obj.key, obj.value)

    def multi_allocate_kv(self, keys: list[bytes], values: list[bytes]) -> list[int]:
        """Columnar bulk SET: one offsets walk + one copy per segment run.

        Values are packed into the open segment in maximal runs — a single
        join-and-slice-assign per run instead of one copy per item — and
        records are bump-allocated in order.  Raises :class:`CapacityError`
        at the first item whose key+value exceed the whole budget, with
        every earlier item applied (callers that need the scalar loop's
        positional semantics pre-screen sizes; see
        :meth:`KVStore.multi_allocate <repro.kv.store.KVStore.multi_allocate>`).
        """
        n = len(values)
        entries = self._entries
        stats = self.stats
        budget = self._budget_bytes
        segment_bytes = self.segment_bytes
        location = self._next_location
        locations: list[int] = []
        self._tick += 1
        tick = self._tick
        live_add = 0
        i = 0
        while i < n:
            head = self._head
            if head is None:
                head = self._open_segment()
            room = len(head.buf) - head.wpos
            run_bytes = 0
            run_acct = 0
            j = i
            while j < n:
                vlen = len(values[j])
                if (
                    vlen > segment_bytes
                    or run_bytes + vlen > room
                    or len(keys[j]) + vlen > budget
                ):
                    break
                run_bytes += vlen
                run_acct += len(keys[j]) + vlen
                j += 1
            if j == i:
                # No room in the head (or a jumbo/oversized value): place
                # this one item through the scalar appender.
                key, value = keys[i], values[i]
                vlen = len(value)
                size = len(key) + vlen
                if size > budget:
                    self._next_location = location
                    self._live_bytes += live_add
                    stats.failed_allocations += 1
                    raise CapacityError(
                        f"object of {size} B exceeds the arena budget of "
                        f"{budget} B"
                    )
                segment, offset = self._append(value, vlen)
                record = LogRecord(key, segment, offset, vlen)
                record._value = value
                entries[location] = record
                locations.append(location)
                location += 1
                segment.acct_used += size
                segment.acct_live += size
                segment.last_touch = tick
                live_add += size
                stats.allocations += 1
                i += 1
                continue
            # Columnar run: one copy moves every value in [i, j); the
            # scan above already summed the run's accounting, so the
            # record loop below is pure bump allocation.
            wpos = head.wpos
            head.buf[wpos : wpos + run_bytes] = (
                values[i] if j - i == 1 else b"".join(values[i:j])
            )
            head.wpos = wpos + run_bytes
            offset = wpos
            append = locations.append
            for k in range(i, j):
                value = values[k]
                vlen = len(value)
                record = LogRecord(keys[k], head, offset, vlen)
                record._value = value
                entries[location] = record
                append(location)
                location += 1
                offset += vlen
            head.acct_used += run_acct
            head.acct_live += run_acct
            head.last_touch = tick
            live_add += run_acct
            stats.allocations += j - i
            i = j
        self._next_location = location
        self._live_bytes += live_add
        return locations

    # ------------------------------------------------------- free and reads

    def free(self, location: int) -> LogRecord:
        """Tombstone the record at ``location`` (DELETE/replace path).

        Accounting-only: the value bytes stay in their segment until the
        compactor reclaims them, so concurrent readers of this batch are
        never invalidated.
        """
        record = self._entries.pop(location, None)
        if record is None:
            raise CapacityError(f"free of unknown location {location}")
        size = record.size_bytes
        record.segment.acct_live -= size
        self._live_bytes -= size
        self._dead_bytes += size
        self.stats.frees += 1
        return record

    def discard(self, location: int) -> LogRecord | None:
        """Tombstone like :meth:`free`, tolerating unknown locations.

        The bulk SET replace path folds its membership probe and free into
        this single dict pop; returns the displaced record, or ``None`` if
        ``location`` is not live (already evicted or compacted away).
        """
        record = self._entries.pop(location, None)
        if record is None:
            return None
        size = record.size_bytes
        record.segment.acct_live -= size
        self._live_bytes -= size
        self._dead_bytes += size
        self.stats.frees += 1
        return record

    def get(self, location: int, *, touch: bool = True) -> LogRecord | None:
        """Record at ``location``; ``touch`` refreshes its segment's recency."""
        record = self._entries.get(location)
        if record is not None and touch:
            self._tick += 1
            record.segment.last_touch = self._tick
        return record

    def touch_records(self, records) -> None:
        """Refresh segment recency for already-fetched records, in order.

        The vector engine's read pass holds the records its key-compare
        pass fetched; this assigns the same per-record ticks a sequence of
        ``get(location)`` calls would, without re-probing the entry dict.
        """
        tick = self._tick
        for record in records:
            tick += 1
            record.segment.last_touch = tick
        self._tick = tick

    def __contains__(self, location: int) -> bool:
        return location in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def objects(self) -> list[LogRecord]:
        """All live records (profiler harvest and test aid)."""
        return list(self._entries.values())

    # ------------------------------------------------------------ compaction

    def compact(self) -> list[tuple[int, LogRecord]]:
        """Reclaim dead space and settle the memory budget in one pass.

        Two phases over one O(live) grouping of records by segment:

        1. **Victimisation** — while live bytes alone exceed the budget,
           evict the least-recently-touched sealed segment wholesale (the
           open head goes last).  Evicted ``(location, record)`` pairs are
           returned so the caller can issue the matching index Deletes —
           the aggregate form of the slab's per-SET LRU eviction.
        2. **Rewrite** — segments at least :data:`REWRITE_DEAD_FRACTION`
           dead (the head is sealed first if it qualifies) have their
           survivors relocated to the log tail and their buffers dropped.

        Runs only at barriers (maintenance tick, post-batch hook), never
        inside a batch.
        """
        if not self._segments:
            return []
        budget = self._budget_bytes
        stats = self.stats
        segments = self._segments
        groups: dict[int, list[tuple[int, LogRecord]]] = {}
        for location, record in self._entries.items():
            groups.setdefault(id(record.segment), []).append((location, record))
        evicted: list[tuple[int, LogRecord]] = []
        did_work = False
        while self._live_bytes > budget and segments:
            victims = [s for s in segments if s is not self._head] or segments
            victim = min(victims, key=lambda s: s.last_touch)
            for location, record in groups.pop(id(victim), ()):
                del self._entries[location]
                size = record.size_bytes
                victim.acct_live -= size
                self._live_bytes -= size
                self._dead_bytes += size
                evicted.append((location, record))
                stats.evictions += 1
            self._drop_segment(victim)
            did_work = True
        head = self._head
        if head is not None and head.acct_used:
            if head.acct_used - head.acct_live >= REWRITE_DEAD_FRACTION * head.acct_used:
                self._head = None  # seal: the head becomes a rewrite candidate
        for segment in [s for s in segments if s is not self._head]:
            dead = segment.acct_used - segment.acct_live
            if dead <= 0 or dead < REWRITE_DEAD_FRACTION * segment.acct_used:
                continue
            for _location, record in groups.pop(id(segment), ()):
                self._relocate(record)
                stats.relocations += 1
            self._drop_segment(segment)
            did_work = True
        if did_work:
            stats.compactions += 1
        return evicted

    def _relocate(self, record: LogRecord) -> None:
        """Move a survivor's bytes to the log tail (compaction only)."""
        old = record.segment
        vlen = record.vlen
        size = record.size_bytes
        segment, offset = self._append(
            memoryview(old.buf)[record.offset : record.offset + vlen], vlen
        )
        record.segment = segment
        record.offset = offset
        old.acct_live -= size
        self._dead_bytes += size
        segment.acct_used += size
        segment.acct_live += size
        # Survivors carry their old segment's recency forward so the LRU
        # victim order is preserved across rewrites.
        if old.last_touch > segment.last_touch:
            segment.last_touch = old.last_touch


__all__ = [
    "ArenaStats",
    "DEFAULT_SEGMENT_BYTES",
    "LogRecord",
    "LogValueArena",
    "REWRITE_DEAD_FRACTION",
]
