"""Slab allocator with LRU eviction (the MM task's substrate).

Objects are stored in size classes ("slabs"); each class has a fixed chunk
size and a bounded chunk budget.  A SET that finds its class full evicts the
least-recently-used object of that class — which is exactly why, in the
paper's Figure 6 analysis, every SET at steady state generates one Insert
*and* one Delete index operation (Section II-C2).

Locations handed out by the allocator are stable integer handles that the
cuckoo index stores; the simulated "address space" is a dict so the store is
fully functional without real pointer arithmetic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import CapacityError, ConfigurationError
from repro.kv.objects import KVObject

#: Default geometric growth factor between slab classes, memcached-style.
DEFAULT_GROWTH_FACTOR = 2.0
#: Smallest chunk size.
DEFAULT_MIN_CHUNK = 16


@dataclass
class SlabStats:
    """Allocation/eviction counters for one allocator."""

    allocations: int = 0
    evictions: int = 0
    frees: int = 0
    failed_allocations: int = 0

    @property
    def eviction_rate(self) -> float:
        """Fraction of allocations that had to evict."""
        if self.allocations == 0:
            return 0.0
        return self.evictions / self.allocations


@dataclass
class _SlabClass:
    chunk_size: int
    max_chunks: int
    #: location -> KVObject, in LRU order (oldest first).
    objects: "OrderedDict[int, KVObject]" = field(default_factory=OrderedDict)

    @property
    def used(self) -> int:
        return len(self.objects)

    @property
    def full(self) -> bool:
        return self.used >= self.max_chunks


class SlabAllocator:
    """Size-classed allocator over a fixed memory budget with per-class LRU.

    Parameters
    ----------
    memory_bytes:
        Total budget; divided among classes on demand (first-touch claims
        pages, as memcached does).
    growth_factor, min_chunk:
        Size-class geometry.
    """

    #: Bytes claimed from the global budget at a time ("page" size).
    PAGE_BYTES = 1024 * 1024

    def __init__(
        self,
        memory_bytes: int,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
        min_chunk: int = DEFAULT_MIN_CHUNK,
    ):
        if memory_bytes <= 0:
            raise ConfigurationError("memory budget must be positive")
        if growth_factor <= 1.0:
            raise ConfigurationError("growth factor must exceed 1")
        self._budget_bytes = memory_bytes
        self._claimed_bytes = 0
        self._growth = growth_factor
        self._min_chunk = min_chunk
        self._classes: dict[int, _SlabClass] = {}
        self._location_to_class: dict[int, int] = {}
        self._next_location = 0
        self.stats = SlabStats()

    # ---------------------------------------------------------------- sizing

    def chunk_size_for(self, payload_bytes: int) -> int:
        """Chunk size of the class that would hold ``payload_bytes``."""
        size = self._min_chunk
        while size < payload_bytes:
            size = int(size * self._growth)
        return size

    def _class_for(self, payload_bytes: int) -> _SlabClass:
        chunk = self.chunk_size_for(payload_bytes)
        slab = self._classes.get(chunk)
        if slab is None:
            slab = _SlabClass(chunk_size=chunk, max_chunks=0)
            self._classes[chunk] = slab
        return slab

    def _grow_class(self, slab: _SlabClass) -> bool:
        """Claim one page from the global budget for ``slab`` if any remains."""
        if self._claimed_bytes + self.PAGE_BYTES > self._budget_bytes:
            return False
        self._claimed_bytes += self.PAGE_BYTES
        slab.max_chunks += max(1, self.PAGE_BYTES // slab.chunk_size)
        return True

    # ------------------------------------------------------------ allocation

    def allocate(self, obj: KVObject) -> tuple[int, KVObject | None]:
        """Store ``obj``; return ``(location, evicted_object_or_None)``.

        When the object's size class is full and the global budget is
        exhausted, the class's LRU object is evicted and returned so the
        caller can issue the corresponding index Delete.  Raises
        :class:`CapacityError` if the class is full *and* empty (object
        larger than any obtainable page share).
        """
        slab = self._class_for(obj.size_bytes)
        evicted: KVObject | None = None
        if slab.full and not self._grow_class(slab):
            if not slab.objects:
                self.stats.failed_allocations += 1
                raise CapacityError(
                    f"object of {obj.size_bytes} B cannot fit in class "
                    f"{slab.chunk_size} with zero chunks"
                )
            evicted_location, evicted = slab.objects.popitem(last=False)
            self._location_to_class.pop(evicted_location, None)
            self.stats.evictions += 1
        location = self._next_location
        self._next_location += 1
        slab.objects[location] = obj
        self._location_to_class[location] = slab.chunk_size
        self.stats.allocations += 1
        return location, evicted

    def free(self, location: int) -> KVObject:
        """Release the object at ``location`` (DELETE query path)."""
        chunk = self._location_to_class.pop(location, None)
        if chunk is None:
            raise CapacityError(f"free of unknown location {location}")
        obj = self._classes[chunk].objects.pop(location)
        self.stats.frees += 1
        return obj

    # ----------------------------------------------------------------- reads

    def get(self, location: int, *, touch: bool = True) -> KVObject | None:
        """Object at ``location``; ``touch`` refreshes its LRU position."""
        chunk = self._location_to_class.get(location)
        if chunk is None:
            return None
        slab = self._classes[chunk]
        obj = slab.objects.get(location)
        if obj is not None and touch:
            slab.objects.move_to_end(location)
        return obj

    def __contains__(self, location: int) -> bool:
        return location in self._location_to_class

    def __len__(self) -> int:
        return len(self._location_to_class)

    @property
    def claimed_bytes(self) -> int:
        """Bytes claimed from the budget so far."""
        return self._claimed_bytes

    @property
    def budget_bytes(self) -> int:
        return self._budget_bytes

    def class_sizes(self) -> list[int]:
        """Chunk sizes of the classes created so far (ascending)."""
        return sorted(self._classes)

    def objects(self) -> list[KVObject]:
        """All live objects (test aid)."""
        out: list[KVObject] = []
        for slab in self._classes.values():
            out.extend(slab.objects.values())
        return out
