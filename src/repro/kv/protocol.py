"""Binary wire protocol for queries and responses.

Clients batch as many queries as fit into an Ethernet frame (paper Section
V-A uses UDP with frame-level batching to keep the NIC off the critical
path).  The format is a compact length-prefixed binary layout:

Query:     ``opcode:u8 | key_len:u16 | value_len:u32 | key | value``
Response:  ``status:u8 | value_len:u32 | value``

GET carries no value; SET carries one; DELETE carries neither.  The PP task
parses these; the WR task emits responses.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

_QUERY_HEADER = struct.Struct("<BHI")
_RESPONSE_HEADER = struct.Struct("<BI")


class QueryType(enum.Enum):
    """The three client-visible operations (paper Section II-B)."""

    GET = 1
    SET = 2
    DELETE = 3


class ResponseStatus(enum.Enum):
    """Outcome codes carried in responses."""

    OK = 0
    NOT_FOUND = 1
    STORED = 2
    DELETED = 3
    ERROR = 4
    #: Cluster redirect: the queried server does not own the key under its
    #: current manifest.  The response value carries the server's manifest
    #: epoch as 8 little-endian bytes; the client refreshes its manifest
    #: and retries against the new owner (see ``docs/cluster.md``).
    WRONG_NODE = 5


@dataclass
class Query:
    """One parsed client query."""

    qtype: QueryType
    key: bytes
    value: bytes = b""

    def __post_init__(self) -> None:
        if not self.key:
            raise ProtocolError("query key must be non-empty")
        if self.qtype is not QueryType.SET and self.value:
            raise ProtocolError(f"{self.qtype.name} query cannot carry a value")

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes, used for frame packing."""
        return _QUERY_HEADER.size + len(self.key) + len(self.value)


@dataclass
class Response:
    """One response destined for a client."""

    status: ResponseStatus
    value: bytes = b""

    @property
    def wire_size(self) -> int:
        return _RESPONSE_HEADER.size + len(self.value)


def encode_queries(queries: list[Query]) -> bytes:
    """Serialise queries into one payload (what a client frame carries)."""
    parts: list[bytes] = []
    for query in queries:
        parts.append(
            _QUERY_HEADER.pack(query.qtype.value, len(query.key), len(query.value))
        )
        parts.append(query.key)
        parts.append(query.value)
    return b"".join(parts)


def decode_queries(payload: bytes) -> list[Query]:
    """Parse a frame payload back into queries (the PP task's core).

    Raises :class:`ProtocolError` on truncation or unknown opcodes.
    """
    queries: list[Query] = []
    offset = 0
    end = len(payload)
    while offset < end:
        if end - offset < _QUERY_HEADER.size:
            raise ProtocolError(f"truncated query header at offset {offset}")
        opcode, key_len, value_len = _QUERY_HEADER.unpack_from(payload, offset)
        offset += _QUERY_HEADER.size
        try:
            qtype = QueryType(opcode)
        except ValueError:
            raise ProtocolError(f"unknown opcode {opcode} at offset {offset}") from None
        if end - offset < key_len + value_len:
            raise ProtocolError(f"truncated query body at offset {offset}")
        key = payload[offset : offset + key_len]
        offset += key_len
        value = payload[offset : offset + value_len]
        offset += value_len
        queries.append(Query(qtype, key, value))
    return queries


def encode_responses(responses: list[Response]) -> bytes:
    """Serialise responses into one payload (the WR task's output)."""
    parts: list[bytes] = []
    for response in responses:
        parts.append(_RESPONSE_HEADER.pack(response.status.value, len(response.value)))
        parts.append(response.value)
    return b"".join(parts)


def decode_responses(payload: bytes) -> list[Response]:
    """Parse a response payload (used by test clients to verify round trips)."""
    responses: list[Response] = []
    offset = 0
    end = len(payload)
    while offset < end:
        if end - offset < _RESPONSE_HEADER.size:
            raise ProtocolError(f"truncated response header at offset {offset}")
        status_code, value_len = _RESPONSE_HEADER.unpack_from(payload, offset)
        offset += _RESPONSE_HEADER.size
        try:
            status = ResponseStatus(status_code)
        except ValueError:
            raise ProtocolError(f"unknown status {status_code}") from None
        if end - offset < value_len:
            raise ProtocolError(f"truncated response body at offset {offset}")
        value = payload[offset : offset + value_len]
        offset += value_len
        responses.append(Response(status, value))
    return responses
