"""Functional in-memory key-value store substrate.

This package is a *working* key-value store, not a stub: queries parsed from
the simulated network really look keys up in a cuckoo hash table, really
allocate/evict through a slab allocator, and really produce response bytes.
The pipeline engine charges simulated time for each of those actions, but
their functional results are exact, which is what the test suite verifies.

Components mirror the paper's Section II-B description of an IMKV node:

* :mod:`repro.kv.objects` — key-value object layout including the access
  counter and sampling timestamp used by the skew estimator (Section IV-B);
* :mod:`repro.kv.hashtable` — the cuckoo hash index storing short key
  signatures plus object locations (Section II-B, [15]);
* :mod:`repro.kv.slab` — slab allocation with LRU eviction; a SET on a full
  store evicts an existing object, generating the Insert+Delete pairs the
  paper analyses in Figure 6;
* :mod:`repro.kv.store` — the assembled store exposing GET/SET/DELETE;
* :mod:`repro.kv.protocol` — the binary wire format used by the simulated
  clients and NIC.
"""

from repro.kv.hashtable import CuckooHashTable, IndexStats
from repro.kv.objects import KVObject, key_signature
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_queries,
    decode_responses,
    encode_queries,
    encode_responses,
)
from repro.kv.slab import SlabAllocator, SlabStats
from repro.kv.store import KVStore, StoreStats

__all__ = [
    "CuckooHashTable",
    "IndexStats",
    "KVObject",
    "KVStore",
    "Query",
    "QueryType",
    "Response",
    "ResponseStatus",
    "SlabAllocator",
    "SlabStats",
    "StoreStats",
    "decode_queries",
    "decode_responses",
    "encode_queries",
    "encode_responses",
    "key_signature",
]
