"""The assembled key-value store: cuckoo index over a slab heap.

:class:`KVStore` wires the cuckoo hash table and the slab allocator into the
GET/SET/DELETE semantics of Section II-B, and reports the per-operation cost
observations (buckets touched, evictions generated) that both the workload
profiler and the cost model consume.

The pipeline engine does not call ``get``/``set`` directly — it runs the
fine-grained tasks (IN, KC, RD, ...) separately so they can live on
different processors — but those task implementations delegate to the
primitive operations exposed here, and the convenience methods compose the
same primitives, so unit tests of the store exercise exactly the code the
pipeline runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.kv.hashtable import CuckooHashTable
from repro.kv.objects import KVObject
from repro.kv.slab import SlabAllocator


@dataclass
class StoreStats:
    """Store-level operation counters."""

    gets: int = 0
    get_hits: int = 0
    sets: int = 0
    deletes: int = 0
    delete_hits: int = 0
    signature_false_positives: int = 0

    @property
    def hit_rate(self) -> float:
        if self.gets == 0:
            return 0.0
        return self.get_hits / self.gets


@dataclass
class SetOutcome:
    """What one SET did: where the object went and what it displaced.

    ``evicted`` is the LRU object pushed out by the slab allocator (paper:
    "a SET query needs to evict an existing key-value object"), and
    ``replaced`` is a previous version of the same key.  Either generates an
    index Delete; the new object generates an index Insert — the Insert +
    Delete pairing analysed in Figure 6.  The ``*_location`` fields identify
    the displaced index entries so Deletes remove exactly the stale entry
    even when a reassigned Insert has already added the new one.
    """

    location: int
    evicted: KVObject | None
    replaced: KVObject | None
    evicted_location: int | None = None
    replaced_location: int | None = None

    @property
    def index_deletes(self) -> int:
        return int(self.evicted is not None) + int(self.replaced is not None)


class KVStore:
    """A functional IMKV node body (index + heap), no networking attached.

    Parameters
    ----------
    memory_bytes:
        Slab budget for key-value objects.
    expected_objects:
        Sizing hint for the index (buckets ~ expected / slots, padded to
        keep cuckoo load factors safe).
    """

    def __init__(
        self,
        memory_bytes: int,
        expected_objects: int,
        num_hashes: int = 2,
        index=None,
    ):
        buckets = max(64, int(expected_objects / 2))
        if index is None:
            index = CuckooHashTable(num_buckets=buckets, num_hashes=num_hashes)
        self.index = index
        self.heap = SlabAllocator(memory_bytes)
        self._key_location: dict[bytes, int] = {}
        self.stats = StoreStats()
        #: Optional :class:`~repro.kv.hotcache.HotKeyCache`; the write
        #: paths (allocate/delete) keep it coherent, the engines' hot path
        #: serves GETs from it when it is attached and gated active.
        self.hot_cache = None

    def attach_hot_cache(self, capacity: int | None = None):
        """Create and attach a hot-key read cache; returns it."""
        from repro.kv.hotcache import DEFAULT_CAPACITY, HotKeyCache

        self.hot_cache = HotKeyCache(capacity or DEFAULT_CAPACITY)
        return self.hot_cache

    def __len__(self) -> int:
        return len(self._key_location)

    # ------------------------------------------------------------ primitives
    # These are what the pipeline's fine-grained tasks call.

    def index_search(self, key: bytes) -> list[int]:
        """IN/Search: candidate locations by signature."""
        candidates, _ = self.index.search(key)
        return candidates

    def key_compare(self, key: bytes, candidates: list[int]) -> int | None:
        """KC: verify the full key against candidate objects.

        Returns the matching location or None; counts signature false
        positives (candidates rejected by the comparison).
        """
        match: int | None = None
        for location in candidates:
            obj = self.heap.get(location, touch=False)
            if obj is not None and obj.key == key:
                match = location
            else:
                self.stats.signature_false_positives += 1
        return match

    def read_value(self, location: int, *, epoch: int = 0) -> bytes | None:
        """RD: fetch the value bytes, recording a profiler access."""
        obj = self.heap.get(location)
        if obj is None:
            return None
        obj.record_access(epoch)
        return obj.value

    def allocate(self, key: bytes, value: bytes) -> SetOutcome:
        """MM: place a new object, evicting/replacing as needed."""
        replaced: KVObject | None = None
        replaced_location: int | None = None
        old_location = self._key_location.get(key)
        if old_location is not None and old_location in self.heap:
            replaced = self.heap.free(old_location)
            replaced_location = old_location
        location, evicted = self.heap.allocate(KVObject(key, value))
        evicted_location: int | None = None
        if evicted is not None:
            evicted_location = self._key_location.pop(evicted.key, None)
        self._key_location[key] = location
        cache = self.hot_cache
        if cache is not None:
            # The single key->value binding write point: bump the written
            # key's version (refreshing a hot snapshot in place) and drop
            # any snapshot of a slab-evicted key.
            if evicted is not None:
                cache.invalidate(evicted.key)
            cache.on_write(key, value)
        return SetOutcome(
            location=location,
            evicted=evicted,
            replaced=replaced,
            evicted_location=evicted_location,
            replaced_location=replaced_location,
        )

    def index_insert(self, key: bytes, location: int) -> int:
        """IN/Insert: add the new entry; returns buckets written."""
        return self.index.insert(key, location)

    def index_delete(self, key: bytes, location: int | None = None) -> bool:
        """IN/Delete: drop an index entry (for evicted/replaced/deleted keys)."""
        return self.index.delete(key, location)

    # ------------------------------------------------------- bulk primitives
    # Whole-batch forms of the primitives above, used by the engine layer
    # (repro.engine): one tight loop inside the store per pipeline phase
    # instead of one cross-module call per query.  Each is semantically
    # exactly N applications of its scalar counterpart, in order.
    #
    # The index-touching bulk operations route probe specs (signature +
    # candidate buckets) through the index's persistent probe cache, so a
    # hot key is hashed once ever rather than once per operation — the
    # columnar analogue of Mega-KV computing signatures during packet
    # processing and shipping them with the job.  Alternative index
    # implementations without the prehashed interface fall back to their
    # scalar operations, so the engine works against any index.

    def multi_index_search(self, keys: list[bytes]) -> list[list[int]]:
        """Bulk IN/Search: candidate locations per key, in input order."""
        multi = getattr(self.index, "multi_search", None)
        if multi is not None:
            return multi(keys)
        search = self.index.search
        return [search(key)[0] for key in keys]

    def multi_key_compare(
        self, keys: list[bytes], candidate_lists: list[list[int]]
    ) -> list[int | None]:
        """Bulk KC: verify full keys against each query's candidates."""
        heap_get = self.heap.get
        false_positives = 0
        matches: list[int | None] = []
        append = matches.append
        for key, candidates in zip(keys, candidate_lists):
            match: int | None = None
            for location in candidates:
                obj = heap_get(location, touch=False)
                if obj is not None and obj.key == key:
                    match = location
                else:
                    false_positives += 1
            append(match)
        self.stats.signature_false_positives += false_positives
        return matches

    def multi_read_value(
        self,
        locations: list[int | None],
        *,
        epoch: int = 0,
        counts: list[int] | None = None,
    ) -> list[bytes | None]:
        """Bulk RD: value bytes per location (None passes through as a miss).

        ``counts`` (aligned with ``locations``) credits each read with that
        many profiler accesses — the engines' batch dedup reads a run of a
        repeated key once but must not under-report its popularity.
        """
        heap_get = self.heap.get
        values: list[bytes | None] = []
        append = values.append
        if counts is not None:
            for location, count in zip(locations, counts):
                if location is None:
                    append(None)
                    continue
                obj = heap_get(location)
                if obj is None:
                    append(None)
                else:
                    obj.record_access(epoch, count)
                    append(obj.value)
            return values
        for location in locations:
            if location is None:
                append(None)
                continue
            obj = heap_get(location)
            if obj is None:
                append(None)
            else:
                obj.record_access(epoch)
                append(obj.value)
        return values

    def record_extra_accesses(self, key: bytes, count: int, *, epoch: int = 0) -> None:
        """Credit ``count`` additional profiler accesses to ``key``'s object.

        The sharded engine's pre-split dedup answers duplicate GET rows
        outside the owning shard, so the RD pass inside the shard sees the
        run at multiplicity 1; this restores the run's full popularity for
        the skew estimator without touching the heap LRU (the
        representative's read already did).
        """
        location = self._key_location.get(key)
        if location is None:
            return
        obj = self.heap.get(location, touch=False)
        if obj is not None:
            obj.record_access(epoch, count)

    def multi_allocate(self, items: list[tuple[bytes, bytes]]) -> list[SetOutcome]:
        """Bulk MM: allocate each (key, value) in order; outcomes per item."""
        allocate = self.allocate
        return [allocate(key, value) for key, value in items]

    def multi_index_insert(self, entries: list[tuple[bytes, int]]) -> int:
        """Bulk IN/Insert: apply entries in order; returns buckets written."""
        index = self.index
        probe = getattr(index, "probe_cached", None)
        if probe is None:
            insert = index.insert
            return sum(insert(key, location) for key, location in entries)
        insert = index.insert_prehashed
        buckets = 0
        for key, location in entries:
            signature, candidates = probe(key)
            buckets += insert(signature, candidates, location)
        return buckets

    def multi_index_delete(self, entries: list[tuple[bytes, int | None]]) -> int:
        """Bulk IN/Delete: apply entries in order; returns entries removed."""
        index = self.index
        probe = getattr(index, "probe_cached", None)
        if probe is None:
            delete = index.delete
            return sum(bool(delete(key, location)) for key, location in entries)
        delete = index.delete_prehashed
        removed = 0
        for key, location in entries:
            signature, candidates = probe(key)
            if delete(signature, candidates, location):
                removed += 1
        return removed

    # ------------------------------------------------------- whole operations

    def get(self, key: bytes, *, epoch: int = 0) -> bytes | None:
        """Full GET: Search -> KC -> RD."""
        self.stats.gets += 1
        candidates = self.index_search(key)
        location = self.key_compare(key, candidates)
        if location is None:
            return None
        value = self.read_value(location, epoch=epoch)
        if value is not None:
            self.stats.get_hits += 1
        return value

    def set(self, key: bytes, value: bytes) -> SetOutcome:
        """Full SET: MM -> Insert (+ Delete for displaced entries)."""
        self.stats.sets += 1
        outcome = self.allocate(key, value)
        if outcome.replaced is not None:
            self.index_delete(key, outcome.replaced_location)
        if outcome.evicted is not None:
            self.index_delete(outcome.evicted.key, outcome.evicted_location)
        self.index_insert(key, outcome.location)
        return outcome

    def delete(self, key: bytes) -> bool:
        """Full DELETE: remove from heap and index."""
        self.stats.deletes += 1
        location = self._key_location.pop(key, None)
        if location is None or location not in self.heap:
            return False
        self.heap.free(location)
        self.index_delete(key, location)
        if self.hot_cache is not None:
            self.hot_cache.invalidate(key)
        self.stats.delete_hits += 1
        return True

    # ------------------------------------------------------- bulk entry points
    # Arena-backed bulk operations: one call applies a whole decoded
    # column block (the procshard workers' populate/import path and the
    # cluster's columnar bulk-SET windows land here).

    def bulk_set_columns(self, keys: list[bytes], values: list[bytes]) -> int:
        """Apply a columnar SET block in order; returns items stored.

        Semantics match :meth:`populate` (sequential full SETs, stopping
        when the index is saturated) over parallel key/value columns —
        typically sliced straight out of a shared-memory arena block
        (:func:`repro.net.arena.decode_query_block`).
        """
        stored = 0
        for key, value in zip(keys, values):
            try:
                self.set(key, value)
            except CapacityError:
                break
            stored += 1
        return stored

    def bulk_get_columns(
        self, keys: list[bytes], *, epoch: int = 0
    ) -> list[bytes | None]:
        """Bulk GET over a key column: Search -> KC -> RD as three passes.

        The columnar counterpart of :meth:`get` (stats counted the same
        way), used by arena-fed readers that already hold a key column
        and want one store round instead of a per-key call chain.
        """
        n = len(keys)
        self.stats.gets += n
        candidates = self.multi_index_search(keys)
        locations = self.multi_key_compare(keys, candidates)
        values = self.multi_read_value(locations, epoch=epoch)
        self.stats.get_hits += sum(1 for v in values if v is not None)
        return values

    # -------------------------------------------------------------- warm-up

    def populate(self, items: list[tuple[bytes, bytes]]) -> int:
        """Bulk-load items (benchmark warm-up); returns count stored.

        Stops early if the index cannot absorb more (cuckoo capacity), which
        callers treat as "store is full" rather than an error.
        """
        stored = 0
        for key, value in items:
            try:
                self.set(key, value)
            except CapacityError:
                break
            stored += 1
        return stored
