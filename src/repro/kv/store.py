"""The assembled key-value store: cuckoo index over a value heap.

:class:`KVStore` wires the cuckoo hash table and a value heap — the
append-only :class:`~repro.kv.logarena.LogValueArena` by default, or the
classic :class:`~repro.kv.slab.SlabAllocator` via ``heap="slab"`` — into
the GET/SET/DELETE semantics of Section II-B, and reports the
per-operation cost observations (buckets touched, evictions generated)
that both the workload profiler and the cost model consume.

The pipeline engine does not call ``get``/``set`` directly — it runs the
fine-grained tasks (IN, KC, RD, ...) separately so they can live on
different processors — but those task implementations delegate to the
primitive operations exposed here, and the convenience methods compose the
same primitives, so unit tests of the store exercise exactly the code the
pipeline runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.kv.hashtable import CuckooHashTable
from repro.kv.logarena import LogValueArena
from repro.kv.objects import KVObject
from repro.kv.slab import SlabAllocator
from repro.telemetry import get_telemetry


@dataclass
class StoreStats:
    """Store-level operation counters."""

    gets: int = 0
    get_hits: int = 0
    sets: int = 0
    deletes: int = 0
    delete_hits: int = 0
    signature_false_positives: int = 0

    @property
    def hit_rate(self) -> float:
        if self.gets == 0:
            return 0.0
        return self.get_hits / self.gets


@dataclass(slots=True)
class SetOutcome:
    """What one SET did: where the object went and what it displaced.

    ``evicted`` is the LRU object pushed out by the slab allocator (paper:
    "a SET query needs to evict an existing key-value object"), and
    ``replaced`` is a previous version of the same key.  Either generates an
    index Delete; the new object generates an index Insert — the Insert +
    Delete pairing analysed in Figure 6.  The ``*_location`` fields identify
    the displaced index entries so Deletes remove exactly the stale entry
    even when a reassigned Insert has already added the new one.

    On a log-arena heap ``evicted`` is always ``None``: the arena never
    evicts inside a SET, it tombstones and settles evictions (with their
    index Deletes) in bulk at the compaction barrier — see
    :meth:`KVStore.maintenance`.  Displaced objects are
    :class:`~repro.kv.objects.KVObject` on the slab and
    :class:`~repro.kv.logarena.LogRecord` on the log arena; both expose
    ``key``/``value``.
    """

    location: int
    evicted: object | None
    replaced: object | None
    evicted_location: int | None = None
    replaced_location: int | None = None

    @property
    def index_deletes(self) -> int:
        return int(self.evicted is not None) + int(self.replaced is not None)


class KVStore:
    """A functional IMKV node body (index + heap), no networking attached.

    Parameters
    ----------
    memory_bytes:
        Heap budget for key-value objects.
    expected_objects:
        Sizing hint for the index (buckets ~ expected / slots, padded to
        keep cuckoo load factors safe).
    heap:
        Value storage substrate: ``"log"`` (default) for the append-only
        :class:`~repro.kv.logarena.LogValueArena` (bump-pointer SETs,
        tombstoned deletes, barrier-time compaction), ``"slab"`` for the
        size-classed :class:`~repro.kv.slab.SlabAllocator` with per-SET
        LRU eviction, or an allocator instance with the same interface.
    delta_index:
        When true, attach a write-absorbing
        :class:`~repro.kv.deltaindex.DeltaIndex`: Insert/Delete/Reassign
        traffic collects there between write barriers and merges into the
        cuckoo table in bulk; Searches resolve delta-first, then main.
    """

    def __init__(
        self,
        memory_bytes: int,
        expected_objects: int,
        num_hashes: int = 2,
        index=None,
        heap: str | object = "log",
        delta_index: bool = False,
    ):
        buckets = max(64, int(expected_objects / 2))
        if index is None:
            index = CuckooHashTable(num_buckets=buckets, num_hashes=num_hashes)
        self.index = index
        if heap is None or heap == "log":
            self.heap = LogValueArena(memory_bytes)
        elif heap == "slab":
            self.heap = SlabAllocator(memory_bytes)
        elif isinstance(heap, str):
            raise ConfigurationError(
                f"heap must be 'slab' or 'log', not {heap!r}"
            )
        else:
            self.heap = heap
        #: Log-arena fast paths, bound once (None on a slab heap).
        self._heap_alloc_kv = getattr(self.heap, "allocate_kv", None)
        self._heap_bulk_alloc = getattr(self.heap, "multi_allocate_kv", None)
        self._heap_discard = getattr(self.heap, "discard", None)
        self._heap_compact = getattr(self.heap, "compact", None)
        self._key_location: dict[bytes, int] = {}
        self.stats = StoreStats()
        #: Optional :class:`~repro.kv.hotcache.HotKeyCache`; the write
        #: paths (allocate/delete) keep it coherent, the engines' hot path
        #: serves GETs from it when it is attached and gated active.
        self.hot_cache = None
        #: Optional :class:`~repro.kv.deltaindex.DeltaIndex` (public so the
        #: vector engine's Search pass can pre-filter against it); ``_delta``
        #: is the same object, bound separately for the hot-path guards.
        self.delta_index = None
        self._delta = None
        if delta_index:
            self.attach_delta_index()

    def attach_hot_cache(self, capacity: int | None = None):
        """Create and attach a hot-key read cache; returns it."""
        from repro.kv.hotcache import DEFAULT_CAPACITY, HotKeyCache

        self.hot_cache = HotKeyCache(capacity or DEFAULT_CAPACITY)
        return self.hot_cache

    def attach_delta_index(
        self,
        merge_threshold: int | None = None,
        capacity: int | None = None,
        max_age_s: float | None = None,
    ):
        """Create and attach a write-absorbing delta index; returns it.

        Requires an index exposing the prehashed bulk interface
        (:meth:`~repro.kv.hashtable.CuckooHashTable.bulk_probe` /
        ``bulk_apply_prehashed`` / ``forget_probes``); raises
        :class:`~repro.errors.ConfigurationError` otherwise.
        """
        from repro.kv.deltaindex import (
            DEFAULT_CAPACITY,
            DEFAULT_MAX_AGE_S,
            DEFAULT_MERGE_THRESHOLD,
            DeltaIndex,
        )

        index = self.index
        for attr in ("bulk_probe", "bulk_apply_prehashed", "forget_probes"):
            if not hasattr(index, attr):
                raise ConfigurationError(
                    "the delta index requires an index with the bulk "
                    f"prehashed interface (missing {attr!r})"
                )
        self._delta = self.delta_index = DeltaIndex(
            index,
            merge_threshold or DEFAULT_MERGE_THRESHOLD,
            capacity or DEFAULT_CAPACITY,
            DEFAULT_MAX_AGE_S if max_age_s is None else max_age_s,
        )
        return self._delta

    def __len__(self) -> int:
        return len(self._key_location)

    # ------------------------------------------------------------ primitives
    # These are what the pipeline's fine-grained tasks call.

    def index_search(self, key: bytes) -> list[int]:
        """IN/Search: candidate locations by signature (delta-first)."""
        delta = self._delta
        if delta is not None:
            hit = delta.lookup(key)
            if hit is not None:
                # A delta hit is still one Search; it just costs no bucket
                # reads (the binding is exact, KC verifies as usual).
                self.index.stats.searches += 1
                return hit
        candidates, _ = self.index.search(key)
        return candidates

    def key_compare(self, key: bytes, candidates: list[int]) -> int | None:
        """KC: verify the full key against candidate objects.

        Returns the matching location or None; counts signature false
        positives (candidates rejected by the comparison).
        """
        match: int | None = None
        for location in candidates:
            obj = self.heap.get(location, touch=False)
            if obj is not None and obj.key == key:
                match = location
            else:
                self.stats.signature_false_positives += 1
        return match

    def read_value(self, location: int, *, epoch: int = 0) -> bytes | None:
        """RD: fetch the value bytes, recording a profiler access."""
        obj = self.heap.get(location)
        if obj is None:
            return None
        obj.record_access(epoch)
        return obj.value

    def allocate(self, key: bytes, value: bytes) -> SetOutcome:
        """MM: place a new object, evicting/replacing as needed."""
        replaced = None
        replaced_location: int | None = None
        old_location = self._key_location.get(key)
        if old_location is not None and old_location in self.heap:
            replaced = self.heap.free(old_location)
            replaced_location = old_location
        alloc_kv = self._heap_alloc_kv
        try:
            if alloc_kv is not None:
                location, evicted = alloc_kv(key, value)
            else:
                location, evicted = self.heap.allocate(KVObject(key, value))
        except CapacityError:
            if replaced is not None:
                # The old version is already freed: drop every reference
                # to it so a later GET misses instead of resolving a
                # dangling handle through the stale mapping.
                self._key_location.pop(key, None)
                self.index_delete(key, replaced_location)
                if self.hot_cache is not None:
                    self.hot_cache.invalidate(key)
            raise
        evicted_location: int | None = None
        if evicted is not None:
            evicted_location = self._key_location.pop(evicted.key, None)
        self._key_location[key] = location
        cache = self.hot_cache
        if cache is not None:
            # The single key->value binding write point: bump the written
            # key's version (refreshing a hot snapshot in place) and drop
            # any snapshot of a slab-evicted key.
            if evicted is not None:
                cache.invalidate(evicted.key)
            cache.on_write(key, value)
        return SetOutcome(
            location=location,
            evicted=evicted,
            replaced=replaced,
            evicted_location=evicted_location,
            replaced_location=replaced_location,
        )

    def index_insert(self, key: bytes, location: int) -> int:
        """IN/Insert: add the new entry; returns buckets written.

        With a delta attached the insert is absorbed there (zero bucket
        writes now; the merge settles it in bulk).
        """
        delta = self._delta
        if delta is not None:
            delta.insert(key, location)
            if delta.overflowed:
                self._merge_delta()
            return 0
        return self.index.insert(key, location)

    def index_delete(self, key: bytes, location: int | None = None) -> bool:
        """IN/Delete: drop an index entry (for evicted/replaced/deleted keys).

        With a delta attached the delete is absorbed as a tombstone; the
        rare location-less delete of a key unknown to the delta applies to
        the main table synchronously (the delta cannot express "remove any
        signature match").
        """
        delta = self._delta
        if delta is not None:
            absorbed = delta.delete(key, location)
            if absorbed is not None:
                if delta.overflowed:
                    self._merge_delta()
                return bool(absorbed)
        return self.index.delete(key, location)

    # ------------------------------------------------------- bulk primitives
    # Whole-batch forms of the primitives above, used by the engine layer
    # (repro.engine): one tight loop inside the store per pipeline phase
    # instead of one cross-module call per query.  Each is semantically
    # exactly N applications of its scalar counterpart, in order.
    #
    # The index-touching bulk operations route probe specs (signature +
    # candidate buckets) through the index's persistent probe cache, so a
    # hot key is hashed once ever rather than once per operation — the
    # columnar analogue of Mega-KV computing signatures during packet
    # processing and shipping them with the job.  Alternative index
    # implementations without the prehashed interface fall back to their
    # scalar operations, so the engine works against any index.

    def multi_index_search(self, keys: list[bytes]) -> list[list[int]]:
        """Bulk IN/Search: candidate locations per key, in input order.

        Delta-resident keys resolve from the delta (exact, zero bucket
        reads); only the misses touch the main table.
        """
        delta = self._delta
        if delta is not None and len(delta):
            lookup = delta.lookup
            out: list[list[int] | None] = [None] * len(keys)
            miss_keys: list[bytes] = []
            miss_pos: list[int] = []
            for i, key in enumerate(keys):
                hit = lookup(key)
                if hit is None:
                    miss_keys.append(key)
                    miss_pos.append(i)
                else:
                    out[i] = hit
            delta_hits = len(keys) - len(miss_keys)
            if delta_hits:
                self.index.stats.searches += delta_hits
            if miss_keys:
                multi = getattr(self.index, "multi_search", None)
                if multi is not None:
                    found = multi(miss_keys)
                else:
                    search = self.index.search
                    found = [search(key)[0] for key in miss_keys]
                for pos, candidates in zip(miss_pos, found):
                    out[pos] = candidates
            return out
        multi = getattr(self.index, "multi_search", None)
        if multi is not None:
            return multi(keys)
        search = self.index.search
        return [search(key)[0] for key in keys]

    def multi_key_compare(
        self, keys: list[bytes], candidate_lists: list[list[int]]
    ) -> list[int | None]:
        """Bulk KC: verify full keys against each query's candidates."""
        heap_get = self.heap.get
        false_positives = 0
        matches: list[int | None] = []
        append = matches.append
        for key, candidates in zip(keys, candidate_lists):
            match: int | None = None
            for location in candidates:
                obj = heap_get(location, touch=False)
                if obj is not None and obj.key == key:
                    match = location
                else:
                    false_positives += 1
            append(match)
        self.stats.signature_false_positives += false_positives
        return matches

    def multi_read_value(
        self,
        locations: list[int | None],
        *,
        epoch: int = 0,
        counts: list[int] | None = None,
    ) -> list[bytes | None]:
        """Bulk RD: value bytes per location (None passes through as a miss).

        ``counts`` (aligned with ``locations``) credits each read with that
        many profiler accesses — the engines' batch dedup reads a run of a
        repeated key once but must not under-report its popularity.
        """
        heap_get = self.heap.get
        values: list[bytes | None] = []
        append = values.append
        if counts is not None:
            for location, count in zip(locations, counts):
                if location is None:
                    append(None)
                    continue
                obj = heap_get(location)
                if obj is None:
                    append(None)
                else:
                    obj.record_access(epoch, count)
                    append(obj.value)
            return values
        for location in locations:
            if location is None:
                append(None)
                continue
            obj = heap_get(location)
            if obj is None:
                append(None)
            else:
                obj.record_access(epoch)
                append(obj.value)
        return values

    def record_extra_accesses(self, key: bytes, count: int, *, epoch: int = 0) -> None:
        """Credit ``count`` additional profiler accesses to ``key``'s object.

        The sharded engine's pre-split dedup answers duplicate GET rows
        outside the owning shard, so the RD pass inside the shard sees the
        run at multiplicity 1; this restores the run's full popularity for
        the skew estimator without touching the heap LRU (the
        representative's read already did).
        """
        location = self._key_location.get(key)
        if location is None:
            return
        obj = self.heap.get(location, touch=False)
        if obj is not None:
            obj.record_access(epoch, count)

    def multi_allocate(self, items: list[tuple[bytes, bytes]]) -> list[SetOutcome]:
        """Bulk MM: allocate each (key, value) in order; outcomes per item.

        On a log-arena heap the whole run is placed with one columnar
        append (:meth:`~repro.kv.logarena.LogValueArena.multi_allocate_kv`)
        and only the replace bookkeeping stays per item; outcomes are
        identical to N scalar calls (in-batch duplicate keys replace the
        earlier version, ``evicted`` is always ``None`` — the arena defers
        eviction to the compaction barrier).
        """
        bulk = self._heap_bulk_alloc
        if bulk is None or not items:
            allocate = self.allocate
            return [allocate(key, value) for key, value in items]
        keys = [key for key, _ in items]
        values = [value for _, value in items]
        if max(map(len, keys)) + max(map(len, values)) > self.heap.budget_bytes:
            # Conservative screen tripped: re-check exactly — an oversized
            # item must fail at its position with every earlier item
            # applied, which is exactly the scalar loop.
            budget = self.heap.budget_bytes
            if any(len(key) + len(value) > budget for key, value in items):
                allocate = self.allocate
                return [allocate(key, value) for key, value in items]
        locations = bulk(keys, values)
        key_location = self._key_location
        key_location_get = key_location.get
        discard = self._heap_discard
        if discard is None:
            heap_free, heap_contains = self.heap.free, self.heap.__contains__

            def discard(location):
                return heap_free(location) if heap_contains(location) else None

        cache = self.hot_cache
        on_write = cache.on_write if cache is not None else None
        outcomes: list[SetOutcome] = []
        append = outcomes.append
        for key, value, location in zip(keys, values, locations):
            old_location = key_location_get(key)
            replaced = (
                discard(old_location) if old_location is not None else None
            )
            key_location[key] = location
            if on_write is not None:
                on_write(key, value)
            append(
                SetOutcome(
                    location,
                    None,
                    replaced,
                    None,
                    old_location if replaced is not None else None,
                )
            )
        return outcomes

    def multi_allocate_columns(
        self, keys: list[bytes], values: list[bytes]
    ) -> tuple[list[int], list[int | None], list[bool]] | None:
        """Columnar MM over parallel key/value columns (bulk-heap fast path).

        The engines' MM stage calls this first: on a bulk-alloc heap the
        whole SET run lands with one columnar append and the replace
        bookkeeping returns as aligned columns — ``locations[i]`` for the
        new object, ``replaced[i]`` as the displaced old location (``None``
        when ``keys[i]`` was fresh or its index entry was settled here),
        and ``settled[i]`` marking items whose Insert+Delete pair was
        already applied as one in-place slot rewrite
        (:meth:`~repro.kv.hashtable.CuckooHashTable.reassign_prehashed`) —
        those need no pending index work at all.  No per-item
        :class:`SetOutcome` is built, and ``evicted`` is structurally
        ``None`` (the arena defers eviction to the compaction barrier).

        Returns ``None`` when the heap has no bulk allocator or an item
        might exceed the budget (positional failure semantics require the
        scalar loop); callers then fall back to :meth:`multi_allocate`.
        """
        bulk = self._heap_bulk_alloc
        if bulk is None or not keys:
            return None
        if max(map(len, keys)) + max(map(len, values)) > self.heap.budget_bytes:
            return None
        locations = bulk(keys, values)
        key_location = self._key_location
        key_location_get = key_location.get
        discard = self._heap_discard
        if discard is None:
            heap_free, heap_contains = self.heap.free, self.heap.__contains__

            def discard(location):
                return heap_free(location) if heap_contains(location) else None

        cache = self.hot_cache
        on_write = cache.on_write if cache is not None else None
        delta = self._delta
        if delta is not None:
            # Eager absorb: the whole SET run's index traffic lands in the
            # delta right here at MM time — no probe specs, no per-op
            # bucket scans — and every row reports settled, so the Insert
            # phase has nothing to queue.  Stage plans keep MM ahead of the
            # IN phase and sort Delete before Insert before Search inside
            # it, so absorbing at MM is observationally identical to
            # absorbing at the Insert phase (the same ordering argument
            # that lets ``reassign_prehashed`` settle pairs at MM).
            absorb_insert = delta.insert
            absorb_assign = delta.assign
            for key, value, location in zip(keys, values, locations):
                old_location = key_location_get(key)
                if old_location is not None and discard(old_location) is not None:
                    absorb_assign(key, old_location, location)
                else:
                    absorb_insert(key, location)
                key_location[key] = location
                if on_write is not None:
                    on_write(key, value)
            if delta.overflowed:
                self._merge_delta()
            n = len(keys)
            return locations, [None] * n, [True] * n
        index = self.index
        probe = getattr(index, "probe_cached", None)
        reassign = (
            getattr(index, "reassign_prehashed", None) if probe is not None else None
        )
        replaced: list[int | None] = []
        settled: list[bool] = []
        rappend = replaced.append
        sappend = settled.append
        for key, value, location in zip(keys, values, locations):
            old_location = key_location_get(key)
            if old_location is not None and discard(old_location) is not None:
                if reassign is not None and reassign(
                    *probe(key), old_location, location
                ):
                    rappend(None)
                    sappend(True)
                else:
                    rappend(old_location)
                    sappend(False)
            else:
                rappend(None)
                sappend(False)
            key_location[key] = location
            if on_write is not None:
                on_write(key, value)
        return locations, replaced, settled

    def multi_index_insert(self, entries: list[tuple[bytes, int]]) -> int:
        """Bulk IN/Insert: apply entries in order; returns buckets written."""
        delta = self._delta
        if delta is not None:
            absorb = delta.insert
            for key, location in entries:
                absorb(key, location)
            if delta.overflowed:
                self._merge_delta()
            return 0
        index = self.index
        probe = getattr(index, "probe_cached", None)
        if probe is None:
            insert = index.insert
            return sum(insert(key, location) for key, location in entries)
        insert = index.insert_prehashed
        buckets = 0
        for key, location in entries:
            signature, candidates = probe(key)
            buckets += insert(signature, candidates, location)
        return buckets

    def multi_index_delete(self, entries: list[tuple[bytes, int | None]]) -> int:
        """Bulk IN/Delete: apply entries in order; returns entries removed."""
        delta = self._delta
        if delta is not None:
            absorb = delta.delete
            index_delete = self.index.delete
            removed = 0
            for key, location in entries:
                absorbed = absorb(key, location)
                if absorbed is None:
                    # Location-less delete of a key the delta has never
                    # seen: apply to main synchronously (rare; the engine
                    # paths always supply locations).
                    if index_delete(key, location):
                        removed += 1
                elif absorbed:
                    removed += 1
            if delta.overflowed:
                self._merge_delta()
            return removed
        index = self.index
        probe = getattr(index, "probe_cached", None)
        if probe is None:
            delete = index.delete
            return sum(bool(delete(key, location)) for key, location in entries)
        delete = index.delete_prehashed
        removed = 0
        for key, location in entries:
            signature, candidates = probe(key)
            if delete(signature, candidates, location):
                removed += 1
        return removed

    # ------------------------------------------------------- whole operations

    def get(self, key: bytes, *, epoch: int = 0) -> bytes | None:
        """Full GET: Search -> KC -> RD."""
        self.stats.gets += 1
        candidates = self.index_search(key)
        location = self.key_compare(key, candidates)
        if location is None:
            return None
        value = self.read_value(location, epoch=epoch)
        if value is not None:
            self.stats.get_hits += 1
        return value

    def set(self, key: bytes, value: bytes) -> SetOutcome:
        """Full SET: MM -> Insert (+ Delete for displaced entries)."""
        self.stats.sets += 1
        outcome = self.allocate(key, value)
        if outcome.replaced is not None:
            self.index_delete(key, outcome.replaced_location)
        if outcome.evicted is not None:
            self.index_delete(outcome.evicted.key, outcome.evicted_location)
        self.index_insert(key, outcome.location)
        return outcome

    def delete(self, key: bytes) -> bool:
        """Full DELETE: remove from heap and index."""
        self.stats.deletes += 1
        location = self._key_location.pop(key, None)
        if location is None or location not in self.heap:
            return False
        self.heap.free(location)
        self.index_delete(key, location)
        if self.hot_cache is not None:
            self.hot_cache.invalidate(key)
        self.stats.delete_hits += 1
        return True

    # ----------------------------------------------------------- maintenance

    @property
    def needs_maintenance(self) -> bool:
        """Cheap barrier gate: delta merge due, or heap wants compaction?

        The heap half is always ``False`` on a slab heap (it reclaims
        inline, per SET); the delta half fires on the size/age threshold.
        """
        delta = self._delta
        if delta is not None and delta.wants_merge():
            return True
        if self._heap_compact is None:
            return False
        return self.heap.needs_maintenance

    def _merge_delta(self) -> int:
        """Merge the delta into the main table in one bulk apply.

        Every delta key is hashed in one vectorized pass and, when the
        signature mirror is attached, the whole plan stays columnar
        (:meth:`~repro.kv.deltaindex.DeltaIndex.merge_columns` into
        ``bulk_apply_columns``) — no per-row tuples, so a merge does not
        flood the garbage collector.  Without a mirror the tuple-form
        ``merge_rows``/``bulk_apply_prehashed`` path applies the same ops
        scalar.  Merged keys' probe-cache entries are invalidated so
        nothing resolves against a pre-merge spec.  The delta resets only after the apply succeeds: a
        :class:`~repro.errors.CapacityError` mid-apply leaves every
        binding still resolvable delta-first, so responses stay correct.
        Returns the number of ops applied.
        """
        delta = self._delta
        if delta is None or delta.pending_ops == 0:
            return 0
        started = time.perf_counter_ns()
        index = self.index
        plan = None
        if index.mirror is not None:
            plan = delta.merge_columns()
        if plan is not None:
            keys, signatures, buckets, classes = plan
            index.bulk_apply_columns(signatures, buckets, classes)
            merged = len(classes[0]) + len(classes[2]) + len(classes[5])
        else:
            deletes, reassigns, inserts, keys = delta.merge_rows()
            index.bulk_apply_prehashed(deletes, reassigns, inserts)
            merged = len(deletes) + len(reassigns) + len(inserts)
        index.forget_probes(keys)
        delta.finish_merge(merged)
        telemetry = get_telemetry()
        if telemetry.enabled:
            registry = telemetry.registry
            registry.counter(
                "repro_delta_merges_total",
                help="Delta-index merges applied to the main cuckoo table",
            ).inc()
            registry.histogram(
                "repro_delta_merge_ns",
                help="Wall time of one delta-index merge (ns)",
            ).observe(time.perf_counter_ns() - started)
            registry.gauge(
                "repro_delta_index_size",
                help="Keys currently absorbed in the delta index",
            ).set(0)
        return merged

    def maintenance(self, force: bool = False) -> int:
        """Run barrier work: delta merge, then heap compaction; returns evictions.

        The delta (when attached) merges first whenever its size/age
        threshold is hit — or whenever it is non-empty under ``force``
        (the server's idle tick) — so compaction-generated index Deletes
        land in a fresh delta and searches never outlive a stale binding.

        Compaction is log-arena only (a no-op on the slab, which never
        defers work).  It evicts whole least-recently-touched segments
        while the live set exceeds the budget; every evicted record gets
        its index Delete, key-location unmapping and hot-cache
        invalidation here — the aggregate settlement of the paper's
        one-Insert-one-Delete SET accounting (§II-C2).  ``force`` lowers
        the trigger to "at least a segment's worth of dead bytes" for the
        server's idle tick, where the scan costs nothing anyone is
        waiting on.
        """
        telemetry = get_telemetry()
        registry = telemetry.registry if telemetry.enabled else None
        delta = self._delta
        if delta is not None:
            if registry is not None:
                registry.gauge(
                    "repro_delta_index_size",
                    help="Keys currently absorbed in the delta index",
                ).set(len(delta))
            if delta.wants_merge() or (force and delta.pending_ops):
                self._merge_delta()
        compact = self._heap_compact
        if compact is None:
            return 0
        heap = self.heap
        if registry is not None:
            registry.gauge(
                "repro_logarena_live_bytes",
                help="Live key+value bytes in the log arena",
            ).set(heap.live_bytes)
            registry.gauge(
                "repro_logarena_dead_bytes",
                help="Tombstoned log-arena bytes awaiting compaction",
            ).set(heap.dead_bytes)
        if not (
            heap.needs_maintenance
            or (force and heap.dead_bytes >= heap.segment_bytes)
        ):
            return 0
        runs_before = heap.stats.compactions
        evicted = compact()
        for location, record in evicted:
            key = record.key
            if self._key_location.get(key) == location:
                del self._key_location[key]
            self.index_delete(key, location)
            if self.hot_cache is not None:
                self.hot_cache.invalidate(key)
        if registry is not None:
            runs = heap.stats.compactions - runs_before
            if runs:
                registry.counter(
                    "repro_logarena_compactions_total",
                    help="Log-arena compaction passes that reclaimed space",
                ).inc(runs)
            registry.gauge(
                "repro_logarena_live_bytes",
                help="Live key+value bytes in the log arena",
            ).set(heap.live_bytes)
            registry.gauge(
                "repro_logarena_dead_bytes",
                help="Tombstoned log-arena bytes awaiting compaction",
            ).set(heap.dead_bytes)
        return len(evicted)

    # ------------------------------------------------------- bulk entry points
    # Arena-backed bulk operations: one call applies a whole decoded
    # column block (the procshard workers' populate/import path and the
    # cluster's columnar bulk-SET windows land here).

    def bulk_set_columns(self, keys: list[bytes], values: list[bytes]) -> int:
        """Apply a columnar SET block in order; returns items stored.

        Semantics match :meth:`populate` (sequential full SETs, stopping
        when the index is saturated) over parallel key/value columns —
        typically sliced straight out of a shared-memory arena block
        (:func:`repro.net.arena.decode_query_block`).
        """
        stored = 0
        for key, value in zip(keys, values):
            try:
                self.set(key, value)
            except CapacityError:
                break
            stored += 1
            if not stored % 4096 and self.needs_maintenance:
                self.maintenance()
        return stored

    def bulk_get_columns(
        self, keys: list[bytes], *, epoch: int = 0
    ) -> list[bytes | None]:
        """Bulk GET over a key column: Search -> KC -> RD as three passes.

        The columnar counterpart of :meth:`get` (stats counted the same
        way), used by arena-fed readers that already hold a key column
        and want one store round instead of a per-key call chain.
        """
        n = len(keys)
        self.stats.gets += n
        candidates = self.multi_index_search(keys)
        locations = self.multi_key_compare(keys, candidates)
        values = self.multi_read_value(locations, epoch=epoch)
        self.stats.get_hits += sum(1 for v in values if v is not None)
        return values

    # -------------------------------------------------------------- warm-up

    def populate(self, items: list[tuple[bytes, bytes]]) -> int:
        """Bulk-load items (benchmark warm-up); returns count stored.

        Stops early if the index cannot absorb more (cuckoo capacity), which
        callers treat as "store is full" rather than an error.
        """
        stored = 0
        for key, value in items:
            try:
                self.set(key, value)
            except CapacityError:
                break
            stored += 1
            if not stored % 4096 and self.needs_maintenance:
                # A bulk load on the log arena settles its memory debt
                # periodically instead of overcommitting unboundedly.
                self.maintenance()
        return stored
