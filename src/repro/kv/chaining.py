"""Chained hash table: the conventional alternative to cuckoo indexing.

The paper (and Mega-KV before it) chose cuckoo hashing because its lookups
touch a *bounded* number of buckets — at most ``n`` for ``n`` hash
functions — which is what makes index operations GPU-friendly: every SIMT
lane does the same small number of dependent memory accesses.  A chained
table (memcached's classic design) has unbounded chains whose length grows
with load, which serialises badly on a GPU.

This module provides :class:`ChainedHashTable` with the same interface as
:class:`~repro.kv.hashtable.CuckooHashTable` (search/insert/delete plus
bucket-traffic statistics), so it can be dropped into
:class:`~repro.kv.store.KVStore` and the cost model can consume its
*measured* probe counts — the index-structure ablation benchmark shows the
cuckoo choice paying off exactly where the paper says it should.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.kv.hashtable import IndexStats
from repro.kv.objects import fnv1a64, key_signature


@dataclass
class _Node:
    signature: int
    location: int


class ChainedHashTable:
    """Separate-chaining hash index storing (signature, location) pairs.

    Interface-compatible with :class:`CuckooHashTable`: ``search`` returns
    signature-matching candidate locations plus the buckets (here: chain
    nodes) read; ``insert``/``delete`` return their traffic likewise.
    """

    def __init__(self, num_buckets: int, num_hashes: int = 1, **_ignored):
        if num_buckets <= 0:
            raise ConfigurationError("num_buckets must be positive")
        size = 1
        while size < num_buckets:
            size <<= 1
        self._mask = size - 1
        self._buckets: list[list[_Node]] = [[] for _ in range(size)]
        self._count = 0
        self.stats = IndexStats()

    # ------------------------------------------------------------------ info

    @property
    def num_buckets(self) -> int:
        return self._mask + 1

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Chains are unbounded; report a nominal 8-per-bucket figure so
        sizing heuristics still work."""
        return self.num_buckets * 8

    @property
    def load_factor(self) -> float:
        return self._count / self.num_buckets

    def expected_search_buckets(self) -> float:
        """Expected nodes touched per search: half the average chain on a
        hit, the whole chain on a miss — approximated as 1 + load/2."""
        return 1.0 + self.load_factor / 2.0

    def average_chain_length(self) -> float:
        populated = [len(b) for b in self._buckets if b]
        if not populated:
            return 0.0
        return sum(populated) / len(populated)

    # ------------------------------------------------------------ operations

    def _bucket(self, key: bytes) -> list[_Node]:
        return self._buckets[fnv1a64(key, seed=1) & self._mask]

    def search(self, key: bytes) -> tuple[list[int], int]:
        """Candidates by signature plus nodes traversed."""
        signature = key_signature(key)
        bucket = self._bucket(key)
        candidates = []
        touched = 0
        for node in bucket:
            touched += 1
            if node.signature == signature:
                candidates.append(node.location)
        self.stats.searches += 1
        self.stats.search_bucket_reads += max(1, touched)
        return candidates, max(1, touched)

    def insert(self, key: bytes, location: int) -> int:
        """Prepend to the chain (O(1) writes, like memcached)."""
        if location < 0:
            raise ConfigurationError("location must be non-negative")
        self._bucket(key).insert(0, _Node(key_signature(key), location))
        self._count += 1
        self.stats.inserts += 1
        self.stats.insert_bucket_writes += 1
        return 1

    def delete(self, key: bytes, location: int | None = None) -> bool:
        """Remove one matching node (walks the chain)."""
        signature = key_signature(key)
        bucket = self._bucket(key)
        self.stats.deletes += 1
        for i, node in enumerate(bucket):
            if node.signature != signature:
                continue
            if location is not None and node.location != location:
                continue
            bucket.pop(i)
            self._count -= 1
            return True
        return False

    # ------------------------------------------------------------- iteration

    def entries(self) -> list[tuple[int, int]]:
        return [
            (node.signature, node.location)
            for bucket in self._buckets
            for node in bucket
        ]
